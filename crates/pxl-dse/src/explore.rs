//! The exploration engine: strategies, parallel evaluation, caching, and
//! reporting.
//!
//! An [`Explorer`] walks a [`SearchSpace`]'s feasible candidates with a
//! [`Strategy`], evaluates them through any [`Evaluate`] implementation on
//! the shared [`pxl_sim::pool`] worker pool, memoizes every measurement in
//! a [`ResultCache`], and distills the results into one [`ParetoFront`]
//! per benchmark plus a markdown report.

use crate::cache::{Measurement, ResultCache};
use crate::pareto::ParetoFront;
use crate::space::{Candidate, DesignPoint, PrunedCandidate, SearchSpace};
use pxl_sim::pool;

/// How much simulation a measurement is based on.
///
/// [`Strategy::SuccessiveHalving`] triages candidates on rung fidelities
/// (short inputs) before spending full-size runs; [`Strategy::Grid`] only
/// ever uses [`Fidelity::Full`]. The fidelity is part of the cache key, so
/// rung and full measurements never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Triage rung `0, 1, ...` — increasingly large short inputs.
    Rung(u32),
    /// The full-size input the final numbers are reported on.
    Full,
}

impl Fidelity {
    /// The cache-key label (`rung0`, `rung1`, ..., `full`).
    pub fn label(self) -> String {
        match self {
            Fidelity::Rung(r) => format!("rung{r}"),
            Fidelity::Full => "full".to_owned(),
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Something that can measure a candidate at a fidelity.
///
/// The benchmark harness implements this by building the point's engine
/// through `pxl_flow::SimulationBuilder` and running the workload; tests
/// use plain closures via the blanket impl.
pub trait Evaluate: Sync {
    /// Measures one candidate. Errors are recorded as [`FailedPoint`]s,
    /// not propagated — one diverging design must not sink a sweep.
    fn evaluate(&self, candidate: &Candidate, fidelity: Fidelity) -> Result<Measurement, String>;

    /// A tag identifying everything about the evaluation context that is
    /// *not* in the candidate spec — workload sizes, seed, execution
    /// profile. It is folded into every cache key so measurements from
    /// different contexts never alias. The default (empty) suits
    /// context-free evaluators.
    fn context_tag(&self) -> String {
        String::new()
    }

    /// The content-addressed cache key of one (candidate, fidelity)
    /// evaluation. The default composes [`Evaluate::context_tag`], the
    /// candidate's canonical spec and the fidelity label; evaluators whose
    /// identity is richer than a spec string (e.g. a serializable run spec)
    /// can override it wholesale.
    fn cache_key(&self, candidate: &Candidate, fidelity: Fidelity) -> String {
        let mut key = String::new();
        let tag = self.context_tag();
        if !tag.is_empty() {
            key.push_str(&tag);
            key.push(' ');
        }
        key.push_str(&format!(
            "bench={} {} fidelity={}",
            candidate.bench,
            candidate.point.spec(),
            fidelity.label()
        ));
        key
    }
}

impl<F> Evaluate for F
where
    F: Fn(&Candidate, Fidelity) -> Result<Measurement, String> + Sync,
{
    fn evaluate(&self, candidate: &Candidate, fidelity: Fidelity) -> Result<Measurement, String> {
        self(candidate, fidelity)
    }
}

/// How the explorer spends its simulation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate every feasible candidate at full fidelity.
    Grid,
    /// Per benchmark, run `rungs` triage rounds on short inputs, keeping
    /// the fastest `ceil(n / eta)` candidates after each, then evaluate
    /// only the survivors at full fidelity. The per-rung ranking keeps the
    /// fastest candidate alive, so the best-runtime design always reaches
    /// full fidelity (as long as rung rankings agree with full-fidelity
    /// rankings on who is fastest).
    SuccessiveHalving {
        /// Triage rounds before the full-fidelity finale.
        rungs: u32,
        /// Keep `ceil(n / eta)` survivors per rung (must be ≥ 2 to cut).
        eta: usize,
    },
}

/// One full-fidelity measurement of a candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// Benchmark name.
    pub benchmark: String,
    /// The design point.
    pub point: DesignPoint,
    /// What it measured.
    pub measurement: Measurement,
}

/// A candidate whose evaluation returned an error.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// The point's canonical spec.
    pub spec: String,
    /// The fidelity that failed.
    pub fidelity: Fidelity,
    /// The evaluator's error.
    pub error: String,
}

/// Everything one exploration produced.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Full-fidelity results, in candidate enumeration order.
    pub evaluated: Vec<Evaluated>,
    /// One Pareto front per benchmark with at least one result.
    pub fronts: Vec<ParetoFront>,
    /// Candidates pruned before any simulation, with reasons.
    pub pruned: Vec<PrunedCandidate>,
    /// Candidates whose evaluation errored.
    pub failed: Vec<FailedPoint>,
    /// Cache lookups that found a prior measurement.
    pub cache_hits: usize,
    /// Cache lookups that had to simulate.
    pub cache_misses: usize,
    /// Rung-fidelity measurements taken (successive halving only).
    pub rung_evaluations: usize,
    /// Cache-file append errors (measurements were still collected).
    pub io_errors: Vec<String>,
}

impl Exploration {
    /// The front for one benchmark.
    pub fn front_for(&self, benchmark: &str) -> Option<&ParetoFront> {
        self.fronts.iter().find(|f| f.benchmark == benchmark)
    }

    /// The evaluated point with the lowest whole-application runtime for a
    /// benchmark (ties broken by spec string).
    pub fn best_runtime(&self, benchmark: &str) -> Option<&Evaluated> {
        self.evaluated
            .iter()
            .filter(|e| e.benchmark == benchmark)
            .min_by(|a, b| {
                a.measurement
                    .whole_ps
                    .cmp(&b.measurement.whole_ps)
                    .then_with(|| a.point.spec().cmp(&b.point.spec()))
            })
    }

    /// All fronts as JSONL (one line per front point).
    pub fn fronts_jsonl(&self) -> String {
        self.fronts.iter().map(|f| f.to_jsonl()).collect()
    }

    /// A markdown report: exploration totals, then per benchmark the knee
    /// point and the full front.
    pub fn report_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Design-space exploration\n\n");
        out.push_str(&format!(
            "- {} point(s) evaluated at full fidelity, {} pruned before \
             simulation, {} failed\n",
            self.evaluated.len(),
            self.pruned.len(),
            self.failed.len()
        ));
        out.push_str(&format!(
            "- cache: {} hit(s), {} miss(es)\n",
            self.cache_hits, self.cache_misses
        ));
        if self.rung_evaluations > 0 {
            out.push_str(&format!(
                "- successive halving took {} rung measurement(s)\n",
                self.rung_evaluations
            ));
        }
        for front in &self.fronts {
            out.push_str(&format!("\n## {}\n\n", front.benchmark));
            if let Some(knee) = front.knee() {
                out.push_str(&format!(
                    "Knee point: `{}` — {}\n\n",
                    knee.point.spec(),
                    summarize(&knee.measurement)
                ));
            }
            out.push_str("| design point | whole (ms) | energy (mJ) | LUT | BRAM18 | knee |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for p in &front.points {
                let m = &p.measurement;
                out.push_str(&format!(
                    "| `{}` | {:.3} | {:.3} | {} | {} | {} |\n",
                    p.point.spec(),
                    m.whole_ps as f64 / 1e9,
                    m.energy_j * 1e3,
                    m.lut,
                    m.bram18,
                    if p.knee { "yes" } else { "" }
                ));
            }
        }
        if !self.failed.is_empty() {
            out.push_str("\n## Failures\n\n");
            for f in &self.failed {
                out.push_str(&format!(
                    "- {} `{}` at {}: {}\n",
                    f.benchmark, f.spec, f.fidelity, f.error
                ));
            }
        }
        out
    }
}

fn summarize(m: &Measurement) -> String {
    format!(
        "whole {:.3} ms, energy {:.3} mJ, {} LUT, {} BRAM18",
        m.whole_ps as f64 / 1e9,
        m.energy_j * 1e3,
        m.lut,
        m.bram18
    )
}

/// Parallel, cached design-space exploration over an [`Evaluate`]
/// implementation. See the crate docs for the end-to-end picture.
pub struct Explorer<'a, E: Evaluate + ?Sized> {
    evaluator: &'a E,
    cache: ResultCache,
    strategy: Strategy,
    threads: usize,
}

impl<'a, E: Evaluate + ?Sized> Explorer<'a, E> {
    /// An explorer with a process-local cache, the [`Strategy::Grid`]
    /// strategy, and one worker per host core.
    pub fn new(evaluator: &'a E) -> Self {
        Explorer {
            evaluator,
            cache: ResultCache::in_memory(),
            strategy: Strategy::Grid,
            threads: pool::available_workers(),
        }
    }

    /// Replaces the cache (e.g. with a JSONL-backed one).
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = cache;
        self
    }

    /// Selects the exploration strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the worker threads used per evaluation batch.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The cache key of one (candidate, fidelity) evaluation — delegated to
    /// [`Evaluate::cache_key`] so the evaluator owns its cache identity.
    pub fn cache_key(&self, candidate: &Candidate, fidelity: Fidelity) -> String {
        self.evaluator.cache_key(candidate, fidelity)
    }

    /// Runs the exploration: partition, triage (if successive halving),
    /// evaluate, and report.
    pub fn explore(&mut self, space: &SearchSpace) -> Exploration {
        let hits0 = self.cache.hits();
        let misses0 = self.cache.misses();
        let partition = space.partition();
        let mut failed = Vec::new();
        let mut io_errors = Vec::new();
        let mut rung_evaluations = 0usize;

        // Successive halving triages per benchmark; Grid keeps everyone.
        let finalists: Vec<Candidate> = match self.strategy {
            Strategy::Grid => partition.feasible.clone(),
            Strategy::SuccessiveHalving { rungs, eta } => {
                let mut finalists = Vec::new();
                for bench in space.benchmark_names() {
                    let entrants: Vec<Candidate> = partition
                        .feasible
                        .iter()
                        .filter(|c| &c.bench == bench)
                        .cloned()
                        .collect();
                    finalists.extend(self.triage(
                        entrants,
                        rungs,
                        eta.max(2),
                        &mut failed,
                        &mut io_errors,
                        &mut rung_evaluations,
                    ));
                }
                finalists
            }
        };

        let results = self.evaluate_batch(&finalists, Fidelity::Full, &mut io_errors);
        let mut evaluated = Vec::new();
        for (candidate, result) in finalists.into_iter().zip(results) {
            match result {
                Ok(measurement) => evaluated.push(Evaluated {
                    benchmark: candidate.bench,
                    point: candidate.point,
                    measurement,
                }),
                Err(error) => failed.push(FailedPoint {
                    benchmark: candidate.bench.clone(),
                    spec: candidate.point.spec(),
                    fidelity: Fidelity::Full,
                    error,
                }),
            }
        }

        let fronts = space
            .benchmark_names()
            .iter()
            .filter_map(|bench| {
                let pairs: Vec<(DesignPoint, Measurement)> = evaluated
                    .iter()
                    .filter(|e| &e.benchmark == bench)
                    .map(|e| (e.point.clone(), e.measurement))
                    .collect();
                (!pairs.is_empty()).then(|| ParetoFront::build(bench.clone(), &pairs))
            })
            .collect();

        Exploration {
            evaluated,
            fronts,
            pruned: partition.pruned,
            failed,
            cache_hits: self.cache.hits() - hits0,
            cache_misses: self.cache.misses() - misses0,
            rung_evaluations,
            io_errors,
        }
    }

    /// The cache, e.g. to inspect totals after exploring.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Successive-halving triage of one benchmark's entrants.
    fn triage(
        &mut self,
        mut survivors: Vec<Candidate>,
        rungs: u32,
        eta: usize,
        failed: &mut Vec<FailedPoint>,
        io_errors: &mut Vec<String>,
        rung_evaluations: &mut usize,
    ) -> Vec<Candidate> {
        for rung in 0..rungs {
            if survivors.len() <= 1 {
                break;
            }
            let fidelity = Fidelity::Rung(rung);
            let results = self.evaluate_batch(&survivors, fidelity, io_errors);
            *rung_evaluations += results.len();
            let mut ranked: Vec<(Candidate, Measurement)> = Vec::new();
            for (candidate, result) in survivors.drain(..).zip(results) {
                match result {
                    Ok(m) => ranked.push((candidate, m)),
                    Err(error) => failed.push(FailedPoint {
                        benchmark: candidate.bench.clone(),
                        spec: candidate.point.spec(),
                        fidelity,
                        error,
                    }),
                }
            }
            // Promote the fastest ceil(n / eta); a candidate that errors on
            // a rung is out of the tournament.
            ranked.sort_by(|a, b| {
                a.1.whole_ps
                    .cmp(&b.1.whole_ps)
                    .then_with(|| a.0.point.spec().cmp(&b.0.point.spec()))
            });
            let keep = ranked.len().div_ceil(eta).max(1);
            ranked.truncate(keep);
            survivors = ranked.into_iter().map(|(c, _)| c).collect();
        }
        survivors
    }

    /// Evaluates a batch at one fidelity: cache lookups first, then the
    /// misses in parallel on the worker pool, in input order throughout.
    fn evaluate_batch(
        &mut self,
        candidates: &[Candidate],
        fidelity: Fidelity,
        io_errors: &mut Vec<String>,
    ) -> Vec<Result<Measurement, String>> {
        let mut slots: Vec<Option<Result<Measurement, String>>> = Vec::new();
        let mut miss_indices = Vec::new();
        for candidate in candidates {
            let key = self.cache_key(candidate, fidelity);
            match self.cache.get(&key) {
                Some(m) => slots.push(Some(Ok(m))),
                None => {
                    miss_indices.push(slots.len());
                    slots.push(None);
                }
            }
        }
        let evaluator = self.evaluator;
        let jobs: Vec<_> = miss_indices
            .iter()
            .map(|&i| {
                let candidate = candidates[i].clone();
                move || evaluator.evaluate(&candidate, fidelity)
            })
            .collect();
        let results = pool::parallel_map_with(jobs, self.threads);
        for (&i, result) in miss_indices.iter().zip(results) {
            if let Ok(m) = &result {
                let key = self.cache_key(&candidates[i], fidelity);
                if let Err(e) = self.cache.insert(&key, *m) {
                    io_errors.push(e);
                }
            }
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Axis, PointArch};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Synthetic evaluator: runtime shrinks with units, energy and area
    /// grow, so every unit count is a genuine trade-off and the fastest
    /// point is the one with the most units.
    fn synthetic(c: &Candidate, _f: Fidelity) -> Result<Measurement, String> {
        let units = c.point.units() as u64;
        Ok(Measurement {
            kernel_ps: 1_000_000 / units,
            whole_ps: 200_000 + 1_000_000 / units,
            energy_j: 1e-4 * units as f64,
            lut: 4_000 * units,
            bram18: 6 * units,
        })
    }

    fn space() -> SearchSpace {
        SearchSpace::new()
            .benchmarks(["queens", "uts"])
            .archs([PointArch::Flex])
            .tiles(Axis::list([1, 2, 4]))
            .pes_per_tile(Axis::list([2, 4]))
    }

    #[test]
    fn grid_evaluates_every_feasible_candidate() {
        let eval = synthetic;
        let outcome = Explorer::new(&eval).explore(&space());
        assert_eq!(outcome.evaluated.len(), 2 * 6);
        assert_eq!(outcome.fronts.len(), 2);
        assert!(outcome.pruned.is_empty());
        assert_eq!(outcome.cache_misses, 12);
        assert_eq!(outcome.cache_hits, 0);
        // Fastest point = most units.
        assert_eq!(outcome.best_runtime("queens").unwrap().point.units(), 16);
    }

    #[test]
    fn second_pass_is_pure_cache_hits_and_identical() {
        let eval = synthetic;
        let mut explorer = Explorer::new(&eval);
        let first = explorer.explore(&space());
        let second = explorer.explore(&space());
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, 12);
        assert_eq!(first.fronts, second.fronts);
        assert_eq!(first.fronts_jsonl(), second.fronts_jsonl());
    }

    #[test]
    fn failures_are_collected_not_fatal() {
        let eval = |c: &Candidate, f: Fidelity| {
            if c.point.tiles == 2 {
                Err("diverged".to_owned())
            } else {
                synthetic(c, f)
            }
        };
        let outcome = Explorer::new(&eval).explore(&space());
        assert_eq!(outcome.failed.len(), 2 * 2, "two 2-tile points per bench");
        assert_eq!(outcome.evaluated.len(), 12 - 4);
        assert!(outcome
            .failed
            .iter()
            .all(|f| f.error == "diverged" && f.fidelity == Fidelity::Full));
        let report = outcome.report_markdown();
        assert!(report.contains("## Failures"));
        assert!(report.contains("diverged"));
    }

    #[test]
    fn successive_halving_spends_less_and_finds_the_same_winner() {
        let eval = synthetic;
        let calls = AtomicUsize::new(0);
        let counting = |c: &Candidate, f: Fidelity| {
            calls.fetch_add(1, Ordering::Relaxed);
            synthetic(c, f)
        };
        let grid = Explorer::new(&eval).explore(&space());
        let sh = Explorer::new(&counting)
            .strategy(Strategy::SuccessiveHalving { rungs: 2, eta: 2 })
            .explore(&space());
        // 6 entrants/bench -> rung0 keeps 3 -> rung1 keeps 2 -> 2 full runs:
        // 6 + 3 + 2 = 11 evaluator calls per bench vs Grid's 6 full runs,
        // but only 2 of them at full fidelity.
        assert_eq!(sh.rung_evaluations, 2 * (6 + 3));
        assert_eq!(sh.evaluated.len(), 2 * 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2 * (6 + 3 + 2));
        for bench in ["queens", "uts"] {
            assert_eq!(
                sh.best_runtime(bench).unwrap().point,
                grid.best_runtime(bench).unwrap().point,
                "{bench}: the fastest design always survives triage"
            );
        }
    }

    #[test]
    fn rung_failures_knock_candidates_out() {
        // The 16-unit point (fastest) dies on rung 0; the next-fastest
        // feasible point must win instead.
        let eval = |c: &Candidate, f: Fidelity| {
            if c.point.units() == 16 && matches!(f, Fidelity::Rung(_)) {
                Err("rung crash".to_owned())
            } else {
                synthetic(c, f)
            }
        };
        let outcome = Explorer::new(&eval)
            .strategy(Strategy::SuccessiveHalving { rungs: 1, eta: 2 })
            .explore(&space());
        assert!(outcome
            .failed
            .iter()
            .any(|f| f.fidelity == Fidelity::Rung(0)));
        assert_eq!(outcome.best_runtime("queens").unwrap().point.units(), 8);
    }

    #[test]
    fn cache_keys_separate_fidelities_and_context() {
        struct Tagged;
        impl Evaluate for Tagged {
            fn evaluate(&self, c: &Candidate, f: Fidelity) -> Result<Measurement, String> {
                synthetic(c, f)
            }
            fn context_tag(&self) -> String {
                "workload=paper seed=42".to_owned()
            }
        }
        let explorer = Explorer::new(&Tagged);
        let c = Candidate {
            bench: "queens".to_owned(),
            point: DesignPoint::cpu(4),
            resources: None,
        };
        let full = explorer.cache_key(&c, Fidelity::Full);
        let rung = explorer.cache_key(&c, Fidelity::Rung(0));
        assert_eq!(
            full,
            "workload=paper seed=42 bench=queens arch=cpu cores=4 fidelity=full"
        );
        assert_ne!(full, rung);
        assert!(rung.ends_with("fidelity=rung0"));
    }

    #[test]
    fn report_names_the_knee_point() {
        let eval = synthetic;
        let outcome = Explorer::new(&eval).explore(&space());
        let report = outcome.report_markdown();
        assert!(report.contains("# Design-space exploration"));
        assert!(report.contains("## queens"));
        assert!(report.contains("Knee point: `"));
        let knee_specs: Vec<String> = outcome
            .fronts
            .iter()
            .map(|f| f.knee().unwrap().point.spec())
            .collect();
        for spec in knee_specs {
            assert!(report.contains(&spec));
        }
    }
}
