//! Content-addressed result cache for design-space exploration.
//!
//! Every evaluation is keyed by its full canonical spec string — workload,
//! seed/profile tag, design-point spec and fidelity — and addressed by the
//! stable [`pxl_sim::hash`] FNV-1a of that key. The cache persists as
//! JSONL (one `{"key","spec",...}` object per line, appended as results
//! arrive), so an interrupted sweep resumes where it stopped and a re-run
//! over the same space is pure cache hits.
//!
//! Matching is done on the *full spec string*, not the hash, so a hash
//! collision can never return the wrong measurement; the 16-hex-digit
//! content address is the compact identity used in file names and reports.
//!
//! Floating-point objectives are written with Rust's shortest-round-trip
//! `Display` and re-parsed with `str::parse::<f64>`, which is exact — a
//! reloaded cache reproduces byte-identical reports.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use pxl_sim::hash::{content_address, fnv64};
use pxl_sim::json::write_string;

/// What one evaluation measured: the two runtimes, energy, and the
/// per-tile FPGA footprint objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Kernel (device-only) runtime in picoseconds.
    pub kernel_ps: u64,
    /// Whole-application runtime in picoseconds.
    pub whole_ps: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Tile LUTs (0 when no resource model applies, e.g. the CPU).
    pub lut: u64,
    /// Tile RAM18 blocks (0 when no resource model applies).
    pub bram18: u64,
}

impl Measurement {
    /// The JSONL field fragment (everything after `"spec":...,`).
    fn write_fields(&self, out: &mut String) {
        out.push_str(&format!(
            "\"kernel_ps\":{},\"whole_ps\":{},\"energy_j\":{},\"lut\":{},\"bram18\":{}",
            self.kernel_ps, self.whole_ps, self.energy_j, self.lut, self.bram18
        ));
    }
}

/// A persistent, content-addressed map from evaluation specs to
/// [`Measurement`]s.
///
/// # Examples
///
/// ```
/// use pxl_dse::{Measurement, ResultCache};
///
/// let mut cache = ResultCache::in_memory();
/// let m = Measurement {
///     kernel_ps: 10,
///     whole_ps: 20,
///     energy_j: 0.5,
///     lut: 100,
///     bram18: 4,
/// };
/// assert!(cache.get("bench=queens arch=flex tiles=1").is_none());
/// cache.insert("bench=queens arch=flex tiles=1", m);
/// assert_eq!(cache.get("bench=queens arch=flex tiles=1"), Some(m));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<String, Measurement>,
    path: Option<PathBuf>,
    hits: usize,
    misses: usize,
    loaded: usize,
}

impl ResultCache {
    /// A cache that lives only for this process.
    pub fn in_memory() -> Self {
        ResultCache {
            entries: HashMap::new(),
            path: None,
            hits: 0,
            misses: 0,
            loaded: 0,
        }
    }

    /// Opens (or creates) a JSONL-backed cache at `path`, loading any
    /// entries already on disk. Unparsable lines are skipped — a truncated
    /// final line from an interrupted run does not poison the cache.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the file exists but cannot be read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref().to_path_buf();
        let mut cache = ResultCache {
            entries: HashMap::new(),
            path: Some(path.clone()),
            hits: 0,
            misses: 0,
            loaded: 0,
        };
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            for line in text.lines() {
                if let Some((spec, m)) = parse_line(line) {
                    cache.entries.insert(spec, m);
                    cache.loaded += 1;
                }
            }
        }
        Ok(cache)
    }

    /// The 16-hex-digit content address of a spec.
    pub fn address(spec: &str) -> String {
        content_address(fnv64(spec.as_bytes()))
    }

    /// Looks up a spec, counting the hit or miss.
    pub fn get(&mut self, spec: &str) -> Option<Measurement> {
        match self.entries.get(spec) {
            Some(m) => {
                self.hits += 1;
                Some(*m)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a measurement, appending it to the backing file when one is
    /// configured (append failures are reported, not fatal — the in-memory
    /// entry still lands).
    pub fn insert(&mut self, spec: &str, m: Measurement) -> Result<(), String> {
        self.entries.insert(spec.to_owned(), m);
        if let Some(path) = &self.path {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            writeln!(file, "{}", render_line(spec, &m))
                .map_err(|e| format!("appending to {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Entries currently held (loaded + inserted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Entries loaded from the backing file at open.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Resets the hit/miss counters (e.g. between exploration passes).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Renders one cache line: `{"key":"<16hex>","spec":"...","kernel_ps":...}`.
fn render_line(spec: &str, m: &Measurement) -> String {
    let mut out = String::new();
    out.push_str("{\"key\":");
    write_string(&mut out, &ResultCache::address(spec));
    out.push_str(",\"spec\":");
    write_string(&mut out, spec);
    out.push(',');
    m.write_fields(&mut out);
    out.push('}');
    out
}

/// Parses one cache line back into `(spec, measurement)`; `None` for
/// malformed or truncated lines.
fn parse_line(line: &str) -> Option<(String, Measurement)> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let spec = field_string(line, "spec")?;
    let key = field_string(line, "key")?;
    // An edited spec with a stale key means the line no longer describes
    // what it claims — drop it.
    if key != ResultCache::address(&spec) {
        return None;
    }
    Some((
        spec,
        Measurement {
            kernel_ps: field_number(line, "kernel_ps")?.parse().ok()?,
            whole_ps: field_number(line, "whole_ps")?.parse().ok()?,
            energy_j: field_number(line, "energy_j")?.parse().ok()?,
            lut: field_number(line, "lut")?.parse().ok()?,
            bram18: field_number(line, "bram18")?.parse().ok()?,
        },
    ))
}

/// Extracts the string value of `"name":"..."`, undoing the escapes
/// [`write_string`] produces.
fn field_string(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts the raw text of a numeric field `"name":<number>`.
fn field_number<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let marker = format!("\"{name}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let text = rest[..end].trim();
    (!text.is_empty()).then_some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(kernel: u64, energy: f64) -> Measurement {
        Measurement {
            kernel_ps: kernel,
            whole_ps: kernel * 2,
            energy_j: energy,
            lut: 1234,
            bram18: 18,
        }
    }

    #[test]
    fn lines_round_trip_exactly() {
        let spec = "workload=queens/8 seed=42 arch=flex tiles=4 fidelity=full";
        let before = m(987_654_321, 0.012345678901234567);
        let line = render_line(spec, &before);
        let (spec2, after) = parse_line(&line).unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(after, before);
        // f64 round-trips bit-exactly through Display/parse.
        assert_eq!(after.energy_j.to_bits(), before.energy_j.to_bits());
        // And re-rendering is byte-identical.
        assert_eq!(render_line(&spec2, &after), line);
    }

    #[test]
    fn content_addresses_are_stable_across_runs() {
        // A fixed spec must hash to the same address forever — this is the
        // property that makes the on-disk cache reusable.
        assert_eq!(
            ResultCache::address("arch=flex tiles=1 pes=4"),
            ResultCache::address("arch=flex tiles=1 pes=4"),
        );
        assert_eq!(ResultCache::address("x").len(), 16);
        assert_ne!(
            ResultCache::address("arch=flex tiles=1 pes=4"),
            ResultCache::address("arch=flex tiles=2 pes=4"),
        );
    }

    #[test]
    fn in_memory_hit_and_miss_accounting() {
        let mut c = ResultCache::in_memory();
        assert!(c.get("a").is_none());
        c.insert("a", m(1, 0.25)).unwrap();
        assert_eq!(c.get("a"), Some(m(1, 0.25)));
        assert!(c.get("b").is_none());
        assert_eq!((c.hits(), c.misses()), (1, 2));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn persists_and_reloads_across_opens() {
        let dir = std::env::temp_dir().join(format!("pxl-dse-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persists_and_reloads.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut c = ResultCache::open(&path).unwrap();
        assert_eq!(c.loaded(), 0);
        c.insert("spec-one", m(100, 1.5)).unwrap();
        c.insert("spec-two", m(200, 0.125)).unwrap();
        drop(c);

        let mut c = ResultCache::open(&path).unwrap();
        assert_eq!(c.loaded(), 2);
        assert_eq!(c.get("spec-one"), Some(m(100, 1.5)));
        assert_eq!(c.get("spec-two"), Some(m(200, 0.125)));

        // A truncated trailing line (interrupted run) is skipped, the rest
        // survives.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{text}{{\"key\":\"dead\",\"spe")).unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.loaded(), 2);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_keys_are_rejected() {
        let line = render_line("honest-spec", &m(5, 0.5));
        let tampered = line.replace("honest-spec", "edited-spec");
        assert!(parse_line(&tampered).is_none(), "stale content address");
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"key\":\"x\"}").is_none());
    }

    #[test]
    fn specs_with_escapes_survive() {
        let spec = "weird \"quoted\" \\ spec\twith\nnoise";
        let line = render_line(spec, &m(7, 2.0));
        let (spec2, _) = parse_line(&line).unwrap();
        assert_eq!(spec2, spec);
    }
}
