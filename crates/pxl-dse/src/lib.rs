//! Parallel design-space exploration over the ParallelXL architecture
//! template.
//!
//! The template's whole purpose (Section IV of the paper) is that a
//! designer tunes the architecture — FlexArch vs. LiteArch vs. staying on
//! the CPU, tile and PE counts, cache capacity, task-queue and P-Store
//! depths — per workload. The paper's FlexArch-vs-LiteArch study and its
//! Tables IV/V are exactly such an exploration, done by hand. This crate
//! turns "which accelerator config should I build for this workload?" into
//! one call:
//!
//! 1. a declarative [`SearchSpace`]: each architectural knob is an
//!    [`Axis`] (explicit list or range), crossed into [`DesignPoint`]s and
//!    **pruned before simulation** — [`pxl_arch::AccelConfig::validate`]
//!    rejects unrealizable configurations with a typed
//!    [`pxl_arch::ConfigError`], and the `pxl-cost` resource model
//!    ([`pxl_cost::resources::FpgaDevice::max_tiles`]) rejects points that
//!    do not fit the target device, so infeasible points never cost a
//!    simulation;
//! 2. an [`Explorer`] that evaluates feasible points in parallel on the
//!    shared [`pxl_sim::pool`] worker pool, through any [`Evaluate`]
//!    implementation (the harness's evaluator runs full engine simulations
//!    via `pxl-flow`'s `SimulationBuilder`);
//! 3. a **content-addressed [`ResultCache`]**: every (workload, seed,
//!    profile, config, fidelity) key is hashed with the stable
//!    [`pxl_sim::hash`] FNV-1a and persisted as JSONL, so re-runs and
//!    interrupted sweeps resume instantly and only new points simulate;
//! 4. two [`Strategy`]s — exhaustive [`Strategy::Grid`] and a budgeted
//!    [`Strategy::SuccessiveHalving`] that promotes configurations on
//!    short inputs before spending full-size runs;
//! 5. a [`ParetoFront`] over (runtime, energy, LUT/BRAM footprint) per
//!    workload, exported as JSONL plus a markdown report naming the knee
//!    point.
//!
//! Determinism: simulations are seeded and deterministic, candidates are
//! enumerated in a fixed order, the worker pool returns results in input
//! order, and floating-point objectives round-trip exactly through the
//!  cache's JSONL — so a same-seed re-exploration is 100% cache hits and
//! produces a **byte-identical** Pareto front. See `docs/dse.md`.
//!
//! # Examples
//!
//! Exploring a synthetic space with a closure evaluator (the benchmark
//! harness substitutes real simulations):
//!
//! ```
//! use pxl_dse::{Axis, Candidate, Explorer, Fidelity, Measurement, PointArch, SearchSpace};
//!
//! let space = SearchSpace::new()
//!     .benchmarks(["queens"])
//!     .archs([PointArch::Flex])
//!     .tiles(Axis::list([1, 2]))
//!     .pes_per_tile(Axis::list([2, 4]));
//! let eval = |c: &Candidate, _f: Fidelity| -> Result<Measurement, String> {
//!     let units = c.point.units() as u64;
//!     Ok(Measurement {
//!         kernel_ps: 1_000_000 / units,
//!         whole_ps: 1_000_000 / units,
//!         energy_j: 0.001 * units as f64,
//!         lut: 5_000 * units,
//!         bram18: 8 * units,
//!     })
//! };
//! let outcome = Explorer::new(&eval).explore(&space);
//! assert_eq!(outcome.evaluated.len(), 4);
//! let front = &outcome.fronts[0];
//! assert!(!front.points.is_empty());
//! ```

pub mod cache;
pub mod explore;
pub mod pareto;
pub mod space;

pub use cache::{Measurement, ResultCache};
pub use explore::{Evaluate, Evaluated, Exploration, Explorer, FailedPoint, Fidelity, Strategy};
pub use pareto::{dominates, FrontPoint, ParetoFront};
pub use space::{
    pe_geometry, Axis, Candidate, ClusterPoint, DesignPoint, Partition, PointArch, PruneReason,
    PrunedCandidate, SearchSpace,
};
