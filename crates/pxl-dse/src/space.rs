//! Declarative search spaces over the architectural template's knobs, with
//! up-front feasibility pruning.
//!
//! A [`SearchSpace`] crosses one [`Axis`] per knob — architecture, tiles,
//! PEs per tile, cache capacity, task-queue and P-Store entries — into
//! [`DesignPoint`]s, pairs every point with every benchmark into
//! [`Candidate`]s, and [`SearchSpace::partition`] splits the candidates
//! into the feasible set and the pruned set *before* any simulation runs:
//!
//! * [`pxl_arch::AccelConfig::validate`] rejects unrealizable
//!   configurations ([`PruneReason::Config`] carries the typed
//!   [`ConfigError`]);
//! * benchmarks without a LiteArch variant cannot instantiate LiteArch
//!   points ([`PruneReason::NoLiteVariant`]);
//! * when a target [`FpgaDevice`] is set, the `pxl-cost` resource model
//!   rejects points whose tiles do not fit
//!   ([`PruneReason::DoesNotFit`]).

use pxl_arch::{AccelConfig, ArchKind, ClusterConfig, ConfigError, StealMode};
use pxl_cost::resources::{tile_resources, FpgaDevice, TileResources};

/// The values one architectural knob ranges over.
///
/// # Examples
///
/// ```
/// use pxl_dse::Axis;
///
/// assert_eq!(Axis::list([4, 2, 4]).values(), &[4, 2]);
/// assert_eq!(Axis::range(1, 4).values(), &[1, 2, 3, 4]);
/// assert_eq!(Axis::pow2(4, 32).values(), &[4, 8, 16, 32]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    values: Vec<usize>,
}

impl Axis {
    /// An explicit list of values, kept in the given order (duplicates
    /// dropped).
    pub fn list(values: impl IntoIterator<Item = usize>) -> Self {
        let mut out = Vec::new();
        for v in values {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Axis { values: out }
    }

    /// Every integer in `lo..=hi`.
    pub fn range(lo: usize, hi: usize) -> Self {
        Axis {
            values: (lo..=hi).collect(),
        }
    }

    /// Powers of two from `lo` to `hi` inclusive (`lo` is rounded up to a
    /// power of two).
    pub fn pow2(lo: usize, hi: usize) -> Self {
        let mut v = lo.max(1).next_power_of_two();
        let mut values = Vec::new();
        while v <= hi {
            values.push(v);
            v *= 2;
        }
        Axis { values }
    }

    /// A single fixed value.
    pub fn fixed(value: usize) -> Self {
        Axis {
            values: vec![value],
        }
    }

    /// The axis's values, in enumeration order.
    pub fn values(&self) -> &[usize] {
        &self.values
    }
}

/// Which execution target a design point instantiates: one of the two tile
/// architectures, or staying on the multicore software baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PointArch {
    /// FlexArch (work stealing, full task parallelism).
    Flex,
    /// LiteArch (static data-parallel rounds).
    Lite,
    /// The centralized shared-queue ablation of FlexArch.
    Central,
    /// The Table III multicore CPU baseline — "build no accelerator".
    Cpu,
}

impl PointArch {
    /// The spec-string label (`flex` / `lite` / `cpu`).
    pub fn label(self) -> &'static str {
        match self {
            PointArch::Flex => "flex",
            PointArch::Lite => "lite",
            PointArch::Central => "central",
            PointArch::Cpu => "cpu",
        }
    }

    /// The accelerator architecture, `None` for the CPU baseline.
    pub fn arch_kind(self) -> Option<ArchKind> {
        match self {
            PointArch::Flex => Some(ArchKind::Flex),
            PointArch::Lite => Some(ArchKind::Lite),
            PointArch::Central => Some(ArchKind::Central),
            PointArch::Cpu => None,
        }
    }
}

impl std::fmt::Display for PointArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl From<ArchKind> for PointArch {
    fn from(kind: ArchKind) -> Self {
        match kind {
            ArchKind::Flex => PointArch::Flex,
            ArchKind::Lite => PointArch::Lite,
            ArchKind::Central => PointArch::Central,
        }
    }
}

/// The multi-chip shape of a clustered design point: how many chips the
/// tiles split across, the inter-chip link's timing, and which stealing
/// discipline spans the chip boundary. Single-chip points spell this as
/// `None` on [`DesignPoint::cluster`] so their spec strings and cache keys
/// are unchanged from before clusters existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterPoint {
    /// Number of chips the tiles partition across (≥ 2; one chip is `None`).
    pub chips: usize,
    /// Inter-chip link latency per hop, in engine cycles.
    pub link_latency_cycles: u64,
    /// Link serialization (occupancy) per message, in engine cycles —
    /// the inverse-bandwidth knob.
    pub link_occupancy_cycles: u64,
    /// Stealing discipline across the chip boundary.
    pub stealing: StealMode,
}

impl ClusterPoint {
    /// A `chips`-chip cluster with [`ClusterConfig::new`]'s default link
    /// timing and hierarchical stealing.
    pub fn new(chips: usize) -> Self {
        let defaults = ClusterConfig::new(chips);
        ClusterPoint {
            chips,
            link_latency_cycles: defaults.link_latency_cycles,
            link_occupancy_cycles: defaults.link_occupancy_cycles,
            stealing: defaults.stealing,
        }
    }

    /// Switches the cross-chip stealing discipline to flat (the naive
    /// baseline that ignores chip boundaries).
    pub fn flat(mut self) -> Self {
        self.stealing = StealMode::Flat;
        self
    }

    /// Sets the link latency and occupancy, in engine cycles.
    pub fn with_link(mut self, latency_cycles: u64, occupancy_cycles: u64) -> Self {
        self.link_latency_cycles = latency_cycles;
        self.link_occupancy_cycles = occupancy_cycles;
        self
    }

    /// The `steal=` term of the spec string (`hier:<threshold>` / `flat`).
    pub fn steal_label(&self) -> String {
        match self.stealing {
            StealMode::Hierarchical { spill_threshold } => format!("hier:{spill_threshold}"),
            StealMode::Flat => "flat".to_owned(),
        }
    }

    /// The [`ClusterConfig`] this point elaborates to (all-to-all topology).
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(self.chips)
            .with_link(self.link_latency_cycles, self.link_occupancy_cycles);
        cfg.stealing = self.stealing;
        cfg
    }
}

/// One assignment of the template's knobs.
///
/// CPU points carry only a core count (`tiles == 1`,
/// `pes_per_tile == cores`); their accelerator-only knobs are normalized to
/// zero so equivalent baseline points collapse to one spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignPoint {
    /// Execution target.
    pub arch: PointArch,
    /// Number of tiles (1 for CPU points).
    pub tiles: usize,
    /// PEs per tile (cores for CPU points).
    pub pes_per_tile: usize,
    /// Tile cache capacity in KiB (0 for CPU points).
    pub cache_kb: usize,
    /// Per-PE task queue entries (0 for CPU points).
    pub task_queue_entries: usize,
    /// Per-tile P-Store entries (0 for CPU points).
    pub pstore_entries: usize,
    /// Multi-chip cluster shape; `None` is the classic single-chip point.
    pub cluster: Option<ClusterPoint>,
}

impl DesignPoint {
    /// An accelerator point with the paper's default capacities — the same
    /// values [`pxl_arch::AccelConfig::flex`] bakes in (32 KiB tile cache,
    /// 1024-entry task queues, 8192-entry P-Store) — so
    /// [`DesignPoint::accel_config`] reproduces a raw
    /// `AccelConfig::flex(tiles, pes)` exactly.
    ///
    /// # Panics
    ///
    /// Panics when `arch` is [`PointArch::Cpu`]; use [`DesignPoint::cpu`].
    pub fn accel(arch: PointArch, tiles: usize, pes_per_tile: usize) -> Self {
        assert!(
            arch != PointArch::Cpu,
            "the CPU baseline has no accelerator knobs; use DesignPoint::cpu"
        );
        DesignPoint {
            arch,
            tiles,
            pes_per_tile,
            cache_kb: 32,
            task_queue_entries: 1024,
            pstore_entries: 8192,
            cluster: None,
        }
    }

    /// A CPU-baseline point with `cores` cores.
    pub fn cpu(cores: usize) -> Self {
        DesignPoint {
            arch: PointArch::Cpu,
            tiles: 1,
            pes_per_tile: cores,
            cache_kb: 0,
            task_queue_entries: 0,
            pstore_entries: 0,
            cluster: None,
        }
    }

    /// Splits the point's tiles across a multi-chip cluster.
    pub fn clustered(mut self, cluster: ClusterPoint) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Total execution units: PEs for accelerators, cores for the CPU.
    pub fn units(&self) -> usize {
        self.tiles * self.pes_per_tile
    }

    /// The accelerator configuration this point elaborates to (`None` for
    /// CPU points). The configuration is *not* validated here; feasibility
    /// is [`SearchSpace::partition`]'s job.
    pub fn accel_config(&self) -> Option<AccelConfig> {
        let arch = self.arch.arch_kind()?;
        let mut cfg = match arch {
            ArchKind::Flex => AccelConfig::flex(self.tiles, self.pes_per_tile),
            ArchKind::Lite => AccelConfig::lite(self.tiles, self.pes_per_tile),
            ArchKind::Central => AccelConfig::central(self.tiles, self.pes_per_tile),
        };
        cfg.task_queue_entries = self.task_queue_entries;
        cfg.pstore_entries = self.pstore_entries;
        cfg.memory.accel_l1 = cfg.memory.accel_l1.clone().with_size(self.cache_kb * 1024);
        cfg.cluster = self.cluster.map(|c| c.cluster_config());
        Some(cfg)
    }

    /// The canonical spec string — the point's identity in cache keys,
    /// Pareto reports and JSONL output.
    ///
    /// # Examples
    ///
    /// ```
    /// use pxl_dse::{DesignPoint, PointArch};
    ///
    /// let p = DesignPoint {
    ///     arch: PointArch::Flex,
    ///     tiles: 4,
    ///     pes_per_tile: 4,
    ///     cache_kb: 32,
    ///     task_queue_entries: 1024,
    ///     pstore_entries: 4096,
    ///     cluster: None,
    /// };
    /// assert_eq!(
    ///     p.spec(),
    ///     "arch=flex tiles=4 pes=4 cache_kb=32 queue=1024 pstore=4096"
    /// );
    /// assert_eq!(DesignPoint::cpu(8).spec(), "arch=cpu cores=8");
    /// use pxl_dse::ClusterPoint;
    /// assert_eq!(
    ///     p.clustered(ClusterPoint::new(2)).spec(),
    ///     "arch=flex tiles=4 pes=4 cache_kb=32 queue=1024 pstore=4096 \
    ///      chips=2 link_lat=32 link_occ=8 steal=hier:2"
    /// );
    /// ```
    pub fn spec(&self) -> String {
        match self.arch {
            PointArch::Cpu => format!("arch=cpu cores={}", self.units()),
            _ => {
                let mut out = format!(
                    "arch={} tiles={} pes={} cache_kb={} queue={} pstore={}",
                    self.arch.label(),
                    self.tiles,
                    self.pes_per_tile,
                    self.cache_kb,
                    self.task_queue_entries,
                    self.pstore_entries
                );
                // Cluster terms append only when set, so every single-chip
                // spec string (and the cache keys derived from it) is
                // byte-identical to the pre-cluster format.
                if let Some(c) = &self.cluster {
                    out.push_str(&format!(
                        " chips={} link_lat={} link_occ={} steal={}",
                        c.chips,
                        c.link_latency_cycles,
                        c.link_occupancy_cycles,
                        c.steal_label()
                    ));
                }
                out
            }
        }
    }
}

/// The paper's tile geometry for a total PE count: up to 4 PEs in a single
/// tile, then 4-PE tiles (the scalability study's shape, also used by
/// `pxl_flow::sweep_pe_counts` and the benchmark harness).
pub fn pe_geometry(pes: usize) -> (usize, usize) {
    if pes <= 4 {
        (1, pes)
    } else {
        (pes / 4, 4)
    }
}

/// One (benchmark, design point) pair to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Benchmark name.
    pub bench: String,
    /// The design point.
    pub point: DesignPoint,
    /// Resource estimate for accelerator points on known benchmarks.
    pub resources: Option<TileResources>,
}

/// Why a candidate was pruned before simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneReason {
    /// The configuration is not realizable.
    Config(ConfigError),
    /// The benchmark has no LiteArch variant.
    NoLiteVariant,
    /// The point needs more tiles than fit the target device.
    DoesNotFit {
        /// Device name.
        device: &'static str,
        /// Tiles of this size that do fit.
        max_tiles: u32,
    },
}

impl std::fmt::Display for PruneReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneReason::Config(e) => write!(f, "invalid configuration: {e}"),
            PruneReason::NoLiteVariant => write!(f, "no LiteArch variant"),
            PruneReason::DoesNotFit { device, max_tiles } => {
                write!(f, "does not fit {device} (max {max_tiles} tiles)")
            }
        }
    }
}

/// A pruned candidate and the constraint it violated.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedCandidate {
    /// The infeasible candidate.
    pub candidate: Candidate,
    /// Which constraint pruned it.
    pub reason: PruneReason,
}

/// The result of feasibility-partitioning a space's candidates.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Candidates worth simulating.
    pub feasible: Vec<Candidate>,
    /// Candidates rejected up front, with reasons.
    pub pruned: Vec<PrunedCandidate>,
}

/// A declarative design space: benchmarks × architectures × one [`Axis`]
/// per knob, with optional device fitting.
///
/// Defaults mirror `pxl_flow::AcceleratorBuilder`: FlexArch, 4 tiles,
/// 4 PEs per tile, 32 KiB cache, 1024-entry queues, 4096-entry P-Store,
/// no device constraint, no benchmarks (set at least one).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    benchmarks: Vec<String>,
    archs: Vec<PointArch>,
    tiles: Axis,
    pes_per_tile: Axis,
    cache_kb: Axis,
    task_queue_entries: Axis,
    pstore_entries: Axis,
    /// Paired (tiles, pes_per_tile) geometries; when set, replaces the
    /// tiles × pes cross product (the scalability-sweep shape).
    geometry_pairs: Option<Vec<(usize, usize)>>,
    device: Option<FpgaDevice>,
    /// Chip counts; values above 1 grow FlexArch points into clusters.
    chips: Axis,
    /// Inter-chip link latency axis (engine cycles per hop).
    link_latency_cycles: Axis,
    /// Inter-chip link occupancy axis (engine cycles per message).
    link_occupancy_cycles: Axis,
    /// Cross-chip stealing disciplines to enumerate for multi-chip points.
    steal_modes: Vec<StealMode>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::new()
    }
}

impl SearchSpace {
    /// An empty space with the builder defaults.
    pub fn new() -> Self {
        SearchSpace {
            benchmarks: Vec::new(),
            archs: vec![PointArch::Flex],
            tiles: Axis::fixed(4),
            pes_per_tile: Axis::fixed(4),
            cache_kb: Axis::fixed(32),
            task_queue_entries: Axis::fixed(1024),
            pstore_entries: Axis::fixed(4096),
            geometry_pairs: None,
            device: None,
            chips: Axis::fixed(1),
            link_latency_cycles: Axis::fixed(32),
            link_occupancy_cycles: Axis::fixed(8),
            steal_modes: vec![StealMode::Hierarchical { spill_threshold: 2 }],
        }
    }

    /// Sets the benchmarks to explore.
    pub fn benchmarks<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.benchmarks = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the architectures axis (duplicates dropped, order kept).
    pub fn archs(mut self, archs: impl IntoIterator<Item = PointArch>) -> Self {
        let mut out: Vec<PointArch> = Vec::new();
        for a in archs {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        self.archs = out;
        self
    }

    /// Sets the tiles axis.
    pub fn tiles(mut self, axis: Axis) -> Self {
        self.tiles = axis;
        self
    }

    /// Sets the PEs-per-tile axis.
    pub fn pes_per_tile(mut self, axis: Axis) -> Self {
        self.pes_per_tile = axis;
        self
    }

    /// Sets the cache-capacity axis (KiB).
    pub fn cache_kb(mut self, axis: Axis) -> Self {
        self.cache_kb = axis;
        self
    }

    /// Sets the task-queue-entries axis.
    pub fn task_queue_entries(mut self, axis: Axis) -> Self {
        self.task_queue_entries = axis;
        self
    }

    /// Sets the P-Store-entries axis.
    pub fn pstore_entries(mut self, axis: Axis) -> Self {
        self.pstore_entries = axis;
        self
    }

    /// Replaces the tiles × PEs cross product with the paper's scalability
    /// geometry: one `(tiles, pes_per_tile)` pair per total PE count, via
    /// [`pe_geometry`].
    pub fn pe_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.geometry_pairs = Some(counts.into_iter().map(pe_geometry).collect());
        self
    }

    /// Constrains accelerator points to tiles that fit `device` (checked in
    /// [`SearchSpace::partition`]). On clustered points each *chip's* tile
    /// share must fit: a 2-chip 8-tile point needs 4 tiles per device.
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the chip-count axis. Values above 1 turn FlexArch points into
    /// multi-chip clusters; the value 1 keeps the classic single-chip point.
    pub fn chips(mut self, axis: Axis) -> Self {
        self.chips = axis;
        self
    }

    /// Sets the inter-chip link latency axis (engine cycles per hop).
    pub fn link_latency_cycles(mut self, axis: Axis) -> Self {
        self.link_latency_cycles = axis;
        self
    }

    /// Sets the inter-chip link occupancy axis (engine cycles per message;
    /// the inverse-bandwidth knob).
    pub fn link_occupancy_cycles(mut self, axis: Axis) -> Self {
        self.link_occupancy_cycles = axis;
        self
    }

    /// Sets the cross-chip stealing disciplines to enumerate (duplicates
    /// dropped, order kept). Only multi-chip points expand over this list.
    pub fn steal_modes(mut self, modes: impl IntoIterator<Item = StealMode>) -> Self {
        let mut out: Vec<StealMode> = Vec::new();
        for m in modes {
            if !out.contains(&m) {
                out.push(m);
            }
        }
        self.steal_modes = out;
        self
    }

    /// The benchmarks under exploration.
    pub fn benchmark_names(&self) -> &[String] {
        &self.benchmarks
    }

    /// All design points, in deterministic enumeration order (architecture
    /// outermost, then geometry, cache, queue, P-Store). CPU points are
    /// normalized to a core count and deduplicated.
    pub fn points(&self) -> Vec<DesignPoint> {
        let pairs: Vec<(usize, usize)> = match &self.geometry_pairs {
            Some(p) => p.clone(),
            None => {
                let mut out = Vec::new();
                for &t in self.tiles.values() {
                    for &p in self.pes_per_tile.values() {
                        out.push((t, p));
                    }
                }
                out
            }
        };
        let mut points = Vec::new();
        for &arch in &self.archs {
            if arch == PointArch::Cpu {
                // The baseline has no accelerator knobs: one point per
                // distinct core count.
                for &(tiles, pes) in &pairs {
                    let p = DesignPoint::cpu(tiles * pes);
                    if !points.contains(&p) {
                        points.push(p);
                    }
                }
                continue;
            }
            let clusters = self.cluster_variants(arch);
            for &(tiles, pes_per_tile) in &pairs {
                for &cache_kb in self.cache_kb.values() {
                    for &task_queue_entries in self.task_queue_entries.values() {
                        for &pstore_entries in self.pstore_entries.values() {
                            for &cluster in &clusters {
                                points.push(DesignPoint {
                                    arch,
                                    tiles,
                                    pes_per_tile,
                                    cache_kb,
                                    task_queue_entries,
                                    pstore_entries,
                                    cluster,
                                });
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// The cluster shapes one base point expands into: `None` for each
    /// chips=1 value, the chips × link × stealing cross product otherwise.
    /// Only FlexArch points cluster (the link tier needs work stealing);
    /// with the default single-chip axes this is just `[None]`, so spaces
    /// that never mention chips enumerate exactly as before.
    fn cluster_variants(&self, arch: PointArch) -> Vec<Option<ClusterPoint>> {
        let mut out: Vec<Option<ClusterPoint>> = Vec::new();
        if arch != PointArch::Flex {
            return vec![None];
        }
        for &chips in self.chips.values() {
            if chips <= 1 {
                if !out.contains(&None) {
                    out.push(None);
                }
                continue;
            }
            for &lat in self.link_latency_cycles.values() {
                for &occ in self.link_occupancy_cycles.values() {
                    for &stealing in &self.steal_modes {
                        let c = Some(ClusterPoint {
                            chips,
                            link_latency_cycles: lat as u64,
                            link_occupancy_cycles: occ as u64,
                            stealing,
                        });
                        if !out.contains(&c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        if out.is_empty() {
            out.push(None);
        }
        out
    }

    /// All (benchmark, point) candidates: benchmarks outermost, so one
    /// benchmark's candidates are contiguous.
    pub fn candidates(&self) -> Vec<Candidate> {
        let points = self.points();
        let mut out = Vec::with_capacity(self.benchmarks.len() * points.len());
        for bench in &self.benchmarks {
            for point in &points {
                let resources = match point.arch.arch_kind() {
                    // The central ablation keeps FlexArch's tile hardware
                    // (P-Store, full task model) and only swaps the queue
                    // organization, so it costs flex-tile resources.
                    Some(kind) => tile_resources(
                        bench,
                        kind != ArchKind::Lite,
                        point.pes_per_tile as u32,
                        point.cache_kb * 1024,
                    ),
                    None => None,
                };
                out.push(Candidate {
                    bench: bench.clone(),
                    point: point.clone(),
                    resources,
                });
            }
        }
        out
    }

    /// Splits [`SearchSpace::candidates`] into feasible and pruned sets —
    /// the up-front check that keeps infeasible points from ever costing a
    /// simulation.
    pub fn partition(&self) -> Partition {
        let mut partition = Partition::default();
        for candidate in self.candidates() {
            match self.prune_reason(&candidate) {
                None => partition.feasible.push(candidate),
                Some(reason) => partition.pruned.push(PrunedCandidate { candidate, reason }),
            }
        }
        partition
    }

    fn prune_reason(&self, candidate: &Candidate) -> Option<PruneReason> {
        let point = &candidate.point;
        if point.arch == PointArch::Cpu {
            // The baseline only needs at least one core.
            return (point.units() == 0).then_some(PruneReason::Config(ConfigError::NoPes));
        }
        if let Some(cfg) = point.accel_config() {
            if let Err(e) = cfg.validate() {
                return Some(PruneReason::Config(e));
            }
        }
        if point.arch == PointArch::Lite {
            // Known benchmark without a Lite worker variant; unknown
            // workers carry no resource model and are left to the
            // evaluator.
            if let Some((_, lite)) = pxl_cost::resources::worker(&candidate.bench) {
                if lite.is_none() {
                    return Some(PruneReason::NoLiteVariant);
                }
            }
        }
        if let (Some(device), Some(resources)) = (&self.device, &candidate.resources) {
            let max_tiles = device.max_tiles(&resources.tile);
            // Each chip is its own device: fit the per-chip tile share, not
            // the cluster total.
            let chips = point.cluster.map_or(1, |c| c.chips.max(1));
            let per_chip_tiles = point.tiles.div_ceil(chips);
            if per_chip_tiles as u32 > max_tiles {
                return Some(PruneReason::DoesNotFit {
                    device: device.name,
                    max_tiles,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_axis_space() -> SearchSpace {
        SearchSpace::new()
            .benchmarks(["queens"])
            .archs([PointArch::Flex, PointArch::Lite])
            .tiles(Axis::list([1, 2]))
            .cache_kb(Axis::pow2(16, 32))
    }

    #[test]
    fn axes_enumerate_deterministically() {
        assert_eq!(Axis::range(2, 5).values(), &[2, 3, 4, 5]);
        assert_eq!(Axis::pow2(3, 16).values(), &[4, 8, 16]);
        assert_eq!(Axis::pow2(16, 8).values(), &[] as &[usize]);
        assert_eq!(Axis::fixed(7).values(), &[7]);
        assert_eq!(Axis::list([5, 5, 1]).values(), &[5, 1]);
    }

    #[test]
    fn points_are_the_cross_product_in_order() {
        let points = three_axis_space().points();
        assert_eq!(points.len(), 2 * 2 * 2);
        // Arch outermost, then tiles, then cache.
        assert_eq!(
            points[0].spec(),
            DesignPoint {
                arch: PointArch::Flex,
                tiles: 1,
                pes_per_tile: 4,
                cache_kb: 16,
                task_queue_entries: 1024,
                pstore_entries: 4096,
                cluster: None,
            }
            .spec()
        );
        assert_eq!(points[1].cache_kb, 32);
        assert_eq!(points[2].tiles, 2);
        assert_eq!(points[4].arch, PointArch::Lite);
        // Enumeration is reproducible.
        assert_eq!(points, three_axis_space().points());
    }

    #[test]
    fn accel_defaults_reproduce_the_raw_flex_config() {
        // Drivers that used to build `AccelConfig::flex(t, p)` directly now
        // route through `DesignPoint::accel`; the elaborated configuration
        // must be indistinguishable or migrated runs would drift.
        for (arch, reference) in [
            (PointArch::Flex, AccelConfig::flex(2, 4)),
            (PointArch::Lite, AccelConfig::lite(2, 4)),
            (PointArch::Central, AccelConfig::central(2, 4)),
        ] {
            let cfg = DesignPoint::accel(arch, 2, 4).accel_config().unwrap();
            assert_eq!(cfg.task_queue_entries, reference.task_queue_entries);
            assert_eq!(cfg.pstore_entries, reference.pstore_entries);
            assert_eq!(
                cfg.memory.accel_l1.size_bytes,
                reference.memory.accel_l1.size_bytes
            );
            assert_eq!(cfg.memory.accel_l1.ways, reference.memory.accel_l1.ways);
            assert_eq!(cfg.arch, reference.arch);
            assert_eq!(cfg.num_pes(), reference.num_pes());
        }
    }

    #[test]
    #[should_panic(expected = "use DesignPoint::cpu")]
    fn accel_rejects_the_cpu_arch() {
        let _ = DesignPoint::accel(PointArch::Cpu, 1, 4);
    }

    #[test]
    fn cpu_points_are_normalized_and_deduped() {
        let space = SearchSpace::new()
            .benchmarks(["uts"])
            .archs([PointArch::Cpu])
            .tiles(Axis::list([1, 2, 4]))
            .pes_per_tile(Axis::list([2, 4]));
        let points = space.points();
        // 1x4 and 2x2 (and 2x4, 4x2) collapse: cores in {2, 4, 8, 16}.
        let cores: Vec<usize> = points.iter().map(|p| p.units()).collect();
        assert_eq!(cores, vec![2, 4, 8, 16]);
        assert!(points.iter().all(|p| p.cache_kb == 0
            && p.task_queue_entries == 0
            && p.pstore_entries == 0
            && p.accel_config().is_none()));
    }

    #[test]
    fn pe_counts_use_the_paper_geometry() {
        assert_eq!(pe_geometry(1), (1, 1));
        assert_eq!(pe_geometry(4), (1, 4));
        assert_eq!(pe_geometry(32), (8, 4));
        let space = SearchSpace::new()
            .benchmarks(["queens"])
            .pe_counts([1, 4, 16]);
        let points = space.points();
        let geo: Vec<(usize, usize)> = points.iter().map(|p| (p.tiles, p.pes_per_tile)).collect();
        assert_eq!(geo, vec![(1, 1), (1, 4), (4, 4)]);
    }

    #[test]
    fn partition_prunes_bad_geometry_lite_gaps_and_device_misfits() {
        let space = SearchSpace::new()
            .benchmarks(["queens", "cilksort"])
            .archs([PointArch::Flex, PointArch::Lite])
            .cache_kb(Axis::list([32, 48])); // 48 KiB -> 384 sets, invalid
        let partition = space.partition();
        let reasons: Vec<&PruneReason> = partition.pruned.iter().map(|p| &p.reason).collect();
        // Both benches x both archs get a 48 KiB point pruned; cilksort
        // additionally loses both Lite points (32 KiB pruned as
        // NoLiteVariant; 48 KiB fails validation first).
        assert!(
            reasons
                .iter()
                .filter(|r| matches!(r, PruneReason::Config(ConfigError::BadCacheGeometry { .. })))
                .count()
                >= 4
        );
        assert!(reasons.contains(&&PruneReason::NoLiteVariant));
        assert!(partition.feasible.iter().all(|c| c.point.cache_kb == 32
            && !(c.bench == "cilksort" && c.point.arch == PointArch::Lite)));

        // Device fitting: cilksort's huge worker caps tiles below 8 even on
        // the mainstream device.
        let space = SearchSpace::new()
            .benchmarks(["cilksort"])
            .tiles(Axis::list([1, 8]))
            .device(FpgaDevice::kintex_7k160t());
        let partition = space.partition();
        assert_eq!(partition.feasible.len(), 1);
        assert_eq!(partition.feasible[0].point.tiles, 1);
        assert!(matches!(
            partition.pruned[0].reason,
            PruneReason::DoesNotFit { device, .. } if device == "Kintex XC7K160T"
        ));
    }

    #[test]
    fn prune_reasons_render() {
        assert_eq!(
            PruneReason::Config(ConfigError::NoTiles).to_string(),
            "invalid configuration: accelerator needs at least one tile"
        );
        assert_eq!(
            PruneReason::NoLiteVariant.to_string(),
            "no LiteArch variant"
        );
        assert_eq!(
            PruneReason::DoesNotFit {
                device: "Artix XC7A75T",
                max_tiles: 3
            }
            .to_string(),
            "does not fit Artix XC7A75T (max 3 tiles)"
        );
    }

    #[test]
    fn candidates_carry_resources_for_known_benchmarks() {
        let space = SearchSpace::new().benchmarks(["nw", "mystery"]);
        let candidates = space.candidates();
        assert_eq!(candidates.len(), 2);
        assert!(candidates[0].resources.is_some());
        assert!(candidates[1].resources.is_none(), "unknown worker");
        // Unknown workers stay feasible (no resource model to prune with).
        assert_eq!(space.partition().feasible.len(), 2);
    }
}
