//! Pareto fronts over the exploration objectives, with knee-point
//! selection.
//!
//! Every objective is minimized: whole-application runtime, energy, and
//! the two dominant FPGA footprint axes (LUTs and RAM18 blocks). A point
//! is on the front iff no other evaluated point [`dominates`] it. The
//! **knee point** — the front member closest (L2) to the per-front
//! normalized origin — is the "build this one unless you have a reason not
//! to" answer the report leads with.

use crate::cache::Measurement;
use crate::space::DesignPoint;
use pxl_sim::json::write_string;

/// The minimized objective vector of a measurement:
/// `(whole_ps, energy_j, lut, bram18)`.
pub fn objectives(m: &Measurement) -> (u64, f64, u64, u64) {
    (m.whole_ps, m.energy_j, m.lut, m.bram18)
}

/// Whether `a` Pareto-dominates `b`: no worse on every objective and
/// strictly better on at least one.
pub fn dominates(a: &Measurement, b: &Measurement) -> bool {
    let no_worse = a.whole_ps <= b.whole_ps
        && a.energy_j <= b.energy_j
        && a.lut <= b.lut
        && a.bram18 <= b.bram18;
    let better =
        a.whole_ps < b.whole_ps || a.energy_j < b.energy_j || a.lut < b.lut || a.bram18 < b.bram18;
    no_worse && better
}

/// One non-dominated design on a benchmark's front.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontPoint {
    /// The design point.
    pub point: DesignPoint,
    /// What it measured.
    pub measurement: Measurement,
    /// Whether this is the front's knee point.
    pub knee: bool,
}

/// The Pareto front of one benchmark's evaluated points.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// The benchmark the front belongs to.
    pub benchmark: String,
    /// Non-dominated points, sorted by ascending whole-application runtime
    /// (ties broken by energy, then spec string — fully deterministic).
    pub points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// Builds the front from every evaluated `(point, measurement)` pair of
    /// one benchmark.
    pub fn build(benchmark: impl Into<String>, evaluated: &[(DesignPoint, Measurement)]) -> Self {
        let mut points: Vec<FrontPoint> = evaluated
            .iter()
            .filter(|(_, m)| !evaluated.iter().any(|(_, other)| dominates(other, m)))
            .map(|(point, measurement)| FrontPoint {
                point: point.clone(),
                measurement: *measurement,
                knee: false,
            })
            .collect();
        points.sort_by(|a, b| {
            a.measurement
                .whole_ps
                .cmp(&b.measurement.whole_ps)
                .then(
                    a.measurement
                        .energy_j
                        .partial_cmp(&b.measurement.energy_j)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then_with(|| a.point.spec().cmp(&b.point.spec()))
        });
        points.dedup_by(|a, b| a.point == b.point);
        if let Some(knee) = knee_index(&points) {
            points[knee].knee = true;
        }
        ParetoFront {
            benchmark: benchmark.into(),
            points,
        }
    }

    /// The knee point, when the front is non-empty.
    pub fn knee(&self) -> Option<&FrontPoint> {
        self.points.iter().find(|p| p.knee)
    }

    /// One JSONL line per front point:
    /// `{"benchmark":...,"spec":...,"knee":...,<objectives>}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str("{\"benchmark\":");
            write_string(&mut out, &self.benchmark);
            out.push_str(",\"spec\":");
            write_string(&mut out, &p.point.spec());
            out.push_str(&format!(
                ",\"knee\":{},\"kernel_ps\":{},\"whole_ps\":{},\"energy_j\":{},\"lut\":{},\"bram18\":{}}}\n",
                p.knee,
                p.measurement.kernel_ps,
                p.measurement.whole_ps,
                p.measurement.energy_j,
                p.measurement.lut,
                p.measurement.bram18,
            ));
        }
        out
    }
}

/// Index of the knee point: minimize the L2 norm of the objectives after
/// normalizing each to `[0, 1]` over the front (degenerate objectives —
/// identical across the front — contribute zero).
fn knee_index(points: &[FrontPoint]) -> Option<usize> {
    if points.is_empty() {
        return None;
    }
    let objs: Vec<[f64; 4]> = points
        .iter()
        .map(|p| {
            let (t, e, l, b) = objectives(&p.measurement);
            [t as f64, e, l as f64, b as f64]
        })
        .collect();
    let mut lo = objs[0];
    let mut hi = objs[0];
    for o in &objs {
        for i in 0..4 {
            lo[i] = lo[i].min(o[i]);
            hi[i] = hi[i].max(o[i]);
        }
    }
    let norm_sq = |o: &[f64; 4]| -> f64 {
        (0..4)
            .map(|i| {
                let span = hi[i] - lo[i];
                if span > 0.0 {
                    let x = (o[i] - lo[i]) / span;
                    x * x
                } else {
                    0.0
                }
            })
            .sum()
    };
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, o) in objs.iter().enumerate() {
        let d = norm_sq(o);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PointArch;

    fn point(tiles: usize) -> DesignPoint {
        DesignPoint {
            arch: PointArch::Flex,
            tiles,
            pes_per_tile: 4,
            cache_kb: 32,
            task_queue_entries: 1024,
            pstore_entries: 4096,
            cluster: None,
        }
    }

    fn m(whole: u64, energy: f64, lut: u64) -> Measurement {
        Measurement {
            kernel_ps: whole,
            whole_ps: whole,
            energy_j: energy,
            lut,
            bram18: lut / 1000,
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&m(10, 1.0, 100), &m(20, 2.0, 200)));
        assert!(dominates(&m(10, 1.0, 100), &m(10, 1.0, 200)));
        assert!(!dominates(&m(10, 1.0, 100), &m(10, 1.0, 100)), "equal");
        // Trade-off: faster but bigger — neither dominates.
        assert!(!dominates(&m(10, 1.0, 900), &m(30, 1.0, 100)));
        assert!(!dominates(&m(30, 1.0, 100), &m(10, 1.0, 900)));
    }

    #[test]
    fn front_keeps_exactly_the_non_dominated_points() {
        // Hand-checkable: c is dominated by a; a, b, d trade off.
        let evaluated = vec![
            (point(1), m(30, 1.0, 1_000)), // a: small and slow
            (point(4), m(10, 2.0, 4_000)), // b: fast and big
            (point(2), m(35, 1.5, 2_000)), // c: dominated by a
            (point(8), m(20, 1.2, 3_000)), // d: middle trade-off
        ];
        let front = ParetoFront::build("queens", &evaluated);
        let tiles: Vec<usize> = front.points.iter().map(|p| p.point.tiles).collect();
        // Sorted by runtime: b (10), d (20), a (30); c gone.
        assert_eq!(tiles, vec![4, 8, 1]);
        // Front invariants: no member dominated by any evaluated point, and
        // every non-member dominated by some member.
        for fp in &front.points {
            assert!(!evaluated.iter().any(|(_, o)| dominates(o, &fp.measurement)));
        }
        assert!(front
            .points
            .iter()
            .any(|fp| dominates(&fp.measurement, &m(35, 1.5, 2_000))));
    }

    #[test]
    fn knee_balances_the_objectives() {
        let evaluated = vec![
            (point(1), m(100, 1.0, 1_000)),  // cheap extreme
            (point(8), m(10, 10.0, 10_000)), // fast extreme
            (point(4), m(20, 2.0, 2_000)),   // balanced
        ];
        let front = ParetoFront::build("uts", &evaluated);
        assert_eq!(front.points.len(), 3);
        let knee = front.knee().unwrap();
        assert_eq!(knee.point.tiles, 4, "the balanced point is the knee");
        assert_eq!(front.points.iter().filter(|p| p.knee).count(), 1);
    }

    #[test]
    fn single_point_front_is_its_own_knee() {
        let front = ParetoFront::build("nw", &[(point(2), m(5, 0.5, 500))]);
        assert_eq!(front.points.len(), 1);
        assert!(front.points[0].knee);
        let empty = ParetoFront::build("nw", &[]);
        assert!(empty.knee().is_none());
    }

    #[test]
    fn jsonl_lists_front_points_with_knee_flag() {
        let front = ParetoFront::build(
            "queens",
            &[(point(1), m(30, 1.0, 1_000)), (point(4), m(10, 2.0, 4_000))],
        );
        let jsonl = front.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.contains("\"benchmark\":\"queens\"")));
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"knee\":true")).count(),
            1
        );
        assert!(lines[0].contains("arch=flex tiles=4"));
    }

    #[test]
    fn duplicate_points_collapse() {
        let evaluated = vec![(point(1), m(10, 1.0, 1_000)), (point(1), m(10, 1.0, 1_000))];
        let front = ParetoFront::build("bfsqueue", &evaluated);
        assert_eq!(front.points.len(), 1);
    }
}
