//! FPGA resource model: LUT/FF/DSP/BRAM per component, per PE, per tile,
//! and device fitting (the paper's Table V and Section V-E).
//!
//! The model composes an accelerator's resources from:
//!
//! * an application-specific **worker**, calibrated per benchmark against
//!   the paper's Vivado synthesis results (Table V per-PE numbers minus the
//!   template TMU) — these are the only calibrated leaf values;
//! * **template components** that depend only on the architecture: the
//!   task-management unit (with or without work-stealing logic), the
//!   per-tile P-Store, argument/task router and network interfaces
//!   (FlexArch only), and the tile cache (scaled with capacity, following
//!   Xilinx's system-cache IP numbers).

use std::ops::{Add, Mul};

/// A resource vector: LUTs, flip-flops, DSP48 slices and RAM18 blocks
/// (each RAM36 counts as two RAM18s, as in the paper's Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceVec {
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// 18 Kb block-RAM units.
    pub bram18: u32,
}

impl ResourceVec {
    /// Creates a vector.
    pub const fn new(lut: u32, ff: u32, dsp: u32, bram18: u32) -> Self {
        ResourceVec {
            lut,
            ff,
            dsp,
            bram18,
        }
    }

    /// Whether `self` fits within `capacity` (component-wise).
    pub fn fits_in(&self, capacity: &ResourceVec) -> bool {
        self.lut <= capacity.lut
            && self.ff <= capacity.ff
            && self.dsp <= capacity.dsp
            && self.bram18 <= capacity.bram18
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
            bram18: self.bram18 + rhs.bram18,
        }
    }
}

impl Mul<u32> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, n: u32) -> ResourceVec {
        ResourceVec {
            lut: self.lut * n,
            ff: self.ff * n,
            dsp: self.dsp * n,
            bram18: self.bram18 * n,
        }
    }
}

/// Template TMU with work stealing (LFSR, steal state machine, deque
/// control) — FlexArch PEs.
pub fn tmu_flex() -> ResourceVec {
    ResourceVec::new(340, 330, 0, 2)
}

/// Simplified TMU without stealing — LiteArch PEs.
pub fn tmu_lite() -> ResourceVec {
    ResourceVec::new(150, 140, 0, 0)
}

/// Per-tile pending-task store (FlexArch only).
pub fn pstore() -> ResourceVec {
    ResourceVec::new(800, 600, 0, 4)
}

/// Per-tile argument/task router (FlexArch only).
pub fn router() -> ResourceVec {
    ResourceVec::new(350, 280, 0, 1)
}

/// Per-tile network interfaces.
pub fn net_if() -> ResourceVec {
    ResourceVec::new(300, 250, 0, 2)
}

/// Tile cache, scaled with capacity (following the Xilinx system-cache IP:
/// control logic plus one RAM18 per 2 KiB of data+tag storage).
pub fn cache(bytes: usize) -> ResourceVec {
    ResourceVec::new(
        1004 + (bytes / 64) as u32,
        838 + (bytes / 64) as u32,
        0,
        (bytes / 2048) as u32,
    )
}

/// Calibrated worker resources for one benchmark:
/// `(flex_worker, lite_worker)`; `None` if the benchmark has no LiteArch
/// variant. Values are the paper's Table V per-PE numbers minus the
/// template TMU.
pub fn worker(bench: &str) -> Option<(ResourceVec, Option<ResourceVec>)> {
    let r = ResourceVec::new;
    let v = match bench {
        "nw" => (r(1147, 1217, 3, 5), Some(r(1123, 1206, 1, 4))),
        "quicksort" => (r(1488, 1154, 0, 4), Some(r(1707, 1350, 0, 2))),
        "cilksort" => (r(5621, 3455, 0, 6), None),
        "queens" => (r(209, 205, 0, 2), Some(r(554, 466, 0, 0))),
        "knapsack" => (r(397, 440, 5, 3), Some(r(425, 326, 0, 0))),
        "uts" => (r(1887, 1886, 0, 3), Some(r(2391, 2018, 0, 0))),
        "bbgemm" => (r(1211, 1459, 15, 17), Some(r(869, 1221, 15, 14))),
        "bfsqueue" => (r(1141, 860, 0, 4), Some(r(737, 682, 0, 1))),
        "spmvcrs" => (r(1101, 943, 3, 11), Some(r(725, 765, 3, 8))),
        "stencil2d" => (r(1401, 2004, 12, 8), Some(r(1050, 1824, 12, 5))),
        _ => return None,
    };
    Some(v)
}

/// Resources of one PE (worker + TMU) and one tile for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileResources {
    /// One PE: worker + TMU.
    pub pe: ResourceVec,
    /// One tile: PEs + (P-Store + router, FlexArch only) + network
    /// interfaces + cache.
    pub tile: ResourceVec,
}

/// Computes PE and tile resources for `bench` on the given architecture.
///
/// Returns `None` for unknown benchmarks or missing Lite variants.
pub fn tile_resources(
    bench: &str,
    flex: bool,
    pes_per_tile: u32,
    cache_bytes: usize,
) -> Option<TileResources> {
    let (flex_worker, lite_worker) = worker(bench)?;
    let pe = if flex {
        flex_worker + tmu_flex()
    } else {
        lite_worker? + tmu_lite()
    };
    let mut tile = pe * pes_per_tile + net_if() + cache(cache_bytes);
    if flex {
        tile = tile + pstore() + router();
    }
    Some(TileResources { pe, tile })
}

/// A 7-series FPGA device, with usable capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Total device resources.
    pub capacity: ResourceVec,
    /// Fraction of the device usable before routing congestion (percent).
    pub utilization_pct: u32,
}

impl FpgaDevice {
    /// The paper's low-cost device: Artix-7 XC7A75T (similar to Zedboard's
    /// fabric).
    pub fn artix_7a75t() -> Self {
        FpgaDevice {
            name: "Artix XC7A75T",
            capacity: ResourceVec::new(47_200, 94_400, 180, 210),
            utilization_pct: 85,
        }
    }

    /// The paper's mainstream device: Kintex-7 XC7K160T.
    pub fn kintex_7k160t() -> Self {
        FpgaDevice {
            name: "Kintex XC7K160T",
            capacity: ResourceVec::new(101_400, 202_800, 600, 650),
            utilization_pct: 85,
        }
    }

    /// Usable capacity after the utilization margin.
    pub fn usable(&self) -> ResourceVec {
        let c = &self.capacity;
        let p = self.utilization_pct;
        ResourceVec::new(
            c.lut * p / 100,
            c.ff * p / 100,
            c.dsp * p / 100,
            c.bram18 * p / 100,
        )
    }

    /// Maximum number of tiles of the given size that fit (after a fixed
    /// accelerator-level overhead for the interface block and crossbars),
    /// capped at 8 tiles — the architecture the paper evaluates.
    pub fn max_tiles(&self, tile: &ResourceVec) -> u32 {
        let usable = self.usable();
        let overhead = ResourceVec::new(1_200, 1_000, 0, 2);
        if !overhead.fits_in(&usable) {
            return 0;
        }
        let rem = ResourceVec::new(
            usable.lut - overhead.lut,
            usable.ff - overhead.ff,
            usable.dsp - overhead.dsp,
            usable.bram18 - overhead.bram18,
        );
        let div = |avail: u32, need: u32| avail.checked_div(need).unwrap_or(u32::MAX);
        let tiles = div(rem.lut, tile.lut)
            .min(div(rem.ff, tile.ff))
            .min(div(rem.dsp, tile.dsp))
            .min(div(rem.bram18, tile.bram18));
        tiles.min(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVec::new(1, 2, 3, 4);
        let b = ResourceVec::new(10, 20, 30, 40);
        assert_eq!(a + b, ResourceVec::new(11, 22, 33, 44));
        assert_eq!(a * 3, ResourceVec::new(3, 6, 9, 12));
        assert!(a.fits_in(&b));
        assert!(!b.fits_in(&a));
    }

    #[test]
    fn pe_numbers_match_table5() {
        // Per-PE totals must reproduce the paper's Table V exactly (the
        // worker values are calibrated as PE - TMU).
        let cases = [
            ("nw", (1487, 1547, 3, 7), Some((1273, 1346, 1, 4))),
            ("quicksort", (1828, 1484, 0, 6), Some((1857, 1490, 0, 2))),
            ("cilksort", (5961, 3785, 0, 8), None),
            ("queens", (549, 535, 0, 4), Some((704, 606, 0, 0))),
            ("knapsack", (737, 770, 5, 5), Some((575, 466, 0, 0))),
            ("uts", (2227, 2216, 0, 5), Some((2541, 2158, 0, 0))),
            ("bbgemm", (1551, 1789, 15, 19), Some((1019, 1361, 15, 14))),
            ("bfsqueue", (1481, 1190, 0, 6), Some((887, 822, 0, 1))),
            ("spmvcrs", (1441, 1273, 3, 13), Some((875, 905, 3, 8))),
            ("stencil2d", (1741, 2334, 12, 10), Some((1200, 1964, 12, 5))),
        ];
        for (name, flex_pe, lite_pe) in cases {
            let t = tile_resources(name, true, 4, 32 * 1024).unwrap();
            assert_eq!(
                (t.pe.lut, t.pe.ff, t.pe.dsp, t.pe.bram18),
                flex_pe,
                "{name} flex PE"
            );
            match lite_pe {
                Some(want) => {
                    let t = tile_resources(name, false, 4, 32 * 1024).unwrap();
                    assert_eq!(
                        (t.pe.lut, t.pe.ff, t.pe.dsp, t.pe.bram18),
                        want,
                        "{name} lite PE"
                    );
                }
                None => assert!(tile_resources(name, false, 4, 32 * 1024).is_none()),
            }
        }
    }

    #[test]
    fn tile_is_derived_from_components() {
        let t = tile_resources("nw", true, 4, 32 * 1024).unwrap();
        let expect = t.pe * 4 + pstore() + router() + net_if() + cache(32 * 1024);
        assert_eq!(t.tile, expect);
        // Within 15% of the paper's nw Flex tile (8914 LUT / 51 BRAM).
        assert!((t.tile.lut as i64 - 8914).unsigned_abs() < 8914 / 7);
        assert!((t.tile.bram18 as i64 - 51).unsigned_abs() <= 5);
    }

    #[test]
    fn lite_tile_is_smaller_for_data_parallel_benchmarks() {
        for name in ["bbgemm", "bfsqueue", "spmvcrs", "stencil2d"] {
            let flex = tile_resources(name, true, 4, 32 * 1024).unwrap();
            let lite = tile_resources(name, false, 4, 32 * 1024).unwrap();
            assert!(lite.tile.lut < flex.tile.lut, "{name}");
            assert!(lite.tile.bram18 < flex.tile.bram18, "{name}");
        }
    }

    #[test]
    fn cache_scales_with_size() {
        assert!(cache(4 * 1024).bram18 < cache(32 * 1024).bram18);
        assert_eq!(cache(32 * 1024).bram18, 16);
        assert_eq!(cache(4 * 1024).bram18, 2);
    }

    #[test]
    fn device_fitting_matches_paper_claims() {
        let artix = FpgaDevice::artix_7a75t();
        let kintex = FpgaDevice::kintex_7k160t();
        // Average tiles on the low-cost device ~4 for FlexArch.
        let names = [
            "nw",
            "quicksort",
            "cilksort",
            "queens",
            "knapsack",
            "uts",
            "bbgemm",
            "bfsqueue",
            "spmvcrs",
            "stencil2d",
        ];
        let avg: f64 = names
            .iter()
            .map(|n| {
                let t = tile_resources(n, true, 4, 32 * 1024).unwrap();
                artix.max_tiles(&t.tile) as f64
            })
            .sum::<f64>()
            / names.len() as f64;
        assert!((2.5..6.0).contains(&avg), "Artix average tiles = {avg}");
        // The mainstream device fits 8 tiles for most benchmarks, but not
        // cilksort.
        let cilksort = tile_resources("cilksort", true, 4, 32 * 1024).unwrap();
        assert!(kintex.max_tiles(&cilksort.tile) < 8);
        let queens = tile_resources("queens", true, 4, 32 * 1024).unwrap();
        assert_eq!(kintex.max_tiles(&queens.tile), 8);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(tile_resources("nope", true, 4, 32 * 1024).is_none());
    }

    #[test]
    fn exact_fit_counts_as_fitting() {
        let need = ResourceVec::new(100, 200, 3, 4);
        assert!(need.fits_in(&need));
        // One unit over in any single component breaks the fit.
        assert!(!ResourceVec::new(101, 200, 3, 4).fits_in(&need));
        assert!(!ResourceVec::new(100, 200, 3, 5).fits_in(&need));
    }

    #[test]
    fn zero_capacity_fits_only_zero_need() {
        let zero = ResourceVec::new(0, 0, 0, 0);
        assert!(zero.fits_in(&zero));
        assert!(zero.fits_in(&ResourceVec::new(1, 1, 1, 1)));
        assert!(!ResourceVec::new(0, 0, 0, 1).fits_in(&zero));
    }

    #[test]
    fn max_tiles_respects_the_binding_constraint() {
        // A device with abundant logic but scarce BRAM: the BRAM column,
        // not LUTs, must decide the tile count.
        let device = FpgaDevice {
            name: "bram-starved",
            capacity: ResourceVec::new(1_000_000, 1_000_000, 1_000, 12),
            utilization_pct: 100,
        };
        let tile = ResourceVec::new(5_000, 4_000, 0, 5);
        // Usable BRAM after the 2-BRAM accelerator overhead is 10 → 2 tiles,
        // though the LUT budget alone would allow far more.
        assert_eq!(device.max_tiles(&tile), 2);
        let by_lut = (device.capacity.lut - 1_200) / tile.lut;
        assert!(by_lut > 2);
        // A device that cannot even host the fixed overhead fits nothing.
        let tiny = FpgaDevice {
            name: "too-small",
            capacity: ResourceVec::new(1_000, 1_000, 0, 1),
            utilization_pct: 100,
        };
        assert_eq!(tiny.max_tiles(&tile), 0);
    }

    #[test]
    fn max_tiles_is_capped_at_the_papers_eight() {
        let device = FpgaDevice {
            name: "huge",
            capacity: ResourceVec::new(10_000_000, 10_000_000, 10_000, 10_000),
            utilization_pct: 100,
        };
        // Zero-need components divide to u32::MAX internally; the cap and
        // the nonzero columns must still bound the answer.
        assert_eq!(device.max_tiles(&ResourceVec::new(10, 10, 0, 0)), 8);
    }
}
