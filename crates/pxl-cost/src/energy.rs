//! Energy model for accelerators and the CPU baseline (the paper's Fig. 8).
//!
//! The paper runs Vivado's power estimator on the synthesized netlist with
//! RTL activity factors for the fabric, and McPAT for the cores. This model
//! keeps the same accounting structure: static power integrated over the
//! run, active power integrated over per-unit busy time (taken from the
//! simulator's `pe{i}.busy_ps` / `core{i}.busy_ps` statistics), and
//! per-event energies for the memory system.

use pxl_sim::{Metrics, Time};

/// Energy accounting parameters (28 nm, Table III clocks). All power in
/// watts, all per-event energies in nanojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// FPGA static power of the configured region (base, independent of
    /// PE count).
    pub accel_static_w: f64,
    /// Additional static power per instantiated PE.
    pub accel_static_per_pe_w: f64,
    /// Dynamic power of one busy PE at 200 MHz.
    pub pe_active_w: f64,
    /// Dynamic power of one idle (clocked but stalled) PE.
    pub pe_idle_w: f64,
    /// Energy per task dispatch through the TMU.
    pub e_task_nj: f64,
    /// Energy per steal attempt (request + response messages).
    pub e_steal_nj: f64,
    /// Energy per message crossing an inter-chip link (SerDes + board
    /// trace; an order of magnitude above an on-chip crossbar hop).
    /// Single-chip runs register no `link.msgs` counter, so the term
    /// contributes exactly zero for them.
    pub e_link_nj: f64,
    /// Energy per L1 hit.
    pub e_l1_hit_nj: f64,
    /// Energy per L1 miss serviced by L2 or a peer cache.
    pub e_l1_miss_nj: f64,
    /// Energy per 64-byte DRAM line transfer.
    pub e_dram_line_nj: f64,
    /// Power of one busy out-of-order core at 1 GHz (McPAT-like).
    pub core_active_w: f64,
    /// Power of one idle core.
    pub core_idle_w: f64,
    /// CPU uncore power (shared L2, interconnect) while the CPU is the
    /// compute engine.
    pub cpu_uncore_w: f64,
    /// Platform power common to both engines (DRAM background, IO).
    pub platform_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            accel_static_w: 0.22,
            accel_static_per_pe_w: 0.007,
            pe_active_w: 0.038,
            pe_idle_w: 0.004,
            e_task_nj: 0.5,
            e_steal_nj: 1.0,
            e_link_nj: 10.0,
            e_l1_hit_nj: 0.2,
            e_l1_miss_nj: 2.5,
            e_dram_line_nj: 30.0,
            core_active_w: 2.1,
            core_idle_w: 0.3,
            cpu_uncore_w: 1.6,
            platform_w: 0.4,
        }
    }
}

/// A run's energy, decomposed by source.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Static/leakage energy (J).
    pub static_j: f64,
    /// Compute-unit dynamic energy (J).
    pub dynamic_j: f64,
    /// Memory-system event energy (J).
    pub memory_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.dynamic_j + self.memory_j
    }
}

impl EnergyModel {
    fn memory_events_j(&self, stats: &Metrics) -> f64 {
        (self.e_l1_hit_nj * stats.get("mem.l1_hits") as f64
            + self.e_l1_miss_nj * (stats.get("mem.l1_misses") + stats.get("mem.upgrades")) as f64
            + self.e_dram_line_nj
                * (stats.get("mem.dram_lines")
                    + stats.get("mem.l2_writebacks")
                    + stats.get("zed.acp_lines")) as f64)
            * 1e-9
    }

    fn busy_seconds(stats: &Metrics, suffix: &str) -> f64 {
        stats.sum_suffix(suffix) as f64 / 1e12
    }

    /// Energy of an accelerator run with `num_pes` PEs over `elapsed`
    /// simulated time, using the engine's statistics. `lite` applies the
    /// LiteArch power discount: tiles without P-Stores, routers or steal
    /// logic leak and switch less (the paper's Fig. 8 trend of LiteArch
    /// being the more energy-efficient design).
    pub fn accel_energy_for(
        &self,
        stats: &Metrics,
        elapsed: Time,
        num_pes: usize,
        lite: bool,
    ) -> EnergyBreakdown {
        let t = elapsed.as_secs_f64();
        let scale = if lite { 0.72 } else { 1.0 };
        let busy = Self::busy_seconds(stats, ".busy_ps");
        let idle = (num_pes as f64 * t - busy).max(0.0);
        let events = (self.e_task_nj * stats.get("accel.tasks") as f64
            + self.e_steal_nj * stats.get("accel.steal_attempts") as f64
            + self.e_link_nj * stats.get("link.msgs") as f64)
            * 1e-9;
        EnergyBreakdown {
            static_j: ((self.accel_static_w + self.accel_static_per_pe_w * num_pes as f64) * scale
                + self.platform_w)
                * t,
            dynamic_j: (self.pe_active_w * busy + self.pe_idle_w * idle) * scale + events,
            memory_j: self.memory_events_j(stats),
        }
    }

    /// FlexArch convenience wrapper over [`EnergyModel::accel_energy_for`].
    pub fn accel_energy(&self, stats: &Metrics, elapsed: Time, num_pes: usize) -> EnergyBreakdown {
        self.accel_energy_for(stats, elapsed, num_pes, false)
    }

    /// Energy of a CPU run with `cores` cores over `elapsed` simulated
    /// time.
    pub fn cpu_energy(&self, stats: &Metrics, elapsed: Time, cores: usize) -> EnergyBreakdown {
        let t = elapsed.as_secs_f64();
        let busy = Self::busy_seconds(stats, ".busy_ps");
        let idle = (cores as f64 * t - busy).max(0.0);
        EnergyBreakdown {
            static_j: (self.cpu_uncore_w + self.platform_w) * t,
            dynamic_j: self.core_active_w * busy + self.core_idle_w * idle,
            memory_j: self.memory_events_j(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(busy_ps: &[u64], l1_hits: u64, dram: u64) -> Metrics {
        let mut s = Metrics::new();
        for (i, b) in busy_ps.iter().enumerate() {
            s.add(&format!("pe{i}.busy_ps"), *b);
        }
        s.add("mem.l1_hits", l1_hits);
        s.add("mem.dram_lines", dram);
        s.add("accel.tasks", 100);
        s.add("accel.steal_attempts", 10);
        s
    }

    #[test]
    fn totals_compose() {
        let m = EnergyModel::default();
        let stats = fake_stats(&[1_000_000, 500_000], 1000, 50);
        let e = m.accel_energy(&stats, Time::from_us(2), 2);
        assert!(e.static_j > 0.0 && e.dynamic_j > 0.0 && e.memory_j > 0.0);
        assert!((e.total_j() - (e.static_j + e.dynamic_j + e.memory_j)).abs() < 1e-18);
    }

    #[test]
    fn busier_run_costs_more() {
        let m = EnergyModel::default();
        let light = m.accel_energy(&fake_stats(&[100_000], 10, 1), Time::from_us(1), 1);
        let heavy = m.accel_energy(&fake_stats(&[900_000], 10, 1), Time::from_us(1), 1);
        assert!(heavy.total_j() > light.total_j());
    }

    #[test]
    fn cpu_is_much_more_power_hungry_than_accelerator() {
        let m = EnergyModel::default();
        // Same elapsed time, fully busy: 8 cores vs 16 PEs.
        let t = Time::from_us(100);
        let cpu_stats = {
            let mut s = Metrics::new();
            for i in 0..8 {
                s.add(&format!("core{i}.busy_ps"), 100_000_000);
            }
            s
        };
        let accel_stats = {
            let mut s = Metrics::new();
            for i in 0..16 {
                s.add(&format!("pe{i}.busy_ps"), 100_000_000);
            }
            s
        };
        let cpu = m.cpu_energy(&cpu_stats, t, 8).total_j();
        let accel = m.accel_energy(&accel_stats, t, 16).total_j();
        assert!(
            cpu / accel > 5.0,
            "expected a large power gap, got {:.2}x",
            cpu / accel
        );
    }

    #[test]
    fn inter_chip_link_traffic_shows_up_in_dynamic_energy() {
        let m = EnergyModel::default();
        let single = m.accel_energy(&fake_stats(&[100_000], 10, 1), Time::from_us(1), 1);
        let clustered = {
            let mut s = fake_stats(&[100_000], 10, 1);
            s.add("link.msgs", 1_000);
            m.accel_energy(&s, Time::from_us(1), 1)
        };
        let expected = m.e_link_nj * 1_000.0 * 1e-9;
        assert!(
            (clustered.dynamic_j - single.dynamic_j - expected).abs() < 1e-12,
            "link messages must charge exactly e_link_nj each"
        );
    }

    #[test]
    fn dram_traffic_shows_up_in_memory_energy() {
        let m = EnergyModel::default();
        let a = m.accel_energy(&fake_stats(&[0], 0, 0), Time::from_us(1), 1);
        let b = m.accel_energy(&fake_stats(&[0], 0, 10_000), Time::from_us(1), 1);
        assert!(b.memory_j > a.memory_j + 1e-7);
    }

    #[test]
    fn total_sums_the_three_components() {
        let b = EnergyBreakdown {
            static_j: 0.5,
            dynamic_j: 0.25,
            memory_j: 0.125,
        };
        assert_eq!(b.total_j(), 0.875);
        assert_eq!(EnergyBreakdown::default().total_j(), 0.0);
        // The decomposition of a real run must be lossless too.
        let m = EnergyModel::default();
        let r = m.accel_energy(&fake_stats(&[500_000], 20, 300), Time::from_us(1), 2);
        assert!((r.total_j() - (r.static_j + r.dynamic_j + r.memory_j)).abs() < f64::EPSILON);
        assert!(r.static_j > 0.0 && r.dynamic_j > 0.0 && r.memory_j > 0.0);
    }
}
