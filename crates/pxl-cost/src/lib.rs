//! Resource-utilization and energy models for ParallelXL accelerators.
//!
//! The paper estimates FPGA resources "by synthesizing the RTL using Vivado
//! targeting Xilinx's 7-series FPGAs" and cache resources "using numbers
//! from Xilinx's cache IP" (Section V-C); energy comes from Vivado's power
//! estimator for the fabric and McPAT for the cores. We have neither tool,
//! so this crate provides analytical models with the same *structure*:
//!
//! * [`resources`] — per-component LUT/FF/DSP/BRAM vectors: an
//!   application-specific worker (calibrated per benchmark against the
//!   paper's Table V), plus template components (TMU, P-Store share,
//!   router share, network interfaces, cache) that depend only on the
//!   architecture. PE and tile totals are *derived* from the components,
//!   and FPGA device fitting reproduces the paper's "how many PEs fit"
//!   analysis.
//! * [`energy`] — an event-based energy model: per-event charges for task
//!   dispatches, steals, cache hits/misses and DRAM line transfers, plus
//!   per-component static/active power integrated over busy time, with a
//!   McPAT-like per-core model for the CPU baseline.

pub mod energy;
pub mod resources;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use resources::{FpgaDevice, ResourceVec, TileResources};
