//! Microbenchmarks of the simulator's hot data structures: the
//! work-stealing deque, the P-Store, the coherent cache hierarchy, the LFSR
//! and the event queue. These bound the host cost per simulated event.
//!
//! Hand-rolled timing loops (no external harness dependency, so the
//! workspace builds offline): each case runs a warmup batch, then reports
//! mean wall time per iteration. Run with `cargo bench --bench microbench`.

use std::hint::black_box;
use std::time::Instant;

use pxl_arch::{PStore, TaskDeque};
use pxl_mem::{AccessKind, BandwidthMeter, MemorySystem, PortId};
use pxl_model::{Continuation, PendingTask, Task, TaskTypeId};
use pxl_sim::config::MemoryConfig;
use pxl_sim::{EventQueue, Lfsr16, Time};

/// Times `iters` calls of `f` after a warmup batch and prints ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:<32} {:>12.1} ns/iter ({iters} iters)",
        total.as_nanos() as f64 / iters as f64
    );
}

fn bench_deque() {
    let t = Task::new(TaskTypeId(0), Continuation::host(0), &[1, 2]);
    let mut q = TaskDeque::new(1 << 16);
    bench("deque/push_pop_tail", 1_000_000, || {
        q.push_tail(black_box(t), Time::ZERO).unwrap();
        black_box(q.pop_tail(Time::ZERO));
    });
    bench("deque/steal_head_1000", 1_000, || {
        let mut q = TaskDeque::new(1 << 12);
        for _ in 0..1000 {
            q.push_tail(t, Time::ZERO).unwrap();
        }
        while let Some(t) = q.steal_head(Time::ZERO) {
            black_box(t);
        }
    });
}

fn bench_pstore() {
    let mut ps = PStore::new(1 << 12);
    let pending = PendingTask::new(TaskTypeId(1), Continuation::host(0), 2);
    bench("pstore/alloc_fill_free", 1_000_000, || {
        let e = ps
            .alloc(black_box(pending))
            .expect("valid join")
            .expect("store has space");
        black_box(ps.fill(e, 0, 1)).expect("live entry");
        black_box(ps.fill(e, 1, 2)).expect("live entry");
    });
}

fn bench_memory() {
    let cfg = MemoryConfig::micro2018();
    let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone()], &cfg);
    let mut t = sys.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
    bench("mem/l1_hit", 1_000_000, || {
        t = sys.access(PortId(0), black_box(0x40), AccessKind::Read, t);
        black_box(t);
    });
    bench("mem/streaming_misses_256", 1_000, || {
        let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone()], &cfg);
        let mut t = Time::ZERO;
        for line in 0..256u64 {
            t = sys.access(PortId(0), line * 64, AccessKind::Read, t);
        }
        black_box(t);
    });
    let mut m = BandwidthMeter::default_epoch();
    let mut at = 0u64;
    bench("mem/bandwidth_meter", 1_000_000, || {
        at += 100;
        black_box(m.acquire(Time::from_ps(at), 500));
    });
}

fn bench_sim_primitives() {
    let mut l = Lfsr16::new(0xACE1);
    bench("sim/lfsr_next", 1_000_000, || {
        black_box(l.next_in_range(33));
    });
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    bench("sim/event_queue_push_pop", 1_000_000, || {
        t += 7;
        q.push(Time::from_ps(t), t);
        black_box(q.pop());
    });
}

fn main() {
    bench_deque();
    bench_pstore();
    bench_memory();
    bench_sim_primitives();
}
