//! Criterion microbenchmarks of the simulator's hot data structures: the
//! work-stealing deque, the P-Store, the coherent cache hierarchy, the LFSR
//! and the event queue. These bound the host cost per simulated event.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pxl_arch::{PStore, TaskDeque};
use pxl_mem::{AccessKind, BandwidthMeter, MemorySystem, PortId};
use pxl_model::{Continuation, PendingTask, Task, TaskTypeId};
use pxl_sim::config::MemoryConfig;
use pxl_sim::{EventQueue, Lfsr16, Time};

fn bench_deque(c: &mut Criterion) {
    c.bench_function("deque/push_pop_tail", |b| {
        let mut q = TaskDeque::new(1 << 16);
        let t = Task::new(TaskTypeId(0), Continuation::host(0), &[1, 2]);
        b.iter(|| {
            q.push_tail(black_box(t), Time::ZERO).unwrap();
            black_box(q.pop_tail(Time::ZERO));
        });
    });
    c.bench_function("deque/steal_head", |b| {
        let t = Task::new(TaskTypeId(0), Continuation::host(0), &[1, 2]);
        b.iter_batched(
            || {
                let mut q = TaskDeque::new(1 << 12);
                for _ in 0..1000 {
                    q.push_tail(t, Time::ZERO).unwrap();
                }
                q
            },
            |mut q| {
                while let Some(t) = q.steal_head(Time::ZERO) {
                    black_box(t);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_pstore(c: &mut Criterion) {
    c.bench_function("pstore/alloc_fill_free", |b| {
        let mut ps = PStore::new(1 << 12);
        let pending = PendingTask::new(TaskTypeId(1), Continuation::host(0), 2);
        b.iter(|| {
            let e = ps.alloc(black_box(pending)).unwrap();
            black_box(ps.fill(e, 0, 1));
            black_box(ps.fill(e, 1, 2));
        });
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("mem/l1_hit", |b| {
        let cfg = MemoryConfig::micro2018();
        let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone()], &cfg);
        let mut t = sys.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        b.iter(|| {
            t = sys.access(PortId(0), black_box(0x40), AccessKind::Read, t);
            black_box(t);
        });
    });
    c.bench_function("mem/streaming_misses", |b| {
        let cfg = MemoryConfig::micro2018();
        b.iter_batched(
            || MemorySystem::new(vec![cfg.accel_l1.clone()], &cfg),
            |mut sys| {
                let mut t = Time::ZERO;
                for line in 0..256u64 {
                    t = sys.access(PortId(0), line * 64, AccessKind::Read, t);
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("mem/bandwidth_meter", |b| {
        let mut m = BandwidthMeter::default_epoch();
        let mut at = 0u64;
        b.iter(|| {
            at += 100;
            black_box(m.acquire(Time::from_ps(at), 500));
        });
    });
}

fn bench_sim_primitives(c: &mut Criterion) {
    c.bench_function("sim/lfsr_next", |b| {
        let mut l = Lfsr16::new(0xACE1);
        b.iter(|| black_box(l.next_in_range(33)));
    });
    c.bench_function("sim/event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 7;
            q.push(Time::from_ps(t), t);
            black_box(q.pop());
        });
    });
}

criterion_group!(
    benches,
    bench_deque,
    bench_pstore,
    bench_memory,
    bench_sim_primitives
);
criterion_main!(benches);
