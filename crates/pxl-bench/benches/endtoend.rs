//! End-to-end simulation throughput: how fast the host simulates one full
//! accelerator/CPU/Lite run of a small benchmark. These are the costs that
//! determine how long the paper's evaluation sweep takes to regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pxl_apps::Scale;
use pxl_bench::{bench, run_cpu, run_flex, run_lite};

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    for name in ["queens", "uts", "spmvcrs"] {
        g.bench_function(format!("{name}/flex8"), |b| {
            b.iter(|| {
                let bm = bench(name, Scale::Tiny);
                black_box(run_flex(bm.as_ref(), 8, None).kernel)
            });
        });
        g.bench_function(format!("{name}/cpu4"), |b| {
            b.iter(|| {
                let bm = bench(name, Scale::Tiny);
                black_box(run_cpu(bm.as_ref(), 4).kernel)
            });
        });
        g.bench_function(format!("{name}/lite8"), |b| {
            b.iter(|| {
                let bm = bench(name, Scale::Tiny);
                black_box(run_lite(bm.as_ref(), 8, None).expect("lite variant").kernel)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
