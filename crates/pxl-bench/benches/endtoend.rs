//! End-to-end simulation throughput: how fast the host simulates one full
//! accelerator/CPU/Lite run of a small benchmark. These are the costs that
//! determine how long the paper's evaluation sweep takes to regenerate.
//!
//! Hand-rolled timing loops (no external harness dependency, so the
//! workspace builds offline). Run with `cargo bench --bench endtoend`.

use std::hint::black_box;
use std::time::Instant;

use pxl_apps::Scale;
use pxl_bench::{bench, run_cpu, run_flex, run_lite};

/// Times `iters` full runs of `f` and prints ms/run.
fn timeit(name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:<24} {:>10.2} ms/run ({iters} runs)",
        total.as_secs_f64() * 1e3 / iters as f64
    );
}

fn main() {
    for name in ["queens", "uts", "spmvcrs"] {
        timeit(&format!("{name}/flex8"), 10, || {
            let bm = bench(name, Scale::Tiny);
            black_box(run_flex(bm.as_ref(), 8, None).kernel);
        });
        timeit(&format!("{name}/cpu4"), 10, || {
            let bm = bench(name, Scale::Tiny);
            black_box(run_cpu(bm.as_ref(), 4).kernel);
        });
        timeit(&format!("{name}/lite8"), 10, || {
            let bm = bench(name, Scale::Tiny);
            black_box(run_lite(bm.as_ref(), 8, None).expect("lite variant").kernel);
        });
    }
}
