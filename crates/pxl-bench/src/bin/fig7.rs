//! Regenerates Fig. 7: accelerator performance normalized to one OOO core.
use pxl_apps::Scale;
use pxl_bench::experiments;

fn main() {
    let results = experiments::run_scaling(Scale::Paper);
    println!("{}", experiments::fig7(&results));
}
