//! Regenerates Fig. 6: the Zedboard prototype vs two-core parallel software.
use pxl_apps::Scale;
use pxl_bench::experiments;

fn main() {
    println!("{}", experiments::fig6(Scale::Paper));
}
