//! Ablation study of the FlexArch scheduling design choices that
//! `DESIGN.md` calls out (Sections II-C and III-A of the paper):
//!
//! * **LIFO local order** — the worker pops its own deque depth-first,
//!   "which is important because it results in much better task locality".
//! * **Steal from the head** — "it enables stealing a larger chunk of work
//!   with each request".
//! * **LFSR (random) victim selection** vs a cyclic scan.
//! * **Greedy scheduling** — routing a just-readied task back to the PE
//!   that produced its last argument, "critical for guaranteeing the
//!   asymptotic bound on space".
//!
//! Each variant flips exactly one knob from the published design and
//! reports the slowdown and the peak task-storage footprint.

use pxl_apps::{Benchmark, Scale};
use pxl_arch::{
    AccelConfig, FabricEngine, LocalOrder, SchedPolicy, SchedulingPolicy, StealEnd, VictimSelect,
};
use pxl_bench::{bench, geometry, render_table};

fn config(pes: usize, policy: SchedPolicy) -> AccelConfig {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::flex(tiles, per_tile);
    cfg.policy = policy;
    cfg
}

/// Like `run_flex_with_config` but reports simulation failures as data —
/// an ablated policy blowing the space bound is a finding, not a bug.
fn try_run<P: SchedulingPolicy>(
    b: &dyn Benchmark,
    cfg: AccelConfig,
) -> Result<(pxl_sim::Time, pxl_sim::Metrics), String> {
    let mut engine = FabricEngine::<P>::new(cfg, b.profile());
    let inst = b.flex(engine.mem_mut());
    let mut worker = inst.worker;
    match engine.run(worker.as_mut(), inst.root) {
        Ok(out) => {
            b.check(engine.memory(), out.result)?;
            Ok((out.elapsed, out.metrics))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    let variants: Vec<(&str, SchedPolicy)> = vec![
        ("baseline (paper)", SchedPolicy::default()),
        (
            "FIFO local order",
            SchedPolicy {
                local_order: LocalOrder::Fifo,
                ..SchedPolicy::default()
            },
        ),
        (
            "steal from tail",
            SchedPolicy {
                steal_end: StealEnd::Tail,
                ..SchedPolicy::default()
            },
        ),
        (
            "round-robin victims",
            SchedPolicy {
                victim_select: VictimSelect::RoundRobin,
                ..SchedPolicy::default()
            },
        ),
        (
            "no greedy routing",
            SchedPolicy {
                greedy_routing: false,
                ..SchedPolicy::default()
            },
        ),
    ];

    for name in ["uts", "cilksort", "nw"] {
        let b = bench(name, Scale::Paper);
        println!("## Ablation: {name} (FlexArch, 16 PEs)\n");
        let (base_elapsed, _) =
            try_run::<pxl_arch::FlexPolicy>(b.as_ref(), config(16, SchedPolicy::default()))
                .expect("baseline runs");
        let mut rows = Vec::new();
        let mut push_row =
            |label: &str, outcome: Result<(pxl_sim::Time, pxl_sim::Metrics), String>| match outcome
            {
                Ok((elapsed, stats)) => {
                    let storage =
                        stats.get("accel.queue_peak_sum") + stats.get("accel.pstore_peak_sum");
                    rows.push(vec![
                        label.to_owned(),
                        format!("{elapsed}"),
                        format!("{:.2}x", elapsed.as_secs_f64() / base_elapsed.as_secs_f64()),
                        format!("{}", stats.get("accel.steal_hits")),
                        format!("{storage}"),
                    ]);
                }
                Err(e) => rows.push(vec![
                    label.to_owned(),
                    format!("FAILED: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            };
        for (label, policy) in &variants {
            push_row(
                label,
                try_run::<pxl_arch::FlexPolicy>(b.as_ref(), config(16, *policy)),
            );
        }
        // The strawman every distributed design is measured against: one
        // shared ready queue serializing all 16 PEs' accesses.
        let (tiles, per_tile) = geometry(16);
        push_row(
            "centralized queue",
            try_run::<pxl_arch::CentralPolicy>(b.as_ref(), AccelConfig::central(tiles, per_tile)),
        );
        println!(
            "{}",
            render_table(
                &[
                    "Variant",
                    "Kernel time",
                    "Slowdown",
                    "Steals",
                    "Peak task storage"
                ],
                &rows
            )
        );
    }
}
