//! Runs every experiment and emits the full evaluation report
//! (EXPERIMENTS.md-ready markdown) plus a machine-readable
//! `bench_results.jsonl` with one record per (benchmark, engine, units)
//! run of the scalability sweep.
//!
//! Pass `--smoke` to run at `Scale::Tiny` for a quick end-to-end check.
use pxl_apps::Scale;
use pxl_bench::experiments as ex;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Tiny } else { Scale::Paper };
    println!("# ParallelXL — regenerated evaluation (Section V)\n");
    println!("{}\n", ex::table1());
    println!("{}\n", ex::table2());
    println!("{}\n", ex::table3());
    eprintln!("[fig6] running Zedboard prototype sweep...");
    println!("{}\n", ex::fig6(scale));
    eprintln!("[table4/fig7/fig8] running scalability sweep...");
    let results = ex::run_scaling(scale);
    println!("{}\n", ex::table4(&results));
    println!("{}\n", ex::fig7(&results));
    println!("{}\n", ex::table5());
    println!("{}\n", ex::fig8(&results));
    let outcomes = ex::all_outcomes(&results);
    let jsonl = std::path::Path::new("bench_results.jsonl");
    match pxl_bench::write_jsonl(jsonl, &outcomes) {
        Ok(()) => eprintln!(
            "[jsonl] wrote {} records to {}",
            outcomes.len(),
            jsonl.display()
        ),
        Err(e) => eprintln!("[jsonl] failed to write {}: {e}", jsonl.display()),
    }
    eprintln!("[fig9] running cache-size sweep...");
    println!("{}", ex::fig9(scale));
}
