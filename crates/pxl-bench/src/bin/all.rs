//! Runs every experiment and emits the full evaluation report
//! (EXPERIMENTS.md-ready markdown) plus a machine-readable
//! `bench_results.jsonl` with one record per (benchmark, engine, units)
//! run of the scalability sweep.
//!
//! Pass `--smoke` to run at `Scale::Tiny` for a quick end-to-end check.
//! Pass `--trace-out <path>` to re-run the sweep's fastest whole-program
//! configuration with event tracing and dump its JSONL trace there, plus a
//! Perfetto/Chrome trace next to it (`<path>.perfetto.json`) for
//! <https://ui.perfetto.dev>.
use pxl_apps::Scale;
use pxl_bench::experiments as ex;
use pxl_bench::{geometry, RunOutcome};
use pxl_dse::{DesignPoint, PointArch};
use pxl_flow::RunSpec;
use pxl_profile::{to_perfetto_json, Layout};

/// Re-runs `won`'s exact configuration with tracing enabled, phrased as a
/// canonical [`RunSpec`].
fn rerun_traced(won: &RunOutcome, scale: Scale) -> RunOutcome {
    let point = match won.engine.as_str() {
        "cpu" => DesignPoint::cpu(won.units),
        label => {
            let (tiles, per_tile) = geometry(won.units);
            let arch = match label {
                "flex" => PointArch::Flex,
                "central" => PointArch::Central,
                "lite" => PointArch::Lite,
                other => panic!("cannot re-trace engine {other}"),
            };
            DesignPoint::accel(arch, tiles, per_tile)
        }
    };
    let spec = RunSpec::new(won.bench.clone(), scale, point).with_trace(1 << 20);
    pxl_flow::execute(&spec)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", won.bench, won.engine))
        .expect("it ran in the sweep")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if smoke { Scale::Tiny } else { Scale::Paper };
    println!("# ParallelXL — regenerated evaluation (Section V)\n");
    println!("{}\n", ex::table1());
    println!("{}\n", ex::table2());
    println!("{}\n", ex::table3());
    eprintln!("[fig6] running Zedboard prototype sweep...");
    println!("{}\n", ex::fig6(scale));
    eprintln!("[table4/fig7/fig8] running scalability sweep...");
    let results = ex::run_scaling(scale);
    println!("{}\n", ex::table4(&results));
    println!("{}\n", ex::fig7(&results));
    println!("{}\n", ex::table5());
    println!("{}\n", ex::fig8(&results));
    let outcomes = ex::all_outcomes(&results);
    let jsonl = std::path::Path::new("bench_results.jsonl");
    match pxl_bench::write_jsonl_stamped(jsonl, &outcomes, &pxl_bench::host_build_id()) {
        Ok(()) => eprintln!(
            "[jsonl] wrote {} records to {}",
            outcomes.len(),
            jsonl.display()
        ),
        Err(e) => eprintln!("[jsonl] failed to write {}: {e}", jsonl.display()),
    }

    if let Some(path) = trace_out {
        // The winning run: fastest whole-program time across the sweep,
        // with a deterministic (bench, engine, units) tiebreak.
        let won = outcomes
            .iter()
            .min_by_key(|o| (o.whole.as_ps(), o.bench.clone(), o.engine.clone(), o.units))
            .expect("the sweep produced outcomes");
        eprintln!(
            "[trace] winning run: {}/{} at {} units ({} ps whole) — re-running traced...",
            won.bench,
            won.engine,
            won.units,
            won.whole.as_ps()
        );
        let traced = rerun_traced(won, scale);
        let layout = if won.engine == "cpu" {
            Layout::new(won.units, won.units)
        } else {
            let (_, per_tile) = geometry(won.units);
            Layout::new(won.units, per_tile)
        };
        let label = format!("{}/{}", won.bench, won.engine);
        let perfetto_path = format!("{path}.perfetto.json");
        match std::fs::write(&path, traced.trace.to_jsonl()).and_then(|()| {
            std::fs::write(
                &perfetto_path,
                to_perfetto_json(traced.trace.records(), &layout, &label),
            )
        }) {
            Ok(()) => eprintln!(
                "[trace] wrote {} events to {path} (+ {perfetto_path})",
                traced.trace.len()
            ),
            Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
        }
    }

    eprintln!("[fig9] running cache-size sweep...");
    println!("{}", ex::fig9(scale));
}
