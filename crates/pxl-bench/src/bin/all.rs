//! Runs every experiment and emits the full evaluation report
//! (EXPERIMENTS.md-ready markdown).
use pxl_apps::Scale;
use pxl_bench::experiments as ex;

fn main() {
    println!("# ParallelXL — regenerated evaluation (Section V)\n");
    println!("{}\n", ex::table1());
    println!("{}\n", ex::table2());
    println!("{}\n", ex::table3());
    eprintln!("[fig6] running Zedboard prototype sweep...");
    println!("{}\n", ex::fig6(Scale::Paper));
    eprintln!("[table4/fig7/fig8] running scalability sweep...");
    let results = ex::run_scaling(Scale::Paper);
    println!("{}\n", ex::table4(&results));
    println!("{}\n", ex::fig7(&results));
    println!("{}\n", ex::table5());
    println!("{}\n", ex::fig8(&results));
    eprintln!("[fig9] running cache-size sweep...");
    println!("{}", ex::fig9(Scale::Paper));
}
