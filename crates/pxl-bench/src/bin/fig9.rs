//! Regenerates Fig. 9: FlexArch performance vs tile cache size.
use pxl_apps::Scale;
use pxl_bench::experiments;

fn main() {
    println!("{}", experiments::fig9(Scale::Paper));
}
