//! Job-server driver: boots a `pxl-serve` [`Server`] on a loopback port
//! and drives the full service contract end to end, exiting nonzero if any
//! guarantee is broken. This is the CI smoke for simulation-as-a-service:
//!
//! 1. **Fair share** — with one worker and dispatch paused, a tenant that
//!    floods the queue first must still alternate with a later tenant
//!    (deterministic round-robin `running` order).
//! 2. **Dedup** — the same spec submitted twice yields byte-identical
//!    `done` payloads, the second a pure content-addressed cache hit.
//! 3. **Quotas** — a tenant at its quota is refused with the
//!    `quota_exceeded` code while other tenants keep submitting.
//! 4. **Profiling** — a `profile` job reports its trace size and never
//!    hits the measurement cache.
//! 5. **Graceful drain** — `shutdown` finishes every admitted job,
//!    refuses new ones with the `draining` code, and reports the total.
//!
//! Every event the server emits is appended to `serve_jobs.jsonl` (the CI
//! artifact); the driver re-parses the whole log to check it is valid
//! line-delimited JSON with the expected event counts.

use pxl_apps::Scale;
use pxl_dse::{DesignPoint, PointArch};
use pxl_flow::RunSpec;
use pxl_serve::{
    measurement_to_json_value, Client, ClientError, ErrorCode, JobEvent, JobKind, Server,
    ServerConfig,
};

const JOB_LOG: &str = "serve_jobs.jsonl";

fn flex_spec(bench: &str) -> RunSpec {
    RunSpec::new(
        bench,
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 2),
    )
}

fn cpu_spec(bench: &str) -> RunSpec {
    RunSpec::new(bench, Scale::Tiny, DesignPoint::cpu(2))
}

fn done_payload(
    event: &JobEvent,
    failures: &mut Vec<String>,
    what: &str,
) -> Option<(bool, String)> {
    match event {
        JobEvent::Done { cached, result, .. } => {
            Some((*cached, measurement_to_json_value(result).to_json()))
        }
        other => {
            failures.push(format!("{what}: expected done, got {other:?}"));
            None
        }
    }
}

fn main() {
    let mut failures: Vec<String> = Vec::new();
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_quota: 4,
        cache_path: None,
        job_log: Some(JOB_LOG.into()),
    })
    .unwrap_or_else(|e| panic!("server start: {e}"));
    let mut client = Client::connect(server.addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    let check = |r: Result<(), ClientError>| r.unwrap_or_else(|e| panic!("{e}"));

    // Phase 1: fair share. Pause so the queue fills before the single
    // worker starts; the running order is then exactly the scheduler's
    // deterministic round-robin, not a submission race.
    check(client.pause().map(|_| ()));
    let a = flex_spec("uts");
    let b = flex_spec("queens");
    let a1 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let a2 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let a3 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let b1 = client.submit("bob", JobKind::Sim, &b).unwrap();
    let b2 = client.submit("bob", JobKind::Sim, &b).unwrap();
    check(client.resume().map(|_| ()));
    // The terminal event is the last per job, so once five are in, every
    // running event has been seen too.
    let mut running = Vec::new();
    let mut terminal = 0;
    while terminal < 5 {
        match client.next_event() {
            Ok(JobEvent::Running { job }) => running.push(job),
            Ok(JobEvent::Done { .. }) => terminal += 1,
            Ok(JobEvent::Failed { job, error }) => {
                terminal += 1;
                failures.push(format!("fair-share: {job} failed: {error}"));
            }
            Ok(_) => {}
            Err(e) => panic!("fair-share: {e}"),
        }
    }
    let expected = vec![a1, b1, a2, b2, a3];
    if running != expected {
        failures.push(format!(
            "fair-share: running order {running:?} != round-robin {expected:?}"
        ));
    }
    eprintln!("[serve] fair-share: alice flooded, bob still alternated ({running:?})");

    // Phase 2: dedup. The same dse spec twice — the second submission must
    // be answered from the content-addressed cache with identical bytes.
    let spec = flex_spec("uts");
    let (d1, key1) = client
        .submit_with_key("dedup", JobKind::Dse, &spec)
        .unwrap();
    let first = client.wait(d1).unwrap();
    let (d2, key2) = client
        .submit_with_key("dedup", JobKind::Dse, &spec)
        .unwrap();
    let second = client.wait(d2).unwrap();
    if key1 != key2 {
        failures.push(format!("dedup: content addresses differ: {key1} != {key2}"));
    }
    if let (Some((c1, p1)), Some((c2, p2))) = (
        done_payload(&first, &mut failures, "dedup first"),
        done_payload(&second, &mut failures, "dedup second"),
    ) {
        if c1 {
            failures.push("dedup: first submission must simulate, not hit".to_owned());
        }
        if !c2 {
            failures.push("dedup: second identical submission must be a cache hit".to_owned());
        }
        if p1 != p2 {
            failures.push(format!("dedup: payloads differ:\n  {p1}\n  {p2}"));
        } else {
            eprintln!("[serve] dedup: {key1} hit the cache with byte-identical payload");
        }
    }

    // Phase 3: quotas. A tenant at its quota is refused; others are not.
    check(client.pause().map(|_| ()));
    let mut flood = Vec::new();
    for _ in 0..4 {
        flood.push(
            client
                .submit("flood", JobKind::Sim, &cpu_spec("uts"))
                .unwrap(),
        );
    }
    match client.submit("flood", JobKind::Sim, &cpu_spec("uts")) {
        Err(ClientError::Rejected {
            code: ErrorCode::QuotaExceeded,
            message,
        }) => eprintln!("[serve] quota: fifth job refused ({message})"),
        other => failures.push(format!("quota: expected quota_exceeded, got {other:?}")),
    }
    let calm = client
        .submit("calm", JobKind::Sim, &cpu_spec("queens"))
        .unwrap();
    check(client.resume().map(|_| ()));
    for job in flood.iter().chain([&calm]) {
        if let JobEvent::Failed { error, .. } = client.wait(*job).unwrap() {
            failures.push(format!("quota: {job} failed: {error}"));
        }
    }

    // Phase 4: a profile job reports its trace size and never caches.
    let p1 = client
        .submit("prof", JobKind::Profile, &flex_spec("uts"))
        .unwrap();
    match client.wait(p1).unwrap() {
        JobEvent::Done {
            cached,
            trace_events,
            ..
        } => {
            if cached {
                failures.push("profile: must not be served from the cache".to_owned());
            }
            match trace_events {
                Some(n) if n > 0 => eprintln!("[serve] profile: {n} trace events captured"),
                other => failures.push(format!("profile: bad trace_events {other:?}")),
            }
        }
        other => failures.push(format!("profile: expected done, got {other:?}")),
    }

    // Phase 5: graceful drain. The in-flight submission finishes, new work
    // is refused with the draining code, and the totals add up.
    let last = client
        .submit("alice", JobKind::Sim, &flex_spec("queens"))
        .unwrap();
    let completed = client.drain().unwrap_or_else(|e| panic!("drain: {e}"));
    if let JobEvent::Failed { error, .. } = client.wait(last).unwrap() {
        failures.push(format!("drain: {last} failed: {error}"));
    }
    match client.submit("alice", JobKind::Sim, &flex_spec("uts")) {
        Err(ClientError::Rejected {
            code: ErrorCode::Draining,
            ..
        }) => {}
        other => failures.push(format!("drain: expected draining rejection, got {other:?}")),
    }
    let summary = server.join();
    let jobs = 14u64; // 5 fair-share + 2 dedup + 5 quota + 1 profile + 1 drain
    if completed != jobs || summary.completed != jobs || summary.failed != 0 {
        failures.push(format!(
            "drain: expected {jobs} completed / 0 failed, got drain={completed}, {summary:?}"
        ));
    }
    eprintln!(
        "[serve] drain: {completed} job(s) completed, {} cache hit(s), {} miss(es)",
        summary.cache_hits, summary.cache_misses
    );

    // The job log must be valid line-delimited JSON with matching counts.
    let log = std::fs::read_to_string(JOB_LOG).unwrap_or_else(|e| panic!("read {JOB_LOG}: {e}"));
    let mut done = 0u64;
    let mut drained = 0u64;
    for (i, line) in log.lines().enumerate() {
        match JobEvent::from_json(line) {
            Ok(JobEvent::Done { .. }) => done += 1,
            Ok(JobEvent::Drained { .. }) => drained += 1,
            Ok(_) => {}
            Err(e) => failures.push(format!("{JOB_LOG}:{}: {e}", i + 1)),
        }
    }
    if done != jobs || drained != 1 {
        failures.push(format!(
            "{JOB_LOG}: expected {jobs} done + 1 drained, got {done} + {drained}"
        ));
    }
    eprintln!(
        "[jsonl] wrote {} event(s) to {JOB_LOG}",
        log.lines().count()
    );

    println!("# pxl-serve smoke\n");
    println!("| guarantee | result |");
    println!("|---|---|");
    println!("| fair-share round-robin | {:?} |", running);
    println!("| dedup cache hit | key {key1} |");
    println!(
        "| jobs completed / failed | {} / {} |",
        summary.completed, summary.failed
    );
    println!(
        "| cache hits / misses | {} / {} |",
        summary.cache_hits, summary.cache_misses
    );

    if !failures.is_empty() {
        eprintln!("\n[serve] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[serve] all service guarantees held");
}
