//! Job-server driver: boots a `pxl-serve` [`Server`] on a loopback port
//! and drives the full service contract end to end, exiting nonzero if any
//! guarantee is broken. This is the CI smoke for simulation-as-a-service:
//!
//! 1. **Fair share** — with one worker and dispatch paused, a tenant that
//!    floods the queue first must still alternate with a later tenant
//!    (deterministic round-robin `running` order).
//! 2. **Dedup** — the same spec submitted twice yields byte-identical
//!    `done` payloads, the second a pure content-addressed cache hit.
//! 3. **Quotas** — a tenant at its quota is refused with the
//!    `quota_exceeded` code while other tenants keep submitting.
//! 4. **Profiling** — a `profile` job reports its trace size and never
//!    hits the measurement cache.
//! 5. **Live introspection** — a checkpointed job streams `progress`
//!    events (ascending epoch-boundary cycles, monotone task counts), and
//!    the `stats` op answers with the full byte-stable health picture
//!    (per-tenant depths, lifecycle counters, journal state).
//! 6. **Graceful drain** — `shutdown` finishes every admitted job,
//!    refuses new ones with the `draining` code, and reports the total.
//! 7. **Crash recovery** — a child server process is SIGKILLed mid-run
//!    with checkpointed jobs in flight, restarted on the same journal,
//!    and must finish every admitted job exactly once, resuming from
//!    durable checkpoints (`done` events with nonzero
//!    `resumed_from_cycle`).
//!
//! Every event the server emits is appended to `serve_jobs.jsonl`, and the
//! crash phase leaves its recovered journal in `serve_crash/` (both CI
//! artifacts); the driver re-parses the logs to check they are valid
//! line-delimited JSON with the expected event counts.

use std::path::Path;
use std::time::Duration;

use pxl_apps::Scale;
use pxl_dse::{DesignPoint, PointArch};
use pxl_flow::RunSpec;
use pxl_serve::{
    measurement_to_json_value, Client, ClientConfig, ClientError, ErrorCode, JobEvent, JobId,
    JobKind, Server, ServerConfig,
};

const JOB_LOG: &str = "serve_jobs.jsonl";
const CRASH_DIR: &str = "serve_crash";

fn flex_spec(bench: &str) -> RunSpec {
    RunSpec::new(
        bench,
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 2),
    )
}

fn cpu_spec(bench: &str) -> RunSpec {
    RunSpec::new(bench, Scale::Tiny, DesignPoint::cpu(2))
}

fn done_payload(
    event: &JobEvent,
    failures: &mut Vec<String>,
    what: &str,
) -> Option<(bool, String)> {
    match event {
        JobEvent::Done { cached, result, .. } => {
            Some((*cached, measurement_to_json_value(result).to_json()))
        }
        other => {
            failures.push(format!("{what}: expected done, got {other:?}"));
            None
        }
    }
}

fn main() {
    // Child mode: `serve --crash-server <dir>` runs one server lifetime
    // for the crash-recovery phase (the parent SIGKILLs the first one).
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--crash-server" {
        crash_server_child(Path::new(&args[2]));
        return;
    }

    let mut failures: Vec<String> = Vec::new();
    // The job log opens in append mode (it doubles as the recovery
    // journal); start each smoke run from a clean slate.
    let _ = std::fs::remove_file(JOB_LOG);
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_quota: 4,
        job_log: Some(JOB_LOG.into()),
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("server start: {e}"));
    let mut client = Client::connect(server.addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    let check = |r: Result<(), ClientError>| r.unwrap_or_else(|e| panic!("{e}"));

    // Phase 1: fair share. Pause so the queue fills before the single
    // worker starts; the running order is then exactly the scheduler's
    // deterministic round-robin, not a submission race.
    check(client.pause().map(|_| ()));
    let a = flex_spec("uts");
    let b = flex_spec("queens");
    let a1 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let a2 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let a3 = client.submit("alice", JobKind::Sim, &a).unwrap();
    let b1 = client.submit("bob", JobKind::Sim, &b).unwrap();
    let b2 = client.submit("bob", JobKind::Sim, &b).unwrap();
    check(client.resume().map(|_| ()));
    // The terminal event is the last per job, so once five are in, every
    // running event has been seen too.
    let mut running = Vec::new();
    let mut terminal = 0;
    while terminal < 5 {
        match client.next_event() {
            Ok(JobEvent::Running { job }) => running.push(job),
            Ok(JobEvent::Done { .. }) => terminal += 1,
            Ok(JobEvent::Failed { job, error }) => {
                terminal += 1;
                failures.push(format!("fair-share: {job} failed: {error}"));
            }
            Ok(_) => {}
            Err(e) => panic!("fair-share: {e}"),
        }
    }
    let expected = vec![a1, b1, a2, b2, a3];
    if running != expected {
        failures.push(format!(
            "fair-share: running order {running:?} != round-robin {expected:?}"
        ));
    }
    eprintln!("[serve] fair-share: alice flooded, bob still alternated ({running:?})");

    // Phase 2: dedup. The same dse spec twice — the second submission must
    // be answered from the content-addressed cache with identical bytes.
    let spec = flex_spec("uts");
    let (d1, key1) = client
        .submit_with_key("dedup", JobKind::Dse, &spec)
        .unwrap();
    let first = client.wait(d1).unwrap();
    let (d2, key2) = client
        .submit_with_key("dedup", JobKind::Dse, &spec)
        .unwrap();
    let second = client.wait(d2).unwrap();
    if key1 != key2 {
        failures.push(format!("dedup: content addresses differ: {key1} != {key2}"));
    }
    if let (Some((c1, p1)), Some((c2, p2))) = (
        done_payload(&first, &mut failures, "dedup first"),
        done_payload(&second, &mut failures, "dedup second"),
    ) {
        if c1 {
            failures.push("dedup: first submission must simulate, not hit".to_owned());
        }
        if !c2 {
            failures.push("dedup: second identical submission must be a cache hit".to_owned());
        }
        if p1 != p2 {
            failures.push(format!("dedup: payloads differ:\n  {p1}\n  {p2}"));
        } else {
            eprintln!("[serve] dedup: {key1} hit the cache with byte-identical payload");
        }
    }

    // Phase 3: quotas. A tenant at its quota is refused; others are not.
    check(client.pause().map(|_| ()));
    let mut flood = Vec::new();
    for _ in 0..4 {
        flood.push(
            client
                .submit("flood", JobKind::Sim, &cpu_spec("uts"))
                .unwrap(),
        );
    }
    match client.submit("flood", JobKind::Sim, &cpu_spec("uts")) {
        Err(ClientError::Rejected {
            code: ErrorCode::QuotaExceeded,
            message,
        }) => eprintln!("[serve] quota: fifth job refused ({message})"),
        other => failures.push(format!("quota: expected quota_exceeded, got {other:?}")),
    }
    let calm = client
        .submit("calm", JobKind::Sim, &cpu_spec("queens"))
        .unwrap();
    check(client.resume().map(|_| ()));
    for job in flood.iter().chain([&calm]) {
        if let JobEvent::Failed { error, .. } = client.wait(*job).unwrap() {
            failures.push(format!("quota: {job} failed: {error}"));
        }
    }

    // Phase 4: a profile job reports its trace size and never caches.
    let p1 = client
        .submit("prof", JobKind::Profile, &flex_spec("uts"))
        .unwrap();
    match client.wait(p1).unwrap() {
        JobEvent::Done {
            cached,
            trace_events,
            ..
        } => {
            if cached {
                failures.push("profile: must not be served from the cache".to_owned());
            }
            match trace_events {
                Some(n) if n > 0 => eprintln!("[serve] profile: {n} trace events captured"),
                other => failures.push(format!("profile: bad trace_events {other:?}")),
            }
        }
        other => failures.push(format!("profile: expected done, got {other:?}")),
    }

    // Phase 5: live introspection. A checkpointed job streams progress
    // beats at every epoch boundary, and the stats op reports the full
    // health picture. The spec must be fresh (uncached) so a real
    // simulation leg runs.
    let watch_spec = RunSpec::new(
        "uts",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 4),
    );
    let reference = pxl_flow::execute(&watch_spec)
        .unwrap_or_else(|e| panic!("introspect reference: {e}"))
        .expect("uts has a flex variant");
    let session = pxl_flow::SimSession::start(&watch_spec)
        .unwrap_or_else(|e| panic!("introspect session: {e}"))
        .expect("uts has a flex variant");
    let watch_epoch = session
        .clock()
        .time_to_cycles(pxl_sim::Time::from_ps(reference.kernel.as_ps() / 4))
        .max(1);
    let watched = client
        .submit(
            "watch",
            JobKind::Sim,
            &watch_spec.with_checkpoint(watch_epoch),
        )
        .unwrap();
    let mut beats = Vec::new();
    match client.wait_with_progress(watched, |p| beats.push(p)) {
        Ok(JobEvent::Done { .. }) => {}
        other => failures.push(format!("introspect: expected done, got {other:?}")),
    }
    if beats.is_empty() {
        failures.push(format!(
            "introspect: a {watch_epoch}-cycle epoch must yield progress beats"
        ));
    }
    if beats.windows(2).any(|w| w[0].cycle >= w[1].cycle) {
        failures.push(format!("introspect: cycles must ascend: {beats:?}"));
    }
    if beats.windows(2).any(|w| w[0].tasks > w[1].tasks) {
        failures.push(format!("introspect: tasks must not regress: {beats:?}"));
    }
    if let Some(last) = beats.last() {
        eprintln!(
            "[serve] progress: {} beat(s), last at cycle {} with {} task(s)",
            beats.len(),
            last.cycle,
            last.tasks
        );
    }
    let stats = client.stats().unwrap_or_else(|e| panic!("stats: {e}"));
    if !stats.journal {
        failures.push("stats: the job log must register as a journal".to_owned());
    }
    if stats.completed != 14 || stats.failed != 0 {
        failures.push(format!(
            "stats: expected 14 completed / 0 failed so far, got {stats:?}"
        ));
    }
    if !stats.tenants.iter().any(|(t, d)| t == "watch" && *d == 0) {
        failures.push(format!(
            "stats: the drained 'watch' tenant must appear at depth 0: {:?}",
            stats.tenants
        ));
    }
    eprintln!(
        "[serve] stats: {} tenant(s), {} completed, journal={}",
        stats.tenants.len(),
        stats.completed,
        stats.journal
    );

    // Phase 6: graceful drain. The in-flight submission finishes, new work
    // is refused with the draining code, and the totals add up.
    let last = client
        .submit("alice", JobKind::Sim, &flex_spec("queens"))
        .unwrap();
    let completed = client.drain().unwrap_or_else(|e| panic!("drain: {e}"));
    if let JobEvent::Failed { error, .. } = client.wait(last).unwrap() {
        failures.push(format!("drain: {last} failed: {error}"));
    }
    match client.submit("alice", JobKind::Sim, &flex_spec("uts")) {
        Err(ClientError::Rejected {
            code: ErrorCode::Draining,
            ..
        }) => {}
        other => failures.push(format!("drain: expected draining rejection, got {other:?}")),
    }
    let summary = server.join();
    let jobs = 15u64; // 5 fair-share + 2 dedup + 5 quota + 1 profile + 1 introspect + 1 drain
    if completed != jobs || summary.completed != jobs || summary.failed != 0 {
        failures.push(format!(
            "drain: expected {jobs} completed / 0 failed, got drain={completed}, {summary:?}"
        ));
    }
    eprintln!(
        "[serve] drain: {completed} job(s) completed, {} cache hit(s), {} miss(es)",
        summary.cache_hits, summary.cache_misses
    );

    // The job log must be valid line-delimited JSON with matching counts.
    // Write-ahead journal records (submit/checkpoint) share the file with
    // the event stream; canonical rendering puts their discriminator
    // first.
    let log = std::fs::read_to_string(JOB_LOG).unwrap_or_else(|e| panic!("read {JOB_LOG}: {e}"));
    let mut done = 0u64;
    let mut drained = 0u64;
    for (i, line) in log.lines().enumerate() {
        if line.starts_with("{\"journal\":") {
            continue;
        }
        match JobEvent::from_json(line) {
            Ok(JobEvent::Done { .. }) => done += 1,
            Ok(JobEvent::Drained { .. }) => drained += 1,
            Ok(_) => {}
            Err(e) => failures.push(format!("{JOB_LOG}:{}: {e}", i + 1)),
        }
    }
    if done != jobs || drained != 1 {
        failures.push(format!(
            "{JOB_LOG}: expected {jobs} done + 1 drained, got {done} + {drained}"
        ));
    }
    eprintln!(
        "[jsonl] wrote {} event(s) to {JOB_LOG}",
        log.lines().count()
    );

    // Phase 7: kill-and-restart crash recovery (child server processes).
    let (crash_jobs, crash_resumed) = crash_recovery_phase(&mut failures);

    println!("# pxl-serve smoke\n");
    println!("| guarantee | result |");
    println!("|---|---|");
    println!("| fair-share round-robin | {:?} |", running);
    println!("| dedup cache hit | key {key1} |");
    println!(
        "| jobs completed / failed | {} / {} |",
        summary.completed, summary.failed
    );
    println!(
        "| cache hits / misses | {} / {} |",
        summary.cache_hits, summary.cache_misses
    );
    println!(
        "| live introspection | {} progress beat(s), {} tenant(s) in stats |",
        beats.len(),
        stats.tenants.len()
    );
    println!(
        "| crash recovery | {crash_jobs} job(s) exactly once, {crash_resumed} resumed from checkpoint |"
    );

    if !failures.is_empty() {
        eprintln!("\n[serve] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[serve] all service guarantees held");
}

/// One server lifetime for the crash phase: journal, checkpoints and
/// cache all live in `dir`, and the bound address is published through
/// `dir/addr.txt` (written atomically). Blocks until drained — or until
/// the parent SIGKILLs us.
fn crash_server_child(dir: &Path) {
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_quota: 16,
        cache_path: Some(dir.join("cache.jsonl")),
        job_log: Some(dir.join("journal.jsonl")),
        checkpoint_dir: Some(dir.to_path_buf()),
        flush_every_record: true,
    })
    .unwrap_or_else(|e| panic!("child server: {e}"));
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, server.addr().to_string()).unwrap_or_else(|e| panic!("write addr: {e}"));
    std::fs::rename(&tmp, dir.join("addr.txt")).unwrap_or_else(|e| panic!("publish addr: {e}"));
    let summary = server.join();
    eprintln!(
        "[serve-child] drained: {} completed, {} recovered, {} resumed leg(s)",
        summary.completed, summary.recovered, summary.resumed
    );
}

/// Spawns `--crash-server` children and polls for the published address.
fn spawn_crash_server(dir: &Path) -> (std::process::Child, std::net::SocketAddr) {
    let addr_file = dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_file);
    let exe = std::env::current_exe().unwrap_or_else(|e| panic!("current_exe: {e}"));
    let mut child = std::process::Command::new(exe)
        .arg("--crash-server")
        .arg(dir)
        .spawn()
        .unwrap_or_else(|e| panic!("spawn crash server: {e}"));
    for _ in 0..1000 {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                return (child, addr);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!(
        "crash server never published its address in {}",
        dir.display()
    );
}

/// SIGKILLs a server with checkpointed jobs in flight, restarts it on the
/// same journal, and verifies exactly-once completion with checkpoint
/// resume. Returns (jobs completed exactly once, jobs resumed from a
/// checkpoint) for the report.
fn crash_recovery_phase(failures: &mut Vec<String>) -> (u64, u64) {
    let dir = Path::new(CRASH_DIR);
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {CRASH_DIR}: {e}"));
    let journal_path = dir.join("journal.jsonl");
    // Retries with bounded backoff: the child needs a moment to bind.
    let retry = ClientConfig {
        connect_attempts: 20,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        ..ClientConfig::default()
    };

    // A checkpoint epoch well inside the flex runs, so every leg yields
    // several durable snapshots before finishing.
    let base = flex_spec("uts");
    let reference = pxl_flow::execute(&base)
        .unwrap_or_else(|e| panic!("reference run: {e}"))
        .expect("uts has a flex variant");
    let session = pxl_flow::SimSession::start(&base)
        .unwrap_or_else(|e| panic!("reference session: {e}"))
        .expect("uts has a flex variant");
    let epoch = session
        .clock()
        .time_to_cycles(pxl_sim::Time::from_ps(reference.kernel.as_ps() / 8))
        .max(1);

    // Lifetime 1: admit six distinct jobs (no dedup), all checkpointed,
    // across three tenants, then SIGKILL as soon as the journal records
    // the first durable checkpoint.
    let (mut child, addr) = spawn_crash_server(dir);
    let mut jobs: Vec<JobId> = Vec::new();
    {
        let mut client =
            Client::connect_with(addr, &retry).unwrap_or_else(|e| panic!("connect: {e}"));
        let specs = [
            flex_spec("uts"),
            flex_spec("queens"),
            RunSpec::new(
                "uts",
                Scale::Tiny,
                DesignPoint::accel(PointArch::Flex, 1, 4),
            ),
            RunSpec::new(
                "queens",
                Scale::Tiny,
                DesignPoint::accel(PointArch::Flex, 1, 4),
            ),
            cpu_spec("uts"),
            cpu_spec("queens"),
        ];
        for (n, spec) in specs.iter().enumerate() {
            let tenant = ["alice", "bob", "carol"][n % 3];
            let spec = spec.clone().with_checkpoint(epoch);
            jobs.push(
                client
                    .submit(tenant, JobKind::Sim, &spec)
                    .unwrap_or_else(|e| panic!("crash submit: {e}")),
            );
        }
        for _ in 0..1000 {
            let text = std::fs::read_to_string(&journal_path).unwrap_or_default();
            if text.contains("{\"journal\":\"checkpoint\"") {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    child.kill().unwrap_or_else(|e| panic!("kill: {e}"));
    let _ = child.wait();
    eprintln!("[serve] crash: SIGKILLed lifetime 1 after the first durable checkpoint");

    // Lifetime 2: same journal, same checkpoint dir. Recovery re-queues
    // every unfinished job; drain waits for all of them.
    let (mut child, addr) = spawn_crash_server(dir);
    {
        let mut client =
            Client::connect_with(addr, &retry).unwrap_or_else(|e| panic!("reconnect: {e}"));
        client
            .drain()
            .unwrap_or_else(|e| panic!("crash drain: {e}"));
    }
    let status = child.wait().unwrap_or_else(|e| panic!("wait: {e}"));
    if !status.success() {
        failures.push(format!("crash: restarted server exited with {status}"));
    }

    // The full journal (both lifetimes) is the exactly-once ledger.
    let text =
        std::fs::read_to_string(&journal_path).unwrap_or_else(|e| panic!("read journal: {e}"));
    let mut resumed = 0u64;
    let mut exactly_once = 0u64;
    for job in &jobs {
        let mut done = 0u64;
        let mut failed = 0u64;
        for line in text.lines() {
            match JobEvent::from_json(line) {
                Ok(JobEvent::Done {
                    job: j,
                    resumed_from_cycle,
                    ..
                }) if j == *job => {
                    done += 1;
                    if let Some(cycle) = resumed_from_cycle {
                        if cycle == 0 {
                            failures.push(format!("crash: {job} resumed from cycle 0"));
                        }
                        resumed += 1;
                    }
                }
                Ok(JobEvent::Failed { job: j, error }) if j == *job => {
                    failures.push(format!("crash: {job} failed: {error}"));
                    failed += 1;
                }
                _ => {}
            }
        }
        if done == 1 && failed == 0 {
            exactly_once += 1;
        } else {
            failures.push(format!(
                "crash: {job} must complete exactly once, got {done} done / {failed} failed"
            ));
        }
    }
    if resumed == 0 {
        failures.push("crash: no job resumed from a checkpoint after the restart".to_owned());
    }
    eprintln!(
        "[serve] crash: {exactly_once}/{} job(s) completed exactly once across the kill, \
         {resumed} resumed from durable checkpoints",
        jobs.len()
    );
    (exactly_once, resumed)
}
