//! Fault sweep: availability vs. overhead under deterministic fault
//! injection.
//!
//! Runs every Table II benchmark on an 8-PE FlexArch accelerator under six
//! scenarios — fault-free, one PE killed mid-run, a transient PE stall,
//! bounded message drops, bounded message duplication, and P-Store
//! corruption — and emits one JSONL record per (benchmark, scenario) to
//! `fault_results.jsonl`, plus a markdown summary table on stdout.
//!
//! The sweep doubles as a regression gate: it exits nonzero when any run
//! leaves a fault unrecovered, breaks the `recovered == injected`
//! accounting, fails golden validation, or replays nondeterministically.
//!
//! Pass `--smoke` to run at `Scale::Tiny` (the CI smoke configuration).
//! Pass `--trace-out <path>` to dump the JSONL trace of the winning kill1
//! run — the benchmark that absorbed the PE kill with the lowest overhead —
//! plus a Perfetto/Chrome trace next to it (`<path>.perfetto.json`).

use pxl_apps::Scale;
use pxl_bench::{render_table, ALL_BENCHES};
use pxl_dse::{DesignPoint, PointArch};
use pxl_flow::{RunError, RunSpec};
use pxl_sim::{FaultPlan, Metrics, NetClass, Time};

/// One fault scenario of the sweep.
struct Scenario {
    name: &'static str,
    plan: fn() -> Option<FaultPlan>,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "clean",
        plan: || None,
    },
    Scenario {
        name: "kill1",
        plan: || Some(FaultPlan::new(0xD1E).kill_pe(3, Time::from_us(2))),
    },
    Scenario {
        name: "stall",
        plan: || Some(FaultPlan::new(0x57A11).stall_pe(1, Time::from_us(1), 5_000)),
    },
    Scenario {
        name: "drop",
        plan: || {
            Some(
                FaultPlan::new(0xD20)
                    .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 500, 6)
                    .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 500, 2),
            )
        },
    },
    Scenario {
        name: "dup",
        plan: || {
            Some(
                FaultPlan::new(0xD09)
                    .duplicate_messages(NetClass::Arg, Time::ZERO, Time::MAX, 500, 8)
                    .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 500, 4),
            )
        },
    },
    Scenario {
        name: "corrupt",
        plan: || {
            Some(
                FaultPlan::new(0xECC)
                    .corrupt_pstore(0, Time::from_us(1), 0xFFFF_0000)
                    .corrupt_pstore(1, Time::from_us(2), 0x0000_FFFF),
            )
        },
    },
];

/// Outcome of one faulted run.
struct FaultRun {
    bench: String,
    scenario: &'static str,
    kernel_ps: u64,
    result_ok: bool,
    metrics: Metrics,
}

impl FaultRun {
    fn injected(&self) -> u64 {
        self.metrics.get("fault.injected")
    }
    fn recovered(&self) -> u64 {
        self.metrics.get("fault.recovered")
    }
    fn unrecovered(&self) -> u64 {
        self.metrics.get("fault.unrecovered")
    }

    fn to_jsonl(&self, overhead_pct: f64) -> String {
        format!(
            concat!(
                "{{\"bench\":\"{}\",\"scenario\":\"{}\",\"kernel_ps\":{},",
                "\"overhead_pct\":{:.3},\"injected\":{},\"recovered\":{},",
                "\"unrecovered\":{},\"result_ok\":{},\"metrics\":{}}}"
            ),
            self.bench,
            self.scenario,
            self.kernel_ps,
            overhead_pct,
            self.injected(),
            self.recovered(),
            self.unrecovered(),
            self.result_ok,
            self.metrics.to_json(),
        )
    }
}

/// Runs `name` under `plan` on an 8-PE FlexArch, optionally traced,
/// returning the run record and the trace JSONL. Phrased as a canonical
/// [`RunSpec`]; a run whose output fails golden validation is still a
/// record (`result_ok: false`) — [`RunError::WrongResult`] carries the
/// completed outcome for exactly this purpose.
fn run_faulted(
    name: &str,
    scale: Scale,
    scenario: &'static str,
    plan: Option<FaultPlan>,
    trace: bool,
) -> (FaultRun, String) {
    let mut spec = RunSpec::new(name, scale, DesignPoint::accel(PointArch::Flex, 2, 4));
    if let Some(plan) = plan {
        spec = spec.with_faults(plan);
    }
    if trace {
        spec = spec.with_trace(1 << 18);
    }
    let (out, result_ok) = match pxl_flow::execute(&spec) {
        Ok(out) => (out.expect("FlexArch runs every benchmark"), true),
        Err(RunError::WrongResult { outcome, .. }) => (*outcome, false),
        Err(e) => panic!("{name} [{scenario}]: {e}"),
    };
    let trace_jsonl = out.trace.to_jsonl();
    (
        FaultRun {
            bench: name.to_owned(),
            scenario,
            kernel_ps: out.kernel.as_ps(),
            result_ok,
            metrics: out.metrics,
        },
        trace_jsonl,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut jsonl: Vec<String> = Vec::new();
    // Winning kill1 run: (kill1 kernel, clean kernel, bench, trace), kept
    // when kill1/clean beats the incumbent ratio (u128 cross-multiply — no
    // float comparisons in the selection).
    let mut best_kill1: Option<(u64, u64, String, String)> = None;

    for name in ALL_BENCHES {
        let mut clean_ps = 0u64;
        let mut kill1_ps = 0u64;
        for sc in &SCENARIOS {
            let (run, _) = run_faulted(name, scale, sc.name, (sc.plan)(), false);
            if sc.name == "clean" {
                clean_ps = run.kernel_ps;
            }
            if sc.name == "kill1" {
                kill1_ps = run.kernel_ps;
            }
            let overhead_pct = if clean_ps == 0 {
                0.0
            } else {
                (run.kernel_ps as f64 / clean_ps as f64 - 1.0) * 100.0
            };
            if !run.result_ok {
                failures.push(format!("{name} [{}]: golden validation failed", sc.name));
            }
            if run.unrecovered() > 0 {
                failures.push(format!(
                    "{name} [{}]: {} fault(s) unrecovered",
                    sc.name,
                    run.unrecovered()
                ));
            }
            if run.recovered() != run.injected() {
                failures.push(format!(
                    "{name} [{}]: accounting imbalance ({} injected, {} recovered)",
                    sc.name,
                    run.injected(),
                    run.recovered()
                ));
            }
            rows.push(vec![
                name.to_owned(),
                sc.name.to_owned(),
                format!("{}", run.injected()),
                format!("{}", run.recovered()),
                format!("{:+.2}%", overhead_pct),
                if run.result_ok { "ok" } else { "WRONG" }.to_owned(),
            ]);
            jsonl.push(run.to_jsonl(overhead_pct));
        }

        // Replay gate: the kill1 scenario must trace byte-identically.
        let (_, first) = run_faulted(name, scale, "kill1", (SCENARIOS[1].plan)(), true);
        let (_, second) = run_faulted(name, scale, "kill1", (SCENARIOS[1].plan)(), true);
        if first != second {
            failures.push(format!("{name} [kill1]: nondeterministic replay"));
        }
        let beats_incumbent = best_kill1.as_ref().is_none_or(|(bk, bc, _, _)| {
            (kill1_ps as u128) * (*bc as u128) < (*bk as u128) * (clean_ps as u128)
        });
        if clean_ps > 0 && beats_incumbent {
            best_kill1 = Some((kill1_ps, clean_ps, name.to_owned(), first));
        }
        eprintln!("[faults] {name}: swept {} scenarios", SCENARIOS.len());
    }

    println!("# Fault sweep: availability vs. overhead (8-PE FlexArch)\n");
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "scenario",
                "injected",
                "recovered",
                "overhead",
                "result"
            ],
            &rows,
        )
    );

    let path = std::path::Path::new("fault_results.jsonl");
    match std::fs::write(path, jsonl.join("\n") + "\n") {
        Ok(()) => eprintln!(
            "[jsonl] wrote {} records to {}",
            jsonl.len(),
            path.display()
        ),
        Err(e) => failures.push(format!("failed to write {}: {e}", path.display())),
    }

    if let Some(out) = trace_out {
        if let Some((_, _, name, trace)) = &best_kill1 {
            eprintln!("[trace] winning kill1 run: {name} — dumping trace...");
            let perfetto_path = format!("{out}.perfetto.json");
            let written = std::fs::write(&out, trace).and_then(|()| {
                // Round-trip the JSONL dump through the pxl-profile parser
                // so the Perfetto export comes from exactly what was saved.
                let records = pxl_profile::parse_jsonl(trace)
                    .map_err(|e| std::io::Error::other(format!("trace does not parse: {e}")))?;
                std::fs::write(
                    &perfetto_path,
                    pxl_profile::to_perfetto_json(
                        &records,
                        &pxl_profile::Layout::new(8, 4),
                        &format!("{name}/kill1"),
                    ),
                )
            });
            match written {
                Ok(()) => eprintln!("[trace] wrote {out} (+ {perfetto_path})"),
                Err(e) => failures.push(format!("failed to write {out}: {e}")),
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("\n[faults] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[faults] all scenarios recovered deterministically");
}
