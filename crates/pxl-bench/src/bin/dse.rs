//! Design-space exploration driver: sweeps accelerator configurations across
//! benchmarks with `pxl-dse` and reports per-benchmark Pareto fronts over
//! (runtime, energy, LUT, BRAM).
//!
//! The sweep runs in three passes against a persistent content-addressed
//! result cache (`dse_cache.jsonl`):
//!
//! 1. **Grid** — exhaustive exploration of the feasible space; every point
//!    simulates and lands in the cache.
//! 2. **Grid again** — must be *pure cache hits* and reproduce the exact same
//!    fronts byte-for-byte. This is the determinism gate CI relies on; any
//!    miss or divergence exits nonzero.
//! 3. **Successive halving** — the budgeted strategy, sharing the same cache;
//!    its best-runtime point per benchmark must match the grid's.
//!
//! Fronts go to `dse_pareto.jsonl`, the markdown report to stdout.
//!
//! Pass `--smoke` to run at `Scale::Tiny` (the CI smoke configuration).

use pxl_apps::Scale;
use pxl_arch::StealMode;
use pxl_bench::BenchEvaluator;
use pxl_cost::FpgaDevice;
use pxl_dse::{Axis, Exploration, Explorer, PointArch, ResultCache, SearchSpace, Strategy};

const CACHE_PATH: &str = "dse_cache.jsonl";
const PARETO_PATH: &str = "dse_pareto.jsonl";
const CLUSTER_PARETO_PATH: &str = "cluster_pareto.jsonl";

/// The swept space: three architectures crossed with tile count, PEs per
/// tile, and L1 size, pruned against the Artix-7 device. Covers all three
/// prune reasons (48 KiB breaks the cache geometry, cilksort has no LiteArch
/// variant, and its wide Flex tiles overflow the Artix-7).
fn space(benches: &[&str]) -> SearchSpace {
    SearchSpace::new()
        .benchmarks(benches.iter().copied())
        .archs([PointArch::Flex, PointArch::Lite, PointArch::Cpu])
        .tiles(Axis::list([1, 2]))
        .pes_per_tile(Axis::list([2, 4]))
        .cache_kb(Axis::list([16, 32, 48]))
        .device(FpgaDevice::artix_7a75t())
}

/// The multi-chip sweep: a fixed 16-PE FlexArch fabric split across 1, 2
/// and 4 chips, crossed with inter-chip link latency and both stealing
/// hierarchies. The 1-chip row is the single-chip baseline the cluster
/// points are judged against; each chip is fitted to the device
/// independently, so 4×4 tiles that overflow one Artix-7 still sweep when
/// split across chips.
fn cluster_space(benches: &[&str]) -> SearchSpace {
    SearchSpace::new()
        .benchmarks(benches.iter().copied())
        .archs([PointArch::Flex])
        .tiles(Axis::list([4]))
        .pes_per_tile(Axis::list([4]))
        .cache_kb(Axis::list([32]))
        .chips(Axis::list([1, 2, 4]))
        .link_latency_cycles(Axis::list([16, 64]))
        .steal_modes([
            StealMode::Hierarchical { spill_threshold: 2 },
            StealMode::Flat,
        ])
        .device(FpgaDevice::artix_7a75t())
}

fn open_cache(failures: &mut Vec<String>) -> ResultCache {
    match ResultCache::open(CACHE_PATH) {
        Ok(cache) => cache,
        Err(e) => {
            failures.push(format!("failed to open {CACHE_PATH}: {e}"));
            ResultCache::in_memory()
        }
    }
}

fn summarize(pass: &str, outcome: &Exploration) {
    eprintln!(
        "[dse] {pass}: {} evaluated, {} pruned, {} failed, {} hit(s), {} miss(es), {} rung eval(s)",
        outcome.evaluated.len(),
        outcome.pruned.len(),
        outcome.failed.len(),
        outcome.cache_hits,
        outcome.cache_misses,
        outcome.rung_evaluations,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    let benches: &[&str] = if smoke {
        &["queens", "cilksort", "bfsqueue"]
    } else {
        &["queens", "cilksort", "bfsqueue", "uts", "spmvcrs"]
    };
    // A fresh smoke run must exercise the miss path before the hit path.
    if smoke {
        let _ = std::fs::remove_file(CACHE_PATH);
    }
    let mut failures: Vec<String> = Vec::new();
    let space = space(benches);
    let evaluator = BenchEvaluator::new(scale, Scale::Tiny);

    // Pass 1: exhaustive grid, populating the cache.
    let first = Explorer::new(&evaluator)
        .with_cache(open_cache(&mut failures))
        .explore(&space);
    summarize("grid", &first);
    for e in &first.io_errors {
        failures.push(format!("cache write failed: {e}"));
    }
    for f in &first.failed {
        failures.push(format!("{} [{}]: {}", f.benchmark, f.spec, f.error));
    }

    // Pass 2: the determinism gate — pure hits, identical fronts.
    let second = Explorer::new(&evaluator)
        .with_cache(open_cache(&mut failures))
        .explore(&space);
    summarize("grid (cached)", &second);
    if second.cache_misses != 0 {
        failures.push(format!(
            "determinism gate: re-run missed the cache {} time(s)",
            second.cache_misses
        ));
    }
    if second.fronts_jsonl() != first.fronts_jsonl() {
        failures.push("determinism gate: cached re-run produced different fronts".to_owned());
    }

    // Pass 3: successive halving must find the grid's fastest point.
    let halved = Explorer::new(&evaluator)
        .with_cache(open_cache(&mut failures))
        .strategy(Strategy::SuccessiveHalving { rungs: 1, eta: 2 })
        .explore(&space);
    summarize("halving", &halved);
    for bench in benches {
        match (first.best_runtime(bench), halved.best_runtime(bench)) {
            (Some(grid), Some(sh)) if grid.point == sh.point => {}
            (grid, sh) => failures.push(format!(
                "{bench}: halving best {:?} != grid best {:?}",
                sh.map(|e| e.point.spec()),
                grid.map(|e| e.point.spec()),
            )),
        }
    }

    // Pass 4: the cluster sweep — chips × link latency × stealing mode on
    // the irregular workloads, sharing the same cache and determinism
    // expectations as the main grid.
    let cluster_benches: &[&str] = &["uts", "bfsqueue"];
    let cspace = cluster_space(cluster_benches);
    let cluster = Explorer::new(&evaluator)
        .with_cache(open_cache(&mut failures))
        .explore(&cspace);
    summarize("cluster", &cluster);
    for e in &cluster.io_errors {
        failures.push(format!("cluster cache write failed: {e}"));
    }
    for f in &cluster.failed {
        failures.push(format!("{} [{}]: {}", f.benchmark, f.spec, f.error));
    }
    let cluster_again = Explorer::new(&evaluator)
        .with_cache(open_cache(&mut failures))
        .explore(&cspace);
    if cluster_again.cache_misses != 0 || cluster_again.fronts_jsonl() != cluster.fronts_jsonl() {
        failures.push("determinism gate: cluster re-run diverged".to_owned());
    }
    // The headline claim the sweep exists to check: with the link made
    // expensive, hierarchical stealing must beat flat stealing at the same
    // geometry on at least one benchmark's front.
    let hier_beats_flat = cluster.evaluated.iter().any(|a| {
        a.point
            .cluster
            .is_some_and(|c| matches!(c.stealing, StealMode::Hierarchical { .. }))
            && cluster.evaluated.iter().any(|b| {
                b.benchmark == a.benchmark
                    && b.point.tiles == a.point.tiles
                    && b.point.cluster.is_some_and(|c| {
                        c.stealing == StealMode::Flat
                            && Some(c.chips) == a.point.cluster.map(|x| x.chips)
                            && Some(c.link_latency_cycles)
                                == a.point.cluster.map(|x| x.link_latency_cycles)
                    })
                    && a.measurement.whole_ps < b.measurement.whole_ps
            })
    });
    if !hier_beats_flat {
        failures.push(
            "cluster sweep: hierarchical stealing never beat flat at any matched geometry"
                .to_owned(),
        );
    }

    println!("{}", first.report_markdown());
    println!("{}", cluster.report_markdown());

    let fronts = first.fronts_jsonl();
    match std::fs::write(PARETO_PATH, &fronts) {
        Ok(()) => eprintln!(
            "[jsonl] wrote {} front point(s) to {PARETO_PATH}",
            fronts.lines().count()
        ),
        Err(e) => failures.push(format!("failed to write {PARETO_PATH}: {e}")),
    }
    let cluster_fronts = cluster.fronts_jsonl();
    match std::fs::write(CLUSTER_PARETO_PATH, &cluster_fronts) {
        Ok(()) => eprintln!(
            "[jsonl] wrote {} cluster front point(s) to {CLUSTER_PARETO_PATH}",
            cluster_fronts.lines().count()
        ),
        Err(e) => failures.push(format!("failed to write {CLUSTER_PARETO_PATH}: {e}")),
    }

    if !failures.is_empty() {
        eprintln!("\n[dse] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[dse] cache deterministic; halving agrees with the grid");
}
