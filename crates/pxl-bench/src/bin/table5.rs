//! Regenerates Table V: per-PE and per-tile FPGA resource utilization.
use pxl_bench::experiments;

fn main() {
    println!("{}", experiments::table5());
}
