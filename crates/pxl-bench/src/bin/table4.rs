//! Regenerates Table IV: benchmark scalability (CPU 1-8 cores, FlexArch and
//! LiteArch 1-32 PEs).
use pxl_apps::Scale;
use pxl_bench::experiments;

fn main() {
    let results = experiments::run_scaling(Scale::Paper);
    println!("{}", experiments::table4(&results));
}
