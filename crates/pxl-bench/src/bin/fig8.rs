//! Regenerates Fig. 8: performance vs energy efficiency at 16 PEs.
use pxl_apps::Scale;
use pxl_bench::experiments;

fn main() {
    let results = experiments::run_scaling(Scale::Paper);
    println!("{}", experiments::fig8(&results));
}
