//! Host-throughput benchmark: how fast the simulator itself runs.
//!
//! Measures wall-clock simulated-cycles/sec and tasks/sec for every engine
//! — FlexArch, LiteArch, the centralized-queue ablation and the CPU
//! baseline — on two benchmarks with mappings for all of them, so the
//! fabric's hot dispatch loop has a recorded perf trajectory and
//! refactors can be shown not to slow it down.
//!
//! Appends one JSONL record per (benchmark, engine) to
//! `bench_results.jsonl` (tagged `"perf":true` to keep them separable from
//! experiment records) and prints a markdown table.
//!
//! Pass `--smoke` to run at `Scale::Tiny` for a quick end-to-end check.

use std::io::Write;
use std::time::Instant;

use pxl_apps::Scale;
use pxl_arch::AccelConfig;
use pxl_bench::{
    bench, render_table, run_central, run_cluster, run_cpu, run_flex, run_lite, RunOutcome,
};
use pxl_sim::config::CpuCoreParams;

const PES: usize = 16;
const BENCHES: [&str; 2] = ["uts", "queens"];
/// The benchmarks the multi-chip rows run: one irregular-tree and one
/// queue-driven workload, matching the cluster study in EXPERIMENTS.md.
const CLUSTER_BENCHES: [&str; 2] = ["uts", "bfsqueue"];

struct PerfRow {
    bench: &'static str,
    engine: &'static str,
    units: usize,
    wall_s: f64,
    sim_cycles: u64,
    tasks: u64,
    /// `link.steal_hits / accel.steal_hits` for cluster rows: the fraction
    /// of successful steals that crossed a chip boundary. `None` on
    /// single-chip engines.
    inter_chip_steals: Option<f64>,
}

impl PerfRow {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }

    fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.wall_s
    }

    fn to_jsonl(&self, host: &str) -> String {
        let cluster = self
            .inter_chip_steals
            .map(|r| format!(",\"inter_chip_steals\":{r:.4}"))
            .unwrap_or_default();
        format!(
            concat!(
                "{{\"perf\":true,\"host\":\"{}\",\"bench\":\"{}\",\"engine\":\"{}\",",
                "\"units\":{},\"wall_s\":{:.6},\"sim_cycles\":{},",
                "\"tasks\":{},\"cycles_per_sec\":{:.1},\"tasks_per_sec\":{:.1}{}}}"
            ),
            host,
            self.bench,
            self.engine,
            self.units,
            self.wall_s,
            self.sim_cycles,
            self.tasks,
            self.cycles_per_sec(),
            self.tasks_per_sec(),
            cluster,
        )
    }
}

/// One simulated clock period in picoseconds for `engine`'s timebase.
fn cycle_ps(engine: &str) -> u64 {
    match engine {
        "cpu" => CpuCoreParams::micro2018().clock.cycles_to_time(1).as_ps(),
        _ => AccelConfig::flex(1, 1).clock.cycles_to_time(1).as_ps(),
    }
}

/// How many times each row's run is repeated; the row reports the
/// *fastest* repetition. Runs are deterministic, so repetitions differ
/// only by host noise (scheduler preemption, frequency scaling), which is
/// strictly additive — the minimum wall time is the least-contended
/// sample and the most reproducible statistic on a shared machine.
const REPS: usize = 5;

fn measure(
    name: &'static str,
    engine: &'static str,
    mut run: impl FnMut() -> RunOutcome,
) -> PerfRow {
    let mut out = run();
    let mut wall_s = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        out = run();
        wall_s = wall_s.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    let tasks = out.metrics.get("accel.tasks") + out.metrics.get("cpu.tasks");
    // `link.*` counters only exist on multi-chip fabrics, so their absence
    // marks a single-chip row.
    let inter_chip_steals = if out.metrics.get("link.msgs") > 0 {
        let hits = out.metrics.get("accel.steal_hits");
        Some(if hits == 0 {
            0.0
        } else {
            out.metrics.get("link.steal_hits") as f64 / hits as f64
        })
    } else {
        None
    };
    PerfRow {
        bench: name,
        engine,
        units: out.units,
        wall_s,
        sim_cycles: out.kernel.as_ps() / cycle_ps(engine),
        tasks,
        inter_chip_steals,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    let mut rows = Vec::new();
    for name in BENCHES {
        let b = bench(name, scale);
        eprintln!("[perf] {name}: flex/lite/central/cpu at {PES} units...");
        rows.push(measure(name, "flex", || run_flex(b.as_ref(), PES, None)));
        rows.push(measure(name, "lite", || {
            run_lite(b.as_ref(), PES, None).expect("perf benchmarks have Lite mappings")
        }));
        rows.push(measure(name, "central", || {
            run_central(b.as_ref(), PES, None)
        }));
        rows.push(measure(name, "cpu", || run_cpu(b.as_ref(), PES)));
    }

    // Multi-chip fabrics: the same 16 PEs split across 2 and 4 chips,
    // stealing hierarchically vs. flat across the inter-chip link.
    for name in CLUSTER_BENCHES {
        let b = bench(name, scale);
        eprintln!("[perf] {name}: 2-chip and 4-chip clusters at {PES} PEs...");
        for (chips, hier_label, flat_label) in [(2, "hier2", "flat2"), (4, "hier4", "flat4")]
            as [(usize, &'static str, &'static str); 2]
        {
            rows.push(measure(name, hier_label, || {
                run_cluster(b.as_ref(), PES, chips, true, hier_label)
            }));
            rows.push(measure(name, flat_label, || {
                run_cluster(b.as_ref(), PES, chips, false, flat_label)
            }));
        }
    }

    println!("## Host throughput ({:?})\n", scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.to_owned(),
                r.engine.to_owned(),
                format!("{:.1} ms", r.wall_s * 1e3),
                format!("{:.3e}", r.cycles_per_sec()),
                format!("{:.3e}", r.tasks_per_sec()),
                r.inter_chip_steals
                    .map_or("-".to_owned(), |x| format!("{:.1}%", x * 100.0)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Benchmark",
                "Engine",
                "Wall",
                "Sim cycles/s",
                "Tasks/s",
                "Inter-chip steals"
            ],
            &table
        )
    );

    // Smoke mode doubles as a coarse perf regression gate for CI: the flex
    // fabric at Tiny sustains well over 10^6 simulated cycles/s on any
    // machine this runs on, so a reading below the floor means the hot
    // dispatch path itself regressed by an order of magnitude (the floor is
    // ~10x below typical so host noise can never trip it).
    if smoke {
        const FLEX_SMOKE_FLOOR: f64 = 1.0e5;
        for r in rows.iter().filter(|r| r.engine == "flex") {
            assert!(
                r.cycles_per_sec() > FLEX_SMOKE_FLOOR,
                "perf smoke floor: {} flex sustained only {:.3e} sim cycles/s (floor {:.1e})",
                r.bench,
                r.cycles_per_sec(),
                FLEX_SMOKE_FLOOR
            );
        }
        eprintln!("[perf] smoke floor ok: flex rows above {FLEX_SMOKE_FLOOR:.1e} sim cycles/s");
    }

    let path = std::path::Path::new("bench_results.jsonl");
    let host = pxl_bench::host_build_id();
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            for row in &rows {
                writeln!(w, "{}", row.to_jsonl(&host))?;
            }
            w.into_inner()?.flush()
        });
    match appended {
        Ok(()) => eprintln!(
            "[perf] appended {} records to {}",
            rows.len(),
            path.display()
        ),
        Err(e) => eprintln!("[perf] failed to write {}: {e}", path.display()),
    }
}
