//! Profiling driver: traced runs + full `pxl-profile` analysis per
//! (benchmark, engine).
//!
//! Runs every Table II benchmark on FlexArch, the centralized-queue
//! ablation, LiteArch (where a mapping exists) and the CPU baseline with
//! event tracing enabled, reconstructs each run's task graph, and emits:
//!
//! - `profile_report.md` — markdown report per run: work/span/parallelism,
//!   the critical path, latency percentiles, per-unit utilization
//!   timelines, and per-tile bottleneck verdicts;
//! - `profile_results.jsonl` — one machine-readable record per run;
//! - `profile_traces/<bench>.<engine>.perfetto.json` — Chrome/Perfetto
//!   traces that open directly in <https://ui.perfetto.dev>;
//! - `telemetry_timeline.jsonl` — the windowed counter/gauge timeline of a
//!   telemetry-sampled run (see docs/metrics.md), plus a Perfetto export
//!   with `telemetry.*` counter tracks alongside the slices.
//!
//! The driver doubles as a regression gate: it exits nonzero when any
//! profile violates the structural invariants (span ≤ makespan, trace work
//! equal to the engine's `accel.task_ps` sum, utilization within \[0, 1\])
//! or when a second same-seed run does not reproduce the report and the
//! Perfetto export byte-identically.
//!
//! Pass `--smoke` to run at `Scale::Tiny` (the CI configuration).

use pxl_apps::Scale;
use pxl_bench::{render_table, RunOutcome, ALL_BENCHES};
use pxl_dse::{ClusterPoint, DesignPoint, PointArch};
use pxl_flow::RunSpec;
use pxl_profile::{to_perfetto_json, to_perfetto_json_with_timeline, Layout, Profile};

/// Trace buffer large enough that smoke/small runs never drop events (a
/// dropped event weakens the work cross-check; the report warns if any).
const TRACE_CAPACITY: usize = 1 << 20;

/// The engines the driver profiles. Accelerators run the paper's 8-PE
/// (2 tiles × 4) geometry; the CPU baseline runs 4 cores as one tile; the
/// hierarchical cluster splits the same 8 PEs across 2 chips of 2 tiles,
/// exercising the per-chip rollups and link-bound analysis.
const ENGINES: [&str; 5] = ["flex", "central", "lite", "cpu", "hier"];

fn layout_for(label: &str) -> Layout {
    match label {
        "cpu" => Layout::new(4, 4),
        "hier" => Layout::clustered(8, 2, 2),
        _ => Layout::new(8, 4),
    }
}

/// Runs `name` on the labeled engine with tracing on, through the
/// canonical [`RunSpec`] path. `None` means LiteArch with no Lite mapping.
fn run_traced(name: &str, scale: Scale, label: &str) -> Option<RunOutcome> {
    let point = match label {
        "flex" => DesignPoint::accel(PointArch::Flex, 2, 4),
        "central" => DesignPoint::accel(PointArch::Central, 2, 4),
        "lite" => DesignPoint::accel(PointArch::Lite, 2, 4),
        "cpu" => DesignPoint::cpu(4),
        "hier" => DesignPoint::accel(PointArch::Flex, 4, 2).clustered(ClusterPoint::new(2)),
        other => panic!("unknown engine label {other}"),
    };
    let spec = RunSpec::new(name, scale, point).with_trace(TRACE_CAPACITY);
    pxl_flow::execute(&spec).unwrap_or_else(|e| panic!("{e}"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    let trace_dir = std::path::Path::new("profile_traces");
    if let Err(e) = std::fs::create_dir_all(trace_dir) {
        eprintln!("[profile] cannot create {}: {e}", trace_dir.display());
        std::process::exit(1);
    }

    let mut failures: Vec<String> = Vec::new();
    let mut report = String::from(
        "# ParallelXL profile report\n\n\
         Task-graph, latency and bottleneck analysis of traced runs \
         (see docs/profiling.md for field definitions).\n\n",
    );
    let mut jsonl: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for name in ALL_BENCHES {
        for label in ENGINES {
            let Some(out) = run_traced(name, scale, label) else {
                continue; // no LiteArch mapping
            };
            let layout = layout_for(label);
            let profile = Profile::analyze(out.trace.records(), &out.metrics, &layout, out.kernel);
            for v in profile.check_invariants() {
                failures.push(format!("{name}/{label}: {v}"));
            }
            let md = profile.render_markdown(name, label);
            let run_label = format!("{name}/{label}");
            let perfetto = to_perfetto_json(out.trace.records(), &layout, &run_label);

            // Determinism gate: a second same-seed run must reproduce both
            // artifacts byte-for-byte.
            let again = run_traced(name, scale, label).expect("engine ran once already");
            let profile2 =
                Profile::analyze(again.trace.records(), &again.metrics, &layout, again.kernel);
            if profile2.render_markdown(name, label) != md
                || to_perfetto_json(again.trace.records(), &layout, &run_label) != perfetto
            {
                failures.push(format!("{run_label}: profile not byte-deterministic"));
            }

            let trace_path = trace_dir.join(format!("{name}.{label}.perfetto.json"));
            if let Err(e) = std::fs::write(&trace_path, &perfetto) {
                failures.push(format!("failed to write {}: {e}", trace_path.display()));
            }
            rows.push(vec![
                name.to_owned(),
                label.to_owned(),
                profile.elapsed.as_ps().to_string(),
                profile.graph.work_ps.to_string(),
                profile.graph.span_ps.to_string(),
                format!("{:.2}x", profile.parallelism()),
                profile.tiles.first().map_or("-", |t| t.verdict).to_owned(),
            ]);
            jsonl.push(profile.render_jsonl(name, label));
            report.push_str(&md);
            report.push('\n');
            eprintln!(
                "[profile] {run_label}: {} events, span {} ps / makespan {} ps",
                profile.trace_events,
                profile.graph.span_ps,
                profile.elapsed.as_ps()
            );
        }
    }

    println!("# Profile summary\n");
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "engine",
                "makespan_ps",
                "work_ps",
                "span_ps",
                "parallelism",
                "tile0 verdict"
            ],
            &rows,
        )
    );

    for (path, contents) in [
        ("profile_report.md", report),
        ("profile_results.jsonl", jsonl.join("\n") + "\n"),
    ] {
        match std::fs::write(path, contents) {
            Ok(()) => eprintln!("[profile] wrote {path}"),
            Err(e) => failures.push(format!("failed to write {path}: {e}")),
        }
    }

    // Telemetry smoke: a traced run with an epoch sampler must produce a
    // non-empty JSONL timeline, a second same-seed run must reproduce it
    // byte-identically, and the Perfetto export must grow counter tracks
    // alongside the slices.
    let telemetry_spec = RunSpec::new("uts", scale, DesignPoint::accel(PointArch::Flex, 2, 4))
        .with_trace(TRACE_CAPACITY)
        .with_telemetry(500);
    let traced = pxl_flow::execute(&telemetry_spec)
        .unwrap_or_else(|e| panic!("{e}"))
        .expect("uts has a flex variant");
    let timeline_jsonl = traced.timeline.to_jsonl();
    if traced.timeline.samples().is_empty() {
        failures.push("telemetry: a 500-cycle epoch must produce samples".to_owned());
    }
    let again = pxl_flow::execute(&telemetry_spec)
        .unwrap_or_else(|e| panic!("{e}"))
        .expect("uts has a flex variant");
    if again.timeline.to_jsonl() != timeline_jsonl {
        failures
            .push("telemetry: timeline not byte-deterministic across same-seed runs".to_owned());
    }
    match std::fs::write("telemetry_timeline.jsonl", &timeline_jsonl) {
        Ok(()) => eprintln!(
            "[profile] wrote telemetry_timeline.jsonl ({} sample(s))",
            traced.timeline.samples().len()
        ),
        Err(e) => failures.push(format!("failed to write telemetry_timeline.jsonl: {e}")),
    }
    let counters = to_perfetto_json_with_timeline(
        traced.trace.records(),
        &layout_for("flex"),
        "uts/flex+telemetry",
        &traced.timeline,
    );
    if !counters.contains("\"ph\":\"C\"") {
        failures.push("telemetry: perfetto export must contain counter tracks".to_owned());
    }
    let counter_path = trace_dir.join("uts.flex.telemetry.perfetto.json");
    if let Err(e) = std::fs::write(&counter_path, &counters) {
        failures.push(format!("failed to write {}: {e}", counter_path.display()));
    }

    if !failures.is_empty() {
        eprintln!("\n[profile] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[profile] all runs profiled deterministically; invariants hold");
}
