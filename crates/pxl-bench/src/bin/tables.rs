//! Regenerates the paper's Tables I-III (architecture features, benchmark
//! characteristics, platform configuration).
use pxl_bench::experiments;

fn main() {
    println!("{}\n", experiments::table1());
    println!("{}\n", experiments::table2());
    println!("{}", experiments::table3());
}
