//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section V).
//!
//! Each experiment has a binary (`tables`, `fig6`, `table4`, `fig7`,
//! `table5`, `fig8`, `fig9`) plus `all`, which runs everything and emits
//! `EXPERIMENTS.md`-ready output. The shared machinery here runs one
//! benchmark on one engine configuration, validates the output against the
//! golden reference, and reports *whole-program* time (host initialization
//! plus kernel), matching the paper's methodology: "performance numbers are
//! obtained by comparing whole program execution time, which include
//! initialization and data transfers".

pub mod dse;
pub mod experiments;

use pxl_apps::{by_name, Benchmark, Scale};
use pxl_arch::{AccelConfig, MemBackendKind};
use pxl_flow::SimulationBuilder;
use pxl_mem::zedboard::{zedboard_cpu_core, zedboard_cpu_memory};
use pxl_sim::Clock;

/// The run machinery (outcomes, checked execution, JSONL reporting) now
/// lives in [`pxl_flow::run`] behind the canonical `RunSpec` API;
/// re-exported so existing harness code keeps working.
pub use pxl_flow::{run_on, try_run_on, write_jsonl, RunOutcome};

/// A host/build identifier for stamping benchmark result rows, so
/// longitudinal `bench_results.jsonl` files collected from different
/// machines or builds can be told apart: `<host>/v<crate version>`. The
/// host part comes from `PXL_HOST_ID` (explicit override), else
/// `HOSTNAME`, else `unknown-host`, restricted to JSON-safe identifier
/// characters.
pub fn host_build_id() -> String {
    let raw = std::env::var("PXL_HOST_ID")
        .or_else(|_| std::env::var("HOSTNAME"))
        .unwrap_or_default();
    let host: String = raw
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        .collect();
    let host = if host.is_empty() {
        "unknown-host"
    } else {
        host.as_str()
    };
    format!("{host}/v{}", env!("CARGO_PKG_VERSION"))
}

/// Prefixes one `{...}` JSONL record with a `"host"` member without
/// touching the (byte-stable) record format itself.
pub fn stamp_host(record: &str, host: &str) -> String {
    debug_assert!(record.starts_with('{'), "JSONL records are objects");
    format!("{{\"host\":\"{host}\",{}", &record[1..])
}

/// [`write_jsonl`] with every record stamped by [`stamp_host`].
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_jsonl_stamped(
    path: &std::path::Path,
    outcomes: &[RunOutcome],
    host: &str,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for out in outcomes {
        writeln!(f, "{}", stamp_host(&out.to_jsonl(), host))?;
    }
    f.into_inner()?.flush()
}

/// Splits a PE count into the paper's geometry: up to 4 PEs in one tile,
/// then 4-PE tiles.
pub fn geometry(pes: usize) -> (usize, usize) {
    if pes <= 4 {
        (1, pes)
    } else {
        assert!(
            pes.is_multiple_of(4),
            "PE counts above 4 must be multiples of 4"
        );
        (pes / 4, 4)
    }
}

/// Runs `bench` on a FlexArch accelerator with `pes` PEs.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate —
/// experiment results must never silently ship wrong data.
pub fn run_flex(bench: &dyn Benchmark, pes: usize, cache_bytes: Option<usize>) -> RunOutcome {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::flex(tiles, per_tile);
    if let Some(bytes) = cache_bytes {
        cfg.memory.accel_l1 = cfg.memory.accel_l1.clone().with_size(bytes);
    }
    run_flex_with_config(bench, cfg, "flex")
}

/// Runs `bench` on a FlexArch accelerator with an explicit configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid, the simulation fails, or the
/// output does not validate.
pub fn run_flex_with_config(bench: &dyn Benchmark, cfg: AccelConfig, label: &str) -> RunOutcome {
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .unwrap_or_else(|e| panic!("{} on {label}: {e}", bench.meta().name));
    run_on(engine.as_mut(), bench, label).expect("FlexArch runs every benchmark")
}

/// Runs `bench`'s LiteArch variant with `pes` PEs; `None` if the benchmark
/// has no Lite mapping.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate.
pub fn run_lite(
    bench: &dyn Benchmark,
    pes: usize,
    cache_bytes: Option<usize>,
) -> Option<RunOutcome> {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::lite(tiles, per_tile);
    if let Some(bytes) = cache_bytes {
        cfg.memory.accel_l1 = cfg.memory.accel_l1.clone().with_size(bytes);
    }
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .unwrap_or_else(|e| panic!("{} on lite/{pes}PE: {e}", bench.meta().name));
    run_on(engine.as_mut(), bench, "lite")
}

/// Runs `bench` on a multi-chip FlexArch cluster: `pes` PEs split evenly
/// across `chips` chips, stealing hierarchically (intra-chip first) when
/// `hierarchical`, or treating the whole fabric as flat otherwise. The
/// inter-chip link runs the default [`pxl_arch::ClusterConfig`] timing.
///
/// # Panics
///
/// Panics if the geometry does not split across `chips`, the simulation
/// fails, or the output does not validate.
pub fn run_cluster(
    bench: &dyn Benchmark,
    pes: usize,
    chips: usize,
    hierarchical: bool,
    label: &str,
) -> RunOutcome {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::flex(tiles, per_tile);
    cfg.cluster = Some(if hierarchical {
        pxl_arch::ClusterConfig::new(chips)
    } else {
        pxl_arch::ClusterConfig::new(chips).flat()
    });
    run_flex_with_config(bench, cfg, label)
}

/// Runs `bench` on the centralized shared-queue ablation with `pes` PEs —
/// FlexArch's task model over one global ready queue, quantifying what
/// distributed hardware work stealing buys.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate.
pub fn run_central(bench: &dyn Benchmark, pes: usize, cache_bytes: Option<usize>) -> RunOutcome {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::central(tiles, per_tile);
    if let Some(bytes) = cache_bytes {
        cfg.memory.accel_l1 = cfg.memory.accel_l1.clone().with_size(bytes);
    }
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .unwrap_or_else(|e| panic!("{} on central/{pes}PE: {e}", bench.meta().name));
    run_on(engine.as_mut(), bench, "central").expect("the central queue runs every benchmark")
}

/// Runs `bench` on the Cilk-style CPU baseline with `cores` cores.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate.
pub fn run_cpu(bench: &dyn Benchmark, cores: usize) -> RunOutcome {
    let mut engine = SimulationBuilder::cpu(cores, bench.profile())
        .build()
        .unwrap_or_else(|e| panic!("{} on cpu/{cores}C: {e}", bench.meta().name));
    run_on(engine.as_mut(), bench, "cpu").expect("the CPU runs every benchmark")
}

/// Runs `bench` on the Zedboard's two-core Cortex-A9 CPU model.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate.
pub fn run_cpu_zedboard(bench: &dyn Benchmark) -> RunOutcome {
    // The Cortex-A9's narrow NEON and shallow OOO window retire kernel code
    // at roughly 60% of the big core's per-clock rate, and its 32-bit Cilk
    // runtime code is less dense than the 4-issue core's.
    let big = bench.profile();
    let a9_profile =
        pxl_model::ExecProfile::new(big.accel_ops_per_cycle, big.cpu_ops_per_cycle * 0.6);
    let costs = pxl_cpu::SoftwareCosts {
        runtime_ipc: 1.2,
        steal_attempt_instrs: 400,
        ..pxl_cpu::SoftwareCosts::default()
    };
    let mut engine = SimulationBuilder::cpu_with(
        2,
        a9_profile,
        zedboard_cpu_core(),
        zedboard_cpu_memory(),
        costs,
    )
    .build()
    .unwrap_or_else(|e| panic!("{} on zedcpu: {e}", bench.meta().name));
    run_on(engine.as_mut(), bench, "zedcpu").expect("the CPU runs every benchmark")
}

/// Runs `bench` on the Zedboard prototype accelerator (stream buffers over
/// a single ACP port, 100 MHz fabric).
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate.
pub fn run_flex_zedboard(bench: &dyn Benchmark, pes: usize) -> RunOutcome {
    let (tiles, per_tile) = geometry(pes);
    let mut cfg = AccelConfig::flex(tiles, per_tile);
    cfg.mem_backend = MemBackendKind::Zedboard;
    cfg.clock = Clock::new("zed_accel", 8_000);
    run_flex_with_config(bench, cfg, "zedflex")
}

/// Looks up a benchmark by name at the harness's evaluation scale.
///
/// # Panics
///
/// Panics on unknown names.
pub fn bench(name: &str, scale: Scale) -> Box<dyn Benchmark> {
    by_name(name, scale).unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// The ten benchmark names in Table II order.
pub const ALL_BENCHES: [&str; 10] = [
    "nw",
    "quicksort",
    "cilksort",
    "queens",
    "knapsack",
    "uts",
    "bbgemm",
    "bfsqueue",
    "spmvcrs",
    "stencil2d",
];

/// Benchmarks implemented on the Zedboard prototype. The paper notes "a few
/// benchmarks that rely on fine-grained cache accesses were not
/// implemented" on the Zynq-7000 (no coherent-cache interface on the
/// fabric); the fine-grained-sharing benchmarks here are `knapsack` (atomic
/// best-bound) and `bfsqueue` (atomic frontier queue).
pub const ZEDBOARD_BENCHES: [&str; 8] = [
    "nw",
    "quicksort",
    "cilksort",
    "queens",
    "uts",
    "bbgemm",
    "spmvcrs",
    "stencil2d",
];

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values
        .into_iter()
        .fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// The shared simulation worker pool, re-exported so existing harness code
/// (and downstream users of `pxl_bench::parallel_map`) keep working; the one
/// implementation now lives in [`pxl_sim::pool`] where `pxl-dse` shares it.
pub use pxl_sim::pool::parallel_map;

pub use dse::BenchEvaluator;

/// Renders a markdown-style table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&fmt_row(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::Time;

    #[test]
    fn geometry_splits_like_the_paper() {
        assert_eq!(geometry(1), (1, 1));
        assert_eq!(geometry(4), (1, 4));
        assert_eq!(geometry(8), (2, 4));
        assert_eq!(geometry(32), (8, 4));
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn odd_geometry_panics() {
        let _ = geometry(6);
    }

    #[test]
    fn host_build_id_is_json_safe_and_versioned() {
        let id = host_build_id();
        assert!(id.ends_with(&format!("/v{}", env!("CARGO_PKG_VERSION"))));
        assert!(
            !id.contains('"') && !id.contains('\\'),
            "must embed safely in a JSON string: {id:?}"
        );
        assert_eq!(
            stamp_host("{\"bench\":\"uts\"}", "ci-runner/v0.1.0"),
            "{\"host\":\"ci-runner/v0.1.0\",\"bench\":\"uts\"}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn parallel_map_is_reexported_from_pxl_sim() {
        // The shared pool must stay reachable under the harness's old path.
        let jobs: Vec<_> = (0..4usize).map(|i| move || i * i).collect();
        assert_eq!(parallel_map(jobs), vec![0, 1, 4, 9]);
    }

    #[test]
    fn small_flex_run_validates() {
        let b = bench("queens", Scale::Tiny);
        let out = run_flex(b.as_ref(), 4, None);
        assert!(out.whole > out.kernel, "init time must be charged");
        assert_eq!(out.engine, "flex");
    }

    #[test]
    fn small_cross_engine_consistency() {
        let b = bench("uts", Scale::Tiny);
        let f = run_flex(b.as_ref(), 2, None);
        let c = run_cpu(b.as_ref(), 2);
        let l = run_lite(b.as_ref(), 2, None).unwrap();
        // All validated against the same golden internally; engines differ
        // only in timing.
        assert!(f.kernel > Time::ZERO && c.kernel > Time::ZERO && l.kernel > Time::ZERO);
    }

    #[test]
    fn zedboard_paths_run() {
        let b = bench("stencil2d", Scale::Tiny);
        let accel = run_flex_zedboard(b.as_ref(), 4);
        let cpu = run_cpu_zedboard(b.as_ref());
        assert!(accel.kernel > Time::ZERO);
        assert!(cpu.kernel > Time::ZERO);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bench"],
            &[vec!["1".into(), "x".into()], vec!["22".into(), "yy".into()]],
        );
        assert!(t.contains("| a  | bench |"));
        assert!(t.lines().count() == 4);
    }
}
