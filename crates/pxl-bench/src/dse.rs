//! Bridges the benchmark harness into the design-space explorer: a
//! [`pxl_dse::Evaluate`] implementation that simulates one [`Candidate`] at a
//! chosen fidelity and reports the [`Measurement`] tuple the Pareto front is
//! built from (runtime, energy, tile resources).
//!
//! Fidelity maps to input scale: `Fidelity::Rung(_)` runs the benchmark at
//! the (cheap) rung scale so successive halving can triage candidates before
//! spending full-size simulations on them.
//!
//! Each evaluation is phrased as a [`RunSpec`] and executed through
//! [`pxl_flow::measure`] — the same canonical request path the experiment
//! drivers and the `pxl-serve` job server use — so the explorer's cache
//! keys are the spec's [`RunSpec::canonical`] identity plus the fidelity
//! label, and a cached DSE measurement is interchangeable with a served
//! one.

use pxl_apps::Scale;
use pxl_dse::{Candidate, Evaluate, Fidelity, Measurement};
use pxl_flow::{FlowError, RunError, RunSpec};

/// Evaluates design points by running the named benchmark through the
/// canonical [`RunSpec`] execution path.
///
/// The evaluator is stateless and `Sync`: the explorer calls it from the
/// shared worker pool, one engine instance per evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BenchEvaluator {
    /// Input scale for `Fidelity::Full` evaluations.
    pub full: Scale,
    /// Input scale for `Fidelity::Rung(_)` triage evaluations.
    pub rung: Scale,
}

impl BenchEvaluator {
    /// Evaluator running full-fidelity points at `full` and successive-halving
    /// rungs at `rung`.
    pub fn new(full: Scale, rung: Scale) -> Self {
        Self { full, rung }
    }

    fn scale_for(&self, fidelity: Fidelity) -> Scale {
        match fidelity {
            Fidelity::Rung(_) => self.rung,
            Fidelity::Full => self.full,
        }
    }

    /// The [`RunSpec`] one evaluation of `candidate` at `fidelity` executes.
    pub fn spec_for(&self, candidate: &Candidate, fidelity: Fidelity) -> RunSpec {
        RunSpec::new(
            candidate.bench.clone(),
            self.scale_for(fidelity),
            candidate.point.clone(),
        )
    }
}

impl Evaluate for BenchEvaluator {
    fn evaluate(&self, candidate: &Candidate, fidelity: Fidelity) -> Result<Measurement, String> {
        let spec = self.spec_for(candidate, fidelity);
        pxl_flow::measure(&spec, candidate.resources.as_ref()).map_err(|e| match e {
            // Keep the harness's historical message for the (upstream-pruned)
            // missing-Lite case.
            RunError::Build(FlowError::NoLiteVariant(name)) => {
                format!("{name} has no LiteArch mapping")
            }
            other => other.to_string(),
        })
    }

    fn context_tag(&self) -> String {
        format!(
            "scale={} rung_scale={}",
            self.full.label(),
            self.rung.label()
        )
    }

    fn cache_key(&self, candidate: &Candidate, fidelity: Fidelity) -> String {
        // The spec's canonical string already pins the scale actually run,
        // so the key needs only the fidelity label on top of it.
        format!(
            "{} fidelity={}",
            self.spec_for(candidate, fidelity).canonical(),
            fidelity.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_dse::{DesignPoint, Explorer, PointArch, SearchSpace};

    #[test]
    fn evaluates_a_flex_point_end_to_end() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let space = SearchSpace::new()
            .benchmarks(["queens"])
            .archs([PointArch::Flex])
            .tiles(pxl_dse::Axis::fixed(1))
            .pes_per_tile(pxl_dse::Axis::fixed(4));
        let partition = space.partition();
        assert_eq!(partition.feasible.len(), 1);
        let m = eval
            .evaluate(&partition.feasible[0], Fidelity::Full)
            .expect("queens on flex 1x4 should simulate");
        assert!(m.kernel_ps > 0 && m.whole_ps > m.kernel_ps);
        assert!(m.energy_j > 0.0);
        assert!(m.lut > 0 && m.bram18 > 0);
    }

    #[test]
    fn cpu_points_measure_zero_fpga_resources() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let candidate = Candidate {
            bench: "queens".to_owned(),
            point: DesignPoint::cpu(4),
            resources: None,
        };
        let m = eval
            .evaluate(&candidate, Fidelity::Full)
            .expect("queens on 4 cores should simulate");
        assert_eq!((m.lut, m.bram18), (0, 0));
        assert!(m.energy_j > 0.0);
    }

    #[test]
    fn rung_fidelity_uses_the_cheaper_scale() {
        // With rung == full the two fidelities must agree; the context tag
        // records both scales so cached results never leak across setups.
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let candidate = Candidate {
            bench: "queens".to_owned(),
            point: DesignPoint::cpu(2),
            resources: None,
        };
        let full = eval.evaluate(&candidate, Fidelity::Full).unwrap();
        let rung = eval.evaluate(&candidate, Fidelity::Rung(0)).unwrap();
        assert_eq!(full, rung);
        assert_eq!(eval.context_tag(), "scale=tiny rung_scale=tiny");
    }

    #[test]
    fn cache_keys_are_canonical_run_specs() {
        let eval = BenchEvaluator::new(Scale::Small, Scale::Tiny);
        let candidate = Candidate {
            bench: "uts".to_owned(),
            point: DesignPoint::accel(PointArch::Flex, 2, 4),
            resources: None,
        };
        assert_eq!(
            eval.cache_key(&candidate, Fidelity::Full),
            "bench=uts scale=small arch=flex tiles=2 pes=4 cache_kb=32 queue=1024 \
             pstore=8192 fidelity=full"
        );
        // The rung runs a different scale AND carries a different label, so
        // rung results can never shadow full ones.
        assert_eq!(
            eval.cache_key(&candidate, Fidelity::Rung(0)),
            "bench=uts scale=tiny arch=flex tiles=2 pes=4 cache_kb=32 queue=1024 \
             pstore=8192 fidelity=rung0"
        );
    }

    #[test]
    fn explorer_builds_a_front_from_real_simulations() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let space = SearchSpace::new()
            .benchmarks(["uts"])
            .archs([PointArch::Flex])
            .tiles(pxl_dse::Axis::list([1, 2]))
            .pes_per_tile(pxl_dse::Axis::fixed(4));
        let outcome = Explorer::new(&eval).explore(&space);
        assert!(outcome.failed.is_empty(), "failures: {:?}", outcome.failed);
        assert_eq!(outcome.evaluated.len(), 2);
        let front = outcome.front_for("uts").expect("front exists");
        assert!(!front.points.is_empty());
        assert!(front.knee().is_some());
    }
}
