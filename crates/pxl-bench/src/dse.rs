//! Bridges the benchmark harness into the design-space explorer: a
//! [`pxl_dse::Evaluate`] implementation that simulates one [`Candidate`] at a
//! chosen fidelity and reports the [`Measurement`] tuple the Pareto front is
//! built from (runtime, energy, tile resources).
//!
//! Fidelity maps to input scale: `Fidelity::Rung(_)` runs the benchmark at
//! the (cheap) rung scale so successive halving can triage candidates before
//! spending full-size simulations on them.

use pxl_apps::{by_name, Scale};
use pxl_cost::EnergyModel;
use pxl_dse::{Candidate, Evaluate, Fidelity, Measurement, PointArch};
use pxl_flow::SimulationBuilder;

use crate::try_run_on;

/// Evaluates design points by running the named benchmark on a freshly built
/// engine via [`SimulationBuilder::from_point`].
///
/// The evaluator is stateless and `Sync`: the explorer calls it from the
/// shared worker pool, one engine instance per evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BenchEvaluator {
    /// Input scale for `Fidelity::Full` evaluations.
    pub full: Scale,
    /// Input scale for `Fidelity::Rung(_)` triage evaluations.
    pub rung: Scale,
}

impl BenchEvaluator {
    /// Evaluator running full-fidelity points at `full` and successive-halving
    /// rungs at `rung`.
    pub fn new(full: Scale, rung: Scale) -> Self {
        Self { full, rung }
    }

    fn scale_for(&self, fidelity: Fidelity) -> Scale {
        match fidelity {
            Fidelity::Rung(_) => self.rung,
            Fidelity::Full => self.full,
        }
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

impl Evaluate for BenchEvaluator {
    fn evaluate(&self, candidate: &Candidate, fidelity: Fidelity) -> Result<Measurement, String> {
        let scale = self.scale_for(fidelity);
        let bench = by_name(&candidate.bench, scale)
            .ok_or_else(|| format!("unknown benchmark {:?}", candidate.bench))?;
        let mut engine = SimulationBuilder::from_point(&candidate.point, bench.profile())
            .build()
            .map_err(|e| e.to_string())?;
        let out = try_run_on(
            engine.as_mut(),
            bench.as_ref(),
            candidate.point.arch.label(),
        )?
        .ok_or_else(|| {
            format!("{} has no LiteArch mapping", candidate.bench) // pruned upstream for known benches
        })?;
        let model = EnergyModel::default();
        let energy_j = match candidate.point.arch {
            PointArch::Cpu => model.cpu_energy(&out.metrics, out.kernel, out.units),
            PointArch::Flex | PointArch::Lite | PointArch::Central => model.accel_energy_for(
                &out.metrics,
                out.kernel,
                out.units,
                candidate.point.arch == PointArch::Lite,
            ),
        }
        .total_j();
        let (lut, bram18) = match &candidate.resources {
            Some(r) => {
                let tiles = candidate.point.tiles.max(1) as u64;
                (
                    u64::from(r.tile.lut) * tiles,
                    u64::from(r.tile.bram18) * tiles,
                )
            }
            None => (0, 0),
        };
        Ok(Measurement {
            kernel_ps: out.kernel.as_ps(),
            whole_ps: out.whole.as_ps(),
            energy_j,
            lut,
            bram18,
        })
    }

    fn context_tag(&self) -> String {
        format!(
            "scale={} rung_scale={}",
            scale_label(self.full),
            scale_label(self.rung)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_dse::{DesignPoint, Explorer, SearchSpace};

    #[test]
    fn evaluates_a_flex_point_end_to_end() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let space = SearchSpace::new()
            .benchmarks(["queens"])
            .archs([PointArch::Flex])
            .tiles(pxl_dse::Axis::fixed(1))
            .pes_per_tile(pxl_dse::Axis::fixed(4));
        let partition = space.partition();
        assert_eq!(partition.feasible.len(), 1);
        let m = eval
            .evaluate(&partition.feasible[0], Fidelity::Full)
            .expect("queens on flex 1x4 should simulate");
        assert!(m.kernel_ps > 0 && m.whole_ps > m.kernel_ps);
        assert!(m.energy_j > 0.0);
        assert!(m.lut > 0 && m.bram18 > 0);
    }

    #[test]
    fn cpu_points_measure_zero_fpga_resources() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let candidate = Candidate {
            bench: "queens".to_owned(),
            point: DesignPoint::cpu(4),
            resources: None,
        };
        let m = eval
            .evaluate(&candidate, Fidelity::Full)
            .expect("queens on 4 cores should simulate");
        assert_eq!((m.lut, m.bram18), (0, 0));
        assert!(m.energy_j > 0.0);
    }

    #[test]
    fn rung_fidelity_uses_the_cheaper_scale() {
        // With rung == full the two fidelities must agree; the context tag
        // records both scales so cached results never leak across setups.
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let candidate = Candidate {
            bench: "queens".to_owned(),
            point: DesignPoint::cpu(2),
            resources: None,
        };
        let full = eval.evaluate(&candidate, Fidelity::Full).unwrap();
        let rung = eval.evaluate(&candidate, Fidelity::Rung(0)).unwrap();
        assert_eq!(full, rung);
        assert_eq!(eval.context_tag(), "scale=tiny rung_scale=tiny");
    }

    #[test]
    fn explorer_builds_a_front_from_real_simulations() {
        let eval = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
        let space = SearchSpace::new()
            .benchmarks(["uts"])
            .archs([PointArch::Flex])
            .tiles(pxl_dse::Axis::list([1, 2]))
            .pes_per_tile(pxl_dse::Axis::fixed(4));
        let outcome = Explorer::new(&eval).explore(&space);
        assert!(outcome.failed.is_empty(), "failures: {:?}", outcome.failed);
        assert_eq!(outcome.evaluated.len(), 2);
        let front = outcome.front_for("uts").expect("front exists");
        assert!(!front.points.is_empty());
        assert!(front.knee().is_some());
    }
}
