//! One function per table/figure of the paper's evaluation.
//!
//! Each function renders a markdown fragment; the `all` binary concatenates
//! them into `EXPERIMENTS.md`-ready output. The expensive scalability sweep
//! ([`run_scaling`]) is shared by Table IV, Fig. 7 and Fig. 8.

use std::collections::BTreeMap;

use pxl_apps::{suite, Scale};
use pxl_arch::ArchKind;
use pxl_cost::resources::{tile_resources, FpgaDevice};
use pxl_cost::EnergyModel;
use pxl_sim::PlatformConfig;

use crate::{
    bench, geomean, parallel_map, render_table, run_cpu, run_cpu_zedboard, run_flex,
    run_flex_zedboard, run_lite, RunOutcome, ALL_BENCHES, ZEDBOARD_BENCHES,
};

/// Core counts of the CPU sweep (Table IV columns).
pub const CPU_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// PE counts of the accelerator sweep (Table IV columns).
pub const PE_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// All runs of one benchmark in the scalability sweep.
#[derive(Debug)]
pub struct BenchScaling {
    /// CPU runs at [`CPU_SWEEP`] core counts.
    pub cpu: Vec<RunOutcome>,
    /// FlexArch runs at [`PE_SWEEP`] PE counts.
    pub flex: Vec<RunOutcome>,
    /// LiteArch runs at [`PE_SWEEP`] PE counts (empty when no Lite variant).
    pub lite: Vec<RunOutcome>,
}

/// Results of the full sweep, keyed by benchmark name (Table II order is
/// reconstructed from [`ALL_BENCHES`]).
pub type ScalingResults = BTreeMap<String, BenchScaling>;

/// Runs the whole scalability sweep (CPU 1-8 cores, Flex/Lite 1-32 PEs for
/// all ten benchmarks) with host-side parallelism.
pub fn run_scaling(scale: Scale) -> ScalingResults {
    #[derive(Clone, Copy)]
    enum Job {
        Cpu(usize),
        Flex(usize),
        Lite(usize),
    }
    let mut specs = Vec::new();
    for name in ALL_BENCHES {
        for c in CPU_SWEEP {
            specs.push((name, Job::Cpu(c)));
        }
        for p in PE_SWEEP {
            specs.push((name, Job::Flex(p)));
            specs.push((name, Job::Lite(p)));
        }
    }
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(name, job)| {
            move || -> Option<RunOutcome> {
                let b = bench(name, scale);
                match job {
                    Job::Cpu(c) => Some(run_cpu(b.as_ref(), c)),
                    Job::Flex(p) => Some(run_flex(b.as_ref(), p, None)),
                    Job::Lite(p) => run_lite(b.as_ref(), p, None),
                }
            }
        })
        .collect();
    let outcomes = parallel_map(jobs);
    let mut results: ScalingResults = ScalingResults::new();
    for ((name, job), outcome) in specs.into_iter().zip(outcomes) {
        let entry = results
            .entry(name.to_owned())
            .or_insert_with(|| BenchScaling {
                cpu: Vec::new(),
                flex: Vec::new(),
                lite: Vec::new(),
            });
        let Some(out) = outcome else { continue };
        match job {
            Job::Cpu(_) => entry.cpu.push(out),
            Job::Flex(_) => entry.flex.push(out),
            Job::Lite(_) => entry.lite.push(out),
        }
    }
    results
}

/// Flattens sweep results into one outcome list in Table II benchmark
/// order (CPU runs first, then Flex, then Lite, each by ascending units) —
/// the record stream `bench_results.jsonl` is built from.
pub fn all_outcomes(results: &ScalingResults) -> Vec<RunOutcome> {
    ALL_BENCHES
        .iter()
        .filter_map(|name| results.get(*name))
        .flat_map(|b| b.cpu.iter().chain(&b.flex).chain(&b.lite))
        .cloned()
        .collect()
}

/// Table I: tile architecture comparison.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = [
        ("Data-Parallel", 0),
        ("Fork-Join", 1),
        ("General Task-Parallel", 2),
    ]
    .iter()
    .map(|&(label, idx)| {
        let yes_no = |arch: ArchKind| {
            let f = arch.features();
            let v = [f.0, f.1, f.2][idx];
            if v { "Yes" } else { "No" }.to_owned()
        };
        vec![
            label.to_owned(),
            yes_no(ArchKind::Flex),
            yes_no(ArchKind::Lite),
        ]
    })
    .chain(std::iter::once(vec![
        "Task Scheduling".to_owned(),
        ArchKind::Flex.features().3.to_owned(),
        ArchKind::Lite.features().3.to_owned(),
    ]))
    .collect();
    format!(
        "## Table I — tile architectures\n\n{}",
        render_table(&["Pattern", "FlexArch", "LiteArch"], &rows)
    )
}

/// Table II: benchmark characteristics.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = suite(Scale::Paper)
        .iter()
        .map(|b| {
            let m = b.meta();
            vec![
                m.name.to_owned(),
                m.source.to_owned(),
                m.approach.to_owned(),
                if m.recursive_nested { "Yes" } else { "No" }.to_owned(),
                if m.data_dependent { "Yes" } else { "No" }.to_owned(),
                m.mem_pattern.to_owned(),
                m.mem_intensity.to_owned(),
            ]
        })
        .collect();
    format!(
        "## Table II — benchmarks\n\n{}",
        render_table(&["Name", "From", "PA", "R/N", "DP", "MP", "MI"], &rows)
    )
}

/// Table III: platform configuration.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = PlatformConfig::micro2018()
        .table3_rows()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    format!(
        "## Table III — platform configuration\n\n{}",
        render_table(&["Component", "Parameters"], &rows)
    )
}

fn speedups(base: &RunOutcome, runs: &[RunOutcome]) -> Vec<f64> {
    runs.iter().map(|r| base.seconds() / r.seconds()).collect()
}

/// Table IV: benchmark scalability (speedup of n units over 1 unit).
pub fn table4(results: &ScalingResults) -> String {
    let mut rows = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); CPU_SWEEP.len() + 2 * PE_SWEEP.len()];
    for name in ALL_BENCHES {
        let r = &results[name];
        let mut row = vec![name.to_owned()];
        let mut col = 0;
        let cpu_s = speedups(&r.cpu[0], &r.cpu);
        for s in &cpu_s {
            row.push(format!("{s:.2}"));
            geo[col].push(*s);
            col += 1;
        }
        let flex_s = speedups(&r.flex[0], &r.flex);
        for s in &flex_s {
            row.push(format!("{s:.2}"));
            geo[col].push(*s);
            col += 1;
        }
        if r.lite.is_empty() {
            row.extend(PE_SWEEP.iter().map(|_| "N/A".to_owned()));
        } else {
            let lite_s = speedups(&r.lite[0], &r.lite);
            for s in &lite_s {
                row.push(format!("{s:.2}"));
                geo[col].push(*s);
                col += 1;
            }
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_owned()];
    for col in geo {
        geo_row.push(format!("{:.2}", geomean(col)));
    }
    rows.push(geo_row);
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    headers.extend(CPU_SWEEP.iter().map(|c| format!("{c}-C")));
    headers.extend(PE_SWEEP.iter().map(|p| format!("F{p}-PE")));
    headers.extend(PE_SWEEP.iter().map(|p| format!("L{p}-PE")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Table IV — benchmark scalability (speedup over one core / one PE)\n\n{}",
        render_table(&headers_ref, &rows)
    )
}

/// Fig. 7: performance normalized to a single out-of-order core, with the
/// eight-core software line.
pub fn fig7(results: &ScalingResults) -> String {
    let mut rows = Vec::new();
    let mut flex32_norm = Vec::new();
    let mut flex32_over_8c = Vec::new();
    for name in ALL_BENCHES {
        let r = &results[name];
        let c1 = r.cpu[0].seconds();
        let c8 = r.cpu.last().expect("cpu sweep nonempty").seconds();
        let mut row = vec![name.to_owned()];
        for out in &r.flex {
            row.push(format!("{:.2}", c1 / out.seconds()));
        }
        if r.lite.is_empty() {
            row.push("N/A".to_owned());
        } else {
            let l32 = r.lite.last().expect("lite sweep nonempty");
            row.push(format!("{:.2}", c1 / l32.seconds()));
        }
        row.push(format!("{:.2}", c1 / c8));
        let f32_ = r.flex.last().expect("flex sweep nonempty").seconds();
        flex32_norm.push(c1 / f32_);
        flex32_over_8c.push(c8 / f32_);
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    headers.extend(PE_SWEEP.iter().map(|p| format!("Flex {p}PE")));
    headers.push("Lite 32PE".into());
    headers.push("8-core line".into());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Fig. 7 — performance normalized to one OOO core\n\n{}\nFlexArch 32 PE vs one core: geomean {:.1}x (max {:.1}x); vs eight cores: geomean {:.1}x (max {:.1}x)\n",
        render_table(&headers_ref, &rows),
        geomean(flex32_norm.iter().copied()),
        flex32_norm.iter().cloned().fold(0.0, f64::max),
        geomean(flex32_over_8c.iter().copied()),
        flex32_over_8c.iter().cloned().fold(0.0, f64::max),
    )
}

/// Fig. 8: performance vs energy efficiency of the 16-PE accelerators,
/// normalized to the eight-core CPU.
pub fn fig8(results: &ScalingResults) -> String {
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    let mut flex_eff = Vec::new();
    let mut lite_eff = Vec::new();
    for name in ALL_BENCHES {
        let r = &results[name];
        let c8 = &r.cpu[CPU_SWEEP.len() - 1];
        let cpu_energy = model.cpu_energy(&c8.metrics, c8.kernel, 8).total_j();
        let f16 = r
            .flex
            .iter()
            .find(|o| o.units == 16)
            .expect("16-PE flex run present");
        let fe = model
            .accel_energy_for(&f16.metrics, f16.kernel, 16, false)
            .total_j();
        let f_perf = c8.seconds() / f16.seconds();
        let f_effx = cpu_energy / fe;
        flex_eff.push(f_effx);
        rows.push(vec![
            name.to_owned(),
            "Flex".to_owned(),
            format!("{f_perf:.2}"),
            format!("{f_effx:.1}"),
            format!(
                "{}",
                if f_perf * f_effx > 1.0 {
                    "below"
                } else {
                    "above"
                }
            ),
        ]);
        if let Some(l16) = r.lite.iter().find(|o| o.units == 16) {
            let le = model
                .accel_energy_for(&l16.metrics, l16.kernel, 16, true)
                .total_j();
            let l_perf = c8.seconds() / l16.seconds();
            let l_effx = cpu_energy / le;
            lite_eff.push(l_effx);
            rows.push(vec![
                name.to_owned(),
                "Lite".to_owned(),
                format!("{l_perf:.2}"),
                format!("{l_effx:.1}"),
                format!(
                    "{}",
                    if l_perf * l_effx > 1.0 {
                        "below"
                    } else {
                        "above"
                    }
                ),
            ]);
        }
    }
    format!(
        "## Fig. 8 — normalized performance and energy efficiency (16 PEs vs 8 cores)\n\n{}\nGeomean energy efficiency vs 8 OOO cores: FlexArch {:.1}x, LiteArch {:.1}x\n",
        render_table(
            &["Benchmark", "Arch", "Norm. perf", "Norm. energy eff", "Iso-power"],
            &rows
        ),
        geomean(flex_eff),
        geomean(lite_eff),
    )
}

/// Fig. 6: Zedboard prototype — accelerators vs two-core parallel software.
pub fn fig6(scale: Scale) -> String {
    let jobs: Vec<_> = ZEDBOARD_BENCHES
        .iter()
        .flat_map(|&name| {
            [
                Box::new(move || run_cpu_zedboard(bench(name, scale).as_ref()))
                    as Box<dyn FnOnce() -> RunOutcome + Send>,
                Box::new(move || run_flex_zedboard(bench(name, scale).as_ref(), 4)),
                Box::new(move || run_flex_zedboard(bench(name, scale).as_ref(), 8)),
            ]
        })
        .collect();
    let outs = parallel_map(jobs);
    let mut rows = Vec::new();
    let (mut s4all, mut s8all) = (Vec::new(), Vec::new());
    for (i, &name) in ZEDBOARD_BENCHES.iter().enumerate() {
        let cpu = &outs[3 * i];
        let a4 = &outs[3 * i + 1];
        let a8 = &outs[3 * i + 2];
        let s4 = cpu.seconds() / a4.seconds();
        let s8 = cpu.seconds() / a8.seconds();
        s4all.push(s4);
        s8all.push(s8);
        rows.push(vec![
            name.to_owned(),
            format!("{s4:.2}"),
            format!("{s8:.2}"),
        ]);
    }
    rows.push(vec![
        "geomean".to_owned(),
        format!("{:.2}", geomean(s4all)),
        format!("{:.2}", geomean(s8all)),
    ]);
    format!(
        "## Fig. 6 — Zedboard prototype: accelerator speedup over 2-core parallel software\n\n(knapsack and bfsqueue rely on fine-grained coherent sharing and were not\nimplemented on the prototype, as in the paper.)\n\n{}",
        render_table(&["Benchmark", "4 PEs", "8 PEs"], &rows)
    )
}

/// Table V: per-PE and per-tile resource utilization.
pub fn table5() -> String {
    let mut rows = Vec::new();
    for name in ALL_BENCHES {
        let flex = tile_resources(name, true, 4, 32 * 1024).expect("known benchmark");
        let lite = tile_resources(name, false, 4, 32 * 1024);
        let fmt4 = |r: pxl_cost::ResourceVec| {
            vec![
                r.lut.to_string(),
                r.ff.to_string(),
                r.dsp.to_string(),
                r.bram18.to_string(),
            ]
        };
        let mut row = vec![name.to_owned()];
        row.extend(fmt4(flex.pe));
        row.extend(fmt4(flex.tile));
        match lite {
            Some(l) => {
                row.extend(fmt4(l.pe));
                row.extend(fmt4(l.tile));
            }
            None => row.extend(std::iter::repeat_n("N/A".to_owned(), 8)),
        }
        rows.push(row);
    }
    let headers = [
        "Benchmark",
        "F-PE LUT",
        "FF",
        "DSP",
        "RAM",
        "F-Tile LUT",
        "FF",
        "DSP",
        "RAM",
        "L-PE LUT",
        "FF",
        "DSP",
        "RAM",
        "L-Tile LUT",
        "FF",
        "DSP",
        "RAM",
    ];
    // Device fitting summary (Section V-E).
    let artix = FpgaDevice::artix_7a75t();
    let kintex = FpgaDevice::kintex_7k160t();
    let fits = |flex: bool| {
        ALL_BENCHES
            .iter()
            .filter_map(|n| tile_resources(n, flex, 4, 32 * 1024))
            .map(|t| {
                (
                    artix.max_tiles(&t.tile) as f64,
                    kintex.max_tiles(&t.tile) as f64,
                )
            })
            .collect::<Vec<_>>()
    };
    let flex_fits = fits(true);
    let lite_fits = fits(false);
    let avg = |v: &[(f64, f64)], which: fn(&(f64, f64)) -> f64| {
        v.iter().map(which).sum::<f64>() / v.len() as f64
    };
    format!(
        "## Table V — resource utilization (4-PE tiles, 32 KB cache)\n\n{}\nDevice fitting: Artix XC7A75T fits on average {:.1} FlexArch / {:.1} LiteArch tiles;\nKintex XC7K160T fits {:.1} / {:.1} (capped at the 8-tile architecture).\n",
        render_table(&headers, &rows),
        avg(&flex_fits, |t| t.0),
        avg(&lite_fits, |t| t.0),
        avg(&flex_fits, |t| t.1),
        avg(&lite_fits, |t| t.1),
    )
}

/// Fig. 9: FlexArch 16-PE performance while sweeping the tile cache from
/// 4 KB to 32 KB, normalized to the 32 KB configuration.
pub fn fig9(scale: Scale) -> String {
    const SIZES: [usize; 4] = [4, 8, 16, 32];
    let jobs: Vec<_> = ALL_BENCHES
        .iter()
        .flat_map(|&name| {
            SIZES.map(|kb| {
                Box::new(move || run_flex(bench(name, scale).as_ref(), 16, Some(kb * 1024)))
                    as Box<dyn FnOnce() -> RunOutcome + Send>
            })
        })
        .collect();
    let outs = parallel_map(jobs);
    let mut rows = Vec::new();
    for (i, &name) in ALL_BENCHES.iter().enumerate() {
        let base = outs[4 * i + 3].seconds(); // 32 KB
        let mut row = vec![name.to_owned()];
        for j in 0..4 {
            row.push(format!("{:.2}", base / outs[4 * i + j].seconds()));
        }
        rows.push(row);
    }
    format!(
        "## Fig. 9 — FlexArch 16-PE performance vs tile cache size (normalized to 32 KB)\n\n{}",
        render_table(&["Benchmark", "4KB", "8KB", "16KB", "32KB"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("Work-Stealing"));
        let t2 = table2();
        assert!(t2.contains("MachSuite") && t2.contains("cilksort"));
        let t3 = table3();
        assert!(t3.contains("MOESI"));
        let t5 = table5();
        assert!(t5.contains("5961"), "cilksort flex PE LUTs present");
        assert!(t5.contains("Artix"));
    }

    #[test]
    fn tiny_scaling_sweep_and_reports() {
        // A miniature end-to-end of the full pipeline at Tiny scale.
        let results = run_scaling(Scale::Tiny);
        assert_eq!(results.len(), 10);
        let t4 = table4(&results);
        assert!(t4.contains("geomean"));
        assert!(t4.contains("N/A"), "cilksort Lite column");
        let f7 = fig7(&results);
        assert!(f7.contains("8-core line"));
        let f8 = fig8(&results);
        assert!(f8.contains("energy efficiency"));
    }

    #[test]
    fn fig9_tiny() {
        let s = fig9(Scale::Tiny);
        assert!(s.contains("4KB"));
        assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 12);
    }

    #[test]
    fn fig6_tiny() {
        let s = fig6(Scale::Tiny);
        assert!(s.contains("geomean"));
        let table_rows: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(
            !table_rows.iter().any(|l| l.contains("knapsack")),
            "knapsack was not implemented on the prototype"
        );
        assert_eq!(table_rows.len(), ZEDBOARD_BENCHES.len() + 3);
    }
}
