//! Task-graph reconstruction and critical-path (span) analysis.
//!
//! Engines stamp every task instance with a run-unique id and emit that id
//! in `TaskDispatch`, `TaskComplete`, `Spawn` (parent → child) and
//! `PStoreJoin` (argument sender → joined successor) events. Replaying the
//! time-ordered event stream therefore recovers the causal DAG without any
//! engine cooperation beyond the trace itself.
//!
//! # The span model
//!
//! The span (critical-path length) is computed with an earliest-start-time
//! DP over dependency *chains*. For every node `n` define `est[n]` as the
//! length of the longest chain of dependent work that must precede `n`'s
//! start. The root has `est = 0`. A dependency edge observed at simulated
//! time `t` whose source `s` was dispatched at `dispatch[s]` contributes
//!
//! ```text
//! est[s] + (t − dispatch[s])
//! ```
//!
//! to its target — the source had to run `(t − dispatch[s])` of its own
//! execution before the spawn/argument-send happened, on top of the chain
//! that gated the source itself. Then `span = max over n of est[n] +
//! busy[n]`.
//!
//! This formulation structurally guarantees `span ≤ makespan`: by
//! induction `est[n]` never exceeds the *actual* dispatch time of `n`
//! (each edge contribution is at most the event's own timestamp, and
//! events gating `n` precede its dispatch), so `est[n] + busy[n]` is at
//! most `n`'s completion time. The naive `finish[n] = busy[n] + max
//! finish[pred]` does not have this property, because a parent keeps
//! executing after it spawns — its full `busy` overlaps the child's.

use std::collections::BTreeMap;

use pxl_sim::{TraceEvent, TraceRecord};

/// How many critical-path steps and top tasks the summary retains.
pub const TOP_K: usize = 10;

/// One reconstructed task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskNode {
    /// Run-unique instance id.
    pub id: u64,
    /// Task-type id from the dispatch event.
    pub ty: u8,
    /// Unit (PE/core) that executed it.
    pub unit: u32,
    /// First dispatch time, if the task ever ran.
    pub dispatch_ps: Option<u64>,
    /// Modeled execution time, summed over re-executions.
    pub busy_ps: u64,
    /// Longest dependency chain that must precede this task's start.
    pub est_ps: u64,
    /// The predecessor whose edge determined `est_ps` (critical parent).
    pub pred: Option<u64>,
    /// Time the task became ready: its spawn, or its last argument join.
    pub ready_ps: Option<u64>,
}

/// One step of the critical path, root-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalStep {
    /// Task instance id.
    pub id: u64,
    /// Task-type id.
    pub ty: u8,
    /// Unit that executed it.
    pub unit: u32,
    /// Chain length up to this task's start.
    pub est_ps: u64,
    /// Its own execution time.
    pub busy_ps: u64,
}

/// The task-graph analysis of one run.
#[derive(Debug, Clone, Default)]
pub struct GraphSummary {
    /// Every reconstructed task, keyed by instance id (deterministic
    /// iteration order).
    pub nodes: BTreeMap<u64, TaskNode>,
    /// Number of `Spawn` edges observed.
    pub spawn_edges: u64,
    /// Number of `PStoreJoin` edges observed.
    pub join_edges: u64,
    /// Total work: Σ `busy_ps` over every `TaskComplete` event.
    pub work_ps: u64,
    /// Critical-path length.
    pub span_ps: u64,
    /// The critical path itself, root-first, truncated to [`TOP_K`] steps
    /// around the end of the chain (the full length is
    /// [`GraphSummary::critical_len`]).
    pub critical_path: Vec<CriticalStep>,
    /// Number of tasks on the full critical path.
    pub critical_len: usize,
    /// The [`TOP_K`] tasks by execution time, heaviest first.
    pub top_tasks: Vec<CriticalStep>,
}

impl GraphSummary {
    /// Number of task instances that were dispatched at least once.
    pub fn dispatched(&self) -> u64 {
        self.nodes
            .values()
            .filter(|n| n.dispatch_ps.is_some())
            .count() as u64
    }
}

fn node(nodes: &mut BTreeMap<u64, TaskNode>, id: u64) -> &mut TaskNode {
    nodes.entry(id).or_insert(TaskNode {
        id,
        ty: 0,
        unit: 0,
        dispatch_ps: None,
        busy_ps: 0,
        est_ps: 0,
        pred: None,
        ready_ps: None,
    })
}

/// Chain length through an edge out of `source` observed at `t_ps`, per the
/// module-level model. Unknown sources (id 0, or never dispatched, e.g.
/// host-side argument sends) contribute nothing — an underestimate, which
/// preserves `span ≤ makespan`.
fn edge_contribution(nodes: &BTreeMap<u64, TaskNode>, source: u64, t_ps: u64) -> u64 {
    match nodes.get(&source) {
        Some(s) => match s.dispatch_ps {
            Some(d) => s.est_ps + t_ps.saturating_sub(d),
            None => 0,
        },
        None => 0,
    }
}

fn relax(nodes: &mut BTreeMap<u64, TaskNode>, source: u64, target: u64, t_ps: u64) {
    if target == 0 {
        return;
    }
    let contribution = edge_contribution(nodes, source, t_ps);
    let n = node(nodes, target);
    // Strict comparison keeps the earliest predecessor on ties (records
    // arrive in final trace order), deterministically.
    if contribution > n.est_ps || (n.pred.is_none() && contribution >= n.est_ps) {
        n.est_ps = contribution;
        n.pred = (source != 0).then_some(source);
    }
    n.ready_ps = Some(n.ready_ps.map_or(t_ps, |r| r.max(t_ps)));
}

/// Replays a time-ordered trace into a [`GraphSummary`].
pub fn reconstruct(records: &[TraceRecord]) -> GraphSummary {
    let mut g = GraphSummary::default();
    for r in records {
        let t_ps = r.at.as_ps();
        match r.event {
            TraceEvent::TaskDispatch { unit, ty, task } if task != 0 => {
                let n = node(&mut g.nodes, task);
                if n.dispatch_ps.is_none() {
                    n.dispatch_ps = Some(t_ps);
                    n.unit = unit;
                    n.ty = ty;
                }
            }
            TraceEvent::TaskComplete { busy_ps, task, .. } => {
                g.work_ps += busy_ps;
                if task != 0 {
                    node(&mut g.nodes, task).busy_ps += busy_ps;
                }
            }
            TraceEvent::Spawn { parent, child, .. } => {
                g.spawn_edges += 1;
                relax(&mut g.nodes, parent, child, t_ps);
            }
            TraceEvent::PStoreJoin { task, from, .. } => {
                g.join_edges += 1;
                relax(&mut g.nodes, from, task, t_ps);
            }
            _ => {}
        }
    }

    // Span endpoint: the executed node maximizing est + busy; ties go to
    // the smallest id (BTreeMap order + strict comparison).
    let mut end: Option<u64> = None;
    for n in g.nodes.values() {
        if n.dispatch_ps.is_none() {
            continue;
        }
        let finish = n.est_ps + n.busy_ps;
        if end.is_none() || finish > g.span_ps {
            g.span_ps = finish;
            end = Some(n.id);
        }
    }

    // Walk the critical chain backwards, then present it root-first.
    let mut chain = Vec::new();
    let mut cursor = end;
    while let Some(id) = cursor {
        let Some(n) = g.nodes.get(&id) else { break };
        chain.push(CriticalStep {
            id: n.id,
            ty: n.ty,
            unit: n.unit,
            est_ps: n.est_ps,
            busy_ps: n.busy_ps,
        });
        cursor = n.pred;
        if chain.len() > g.nodes.len() {
            break; // defensive: a malformed trace must not loop forever
        }
    }
    chain.reverse();
    g.critical_len = chain.len();
    if chain.len() > TOP_K {
        // Keep the tail of the chain — the steps closest to the span
        // endpoint are the ones worth optimizing first.
        chain.drain(..chain.len() - TOP_K);
    }
    g.critical_path = chain;

    let mut by_busy: Vec<CriticalStep> = g
        .nodes
        .values()
        .filter(|n| n.dispatch_ps.is_some())
        .map(|n| CriticalStep {
            id: n.id,
            ty: n.ty,
            unit: n.unit,
            est_ps: n.est_ps,
            busy_ps: n.busy_ps,
        })
        .collect();
    by_busy.sort_by(|a, b| b.busy_ps.cmp(&a.busy_ps).then(a.id.cmp(&b.id)));
    by_busy.truncate(TOP_K);
    g.top_tasks = by_busy;

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::{Time, Tracer};

    fn dispatch(t: &mut Tracer, at: u64, unit: u32, task: u64) {
        t.emit(
            Time::from_ps(at),
            TraceEvent::TaskDispatch { unit, ty: 0, task },
        );
    }

    fn complete(t: &mut Tracer, at: u64, unit: u32, busy_ps: u64, task: u64) {
        t.emit(
            Time::from_ps(at),
            TraceEvent::TaskComplete {
                unit,
                ty: 0,
                busy_ps,
                task,
            },
        );
    }

    #[test]
    fn serial_chain_span_equals_work() {
        // Task 1 spawns task 2 at its very end; fully serial.
        let mut t = Tracer::bounded(16);
        dispatch(&mut t, 0, 0, 1);
        t.emit(
            Time::from_ps(100),
            TraceEvent::Spawn {
                unit: 0,
                ty: 0,
                parent: 1,
                child: 2,
            },
        );
        complete(&mut t, 100, 0, 100, 1);
        dispatch(&mut t, 110, 1, 2);
        complete(&mut t, 160, 1, 50, 2);
        t.finish();
        let g = reconstruct(t.records());
        assert_eq!(g.work_ps, 150);
        assert_eq!(g.span_ps, 150);
        assert_eq!(g.critical_len, 2);
        assert_eq!(g.critical_path[0].id, 1);
        assert_eq!(g.critical_path[1].id, 2);
    }

    #[test]
    fn early_spawn_overlaps_parent() {
        // Parent spawns at 10 ps into its 100 ps execution; the child's
        // chain is 10 + 50, the parent's own finish 100 — span is 100.
        let mut t = Tracer::bounded(16);
        dispatch(&mut t, 0, 0, 1);
        t.emit(
            Time::from_ps(10),
            TraceEvent::Spawn {
                unit: 0,
                ty: 0,
                parent: 1,
                child: 2,
            },
        );
        complete(&mut t, 100, 0, 100, 1);
        dispatch(&mut t, 20, 1, 2);
        complete(&mut t, 70, 1, 50, 2);
        t.finish();
        let g = reconstruct(t.records());
        assert_eq!(g.work_ps, 150);
        assert_eq!(g.span_ps, 100, "span must not double-count the overlap");
        assert_eq!(g.critical_path.len(), 1);
        assert_eq!(g.critical_path[0].id, 1);
    }

    #[test]
    fn join_edges_extend_the_chain() {
        // 1 spawns 2 and creates successor 3; 2's argument send at its end
        // releases 3. Chain: 10 (spawn offset) + 50 (task 2) + 25 (task 3).
        let mut t = Tracer::bounded(16);
        dispatch(&mut t, 0, 0, 1);
        t.emit(
            Time::from_ps(10),
            TraceEvent::Spawn {
                unit: 0,
                ty: 0,
                parent: 1,
                child: 2,
            },
        );
        complete(&mut t, 40, 0, 40, 1);
        dispatch(&mut t, 20, 1, 2);
        complete(&mut t, 70, 1, 50, 2);
        t.emit(
            Time::from_ps(70),
            TraceEvent::PStoreJoin {
                tile: 0,
                slot: 0,
                task: 3,
                from: 2,
            },
        );
        dispatch(&mut t, 80, 0, 3);
        complete(&mut t, 105, 0, 25, 3);
        t.finish();
        let g = reconstruct(t.records());
        assert_eq!(g.join_edges, 1);
        assert_eq!(g.span_ps, 10 + 50 + 25);
        let ids: Vec<u64> = g.critical_path.iter().map(|s| s.id).collect();
        assert_eq!(ids, [1, 2, 3]);
    }

    #[test]
    fn top_tasks_rank_by_busy_with_id_tiebreak() {
        let mut t = Tracer::bounded(16);
        for (id, busy) in [(1u64, 30u64), (2, 50), (3, 50), (4, 10)] {
            dispatch(&mut t, 0, 0, id);
            complete(&mut t, busy, 0, busy, id);
        }
        t.finish();
        let g = reconstruct(t.records());
        let ids: Vec<u64> = g.top_tasks.iter().map(|s| s.id).collect();
        assert_eq!(ids, [2, 3, 1, 4]);
    }

    #[test]
    fn unstamped_events_still_count_work() {
        let mut t = Tracer::bounded(4);
        complete(&mut t, 10, 0, 10, 0);
        t.finish();
        let g = reconstruct(t.records());
        assert_eq!(g.work_ps, 10);
        assert!(g.nodes.is_empty(), "id 0 is the 'no task' sentinel");
    }
}
