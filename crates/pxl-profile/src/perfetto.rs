//! Chrome/Perfetto trace export.
//!
//! Renders a trace as the Trace Event Format JSON that
//! <https://ui.perfetto.dev> (and `chrome://tracing`) open directly: each
//! tile becomes a process, each PE/core a thread, every task execution a
//! complete (`"X"`) slice, steals and faults instant (`"i"`) markers, and
//! P-Store occupancy a counter (`"C"`) track.
//!
//! Timestamps in the format are microseconds; simulated time is
//! picoseconds. The conversion inserts a decimal point by integer
//! arithmetic (`ps / 10^6` and a six-digit fraction) instead of floating
//! division, so the output is byte-deterministic.

use pxl_sim::{Timeline, TraceEvent, TraceRecord};

use crate::Layout;

/// Picoseconds → microseconds as a decimal literal, exactly.
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    out.push('{');
    out.push_str(body);
    out.push('}');
}

/// Renders `records` as a complete Perfetto/Chrome `trace.json` document.
/// `label` names the trace in the UI (typically `"bench/engine"`).
///
/// For single-chip layouts each tile is a process; for multi-chip cluster
/// layouts each *chip* is a process and its tiles' PEs become threads
/// named `tile{t}.pe{u}`, so the UI groups the fabric the way the hardware
/// does, with inter-chip `link_xfer` markers pinned to the sending chip.
pub fn to_perfetto_json(records: &[TraceRecord], layout: &Layout, label: &str) -> String {
    render(records, layout, label, None)
}

/// [`to_perfetto_json`] plus the run's telemetry [`Timeline`] rendered as
/// counter (`"C"`) tracks alongside the slices: one `telemetry.{gauge}`
/// track per sampled gauge and one `telemetry.{counter}.rate` track per
/// sampled counter (events per simulated second over the sample's window).
/// An empty timeline produces the exact [`to_perfetto_json`] bytes.
pub fn to_perfetto_json_with_timeline(
    records: &[TraceRecord],
    layout: &Layout,
    label: &str,
    timeline: &Timeline,
) -> String {
    render(records, layout, label, Some(timeline))
}

fn render(
    records: &[TraceRecord],
    layout: &Layout,
    label: &str,
    timeline: Option<&Timeline>,
) -> String {
    let clustered = layout.chips() > 1;
    // Process id of a unit's track: its chip when clustered, else its tile.
    let pid_of = |unit: u32| {
        if clustered {
            layout.chip_of(unit)
        } else {
            layout.tile_of(unit)
        }
    };
    let pid_of_tile = |tile: usize| {
        if clustered {
            layout.chip_of_tile(tile)
        } else {
            tile
        }
    };

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"run\":\"");
    out.push_str(label);
    out.push_str("\"},\"traceEvents\":[");
    let mut first = true;

    if clustered {
        for chip in 0..layout.chips() {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "\"ph\":\"M\",\"pid\":{chip},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"chip{chip}\"}}"
                ),
            );
        }
    } else {
        for tile in 0..layout.tiles() {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "\"ph\":\"M\",\"pid\":{tile},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"tile{tile}\"}}"
                ),
            );
        }
    }
    for unit in 0..layout.units as u32 {
        let pid = pid_of(unit);
        let name = if clustered {
            format!("tile{}.pe{unit}", layout.tile_of(unit))
        } else {
            format!("pe{unit}")
        };
        push_event(
            &mut out,
            &mut first,
            &format!(
                "\"ph\":\"M\",\"pid\":{pid},\"tid\":{unit},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}"
            ),
        );
    }

    for r in records {
        let t_ps = r.at.as_ps();
        match r.event {
            TraceEvent::TaskComplete {
                unit,
                ty,
                busy_ps,
                task,
            } => {
                let tile = pid_of(unit);
                let start = t_ps.saturating_sub(busy_ps);
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"X\",\"pid\":{tile},\"tid\":{unit},\"ts\":{},\"dur\":{},\
                         \"cat\":\"task\",\"name\":\"ty{ty}\",\"args\":{{\"task\":{task}}}",
                        us(start),
                        us(busy_ps),
                    ),
                );
            }
            TraceEvent::StealGrant { thief, victim } => {
                let tile = pid_of(thief);
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"i\",\"s\":\"t\",\"pid\":{tile},\"tid\":{thief},\"ts\":{},\
                         \"cat\":\"steal\",\"name\":\"steal from pe{victim}\"",
                        us(t_ps),
                    ),
                );
            }
            TraceEvent::FaultInjected { spec, unit }
            | TraceEvent::FaultRecovered { spec, unit }
            | TraceEvent::FaultUnrecovered { spec, unit } => {
                let tile = pid_of(unit);
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"i\",\"s\":\"p\",\"pid\":{tile},\"tid\":{unit},\"ts\":{},\
                         \"cat\":\"fault\",\"name\":\"{} spec{spec}\"",
                        us(t_ps),
                        r.event.kind(),
                    ),
                );
            }
            TraceEvent::WatchdogStall { unit, .. } => {
                let tile = pid_of(unit);
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"i\",\"s\":\"g\",\"pid\":{tile},\"tid\":{unit},\"ts\":{},\
                         \"cat\":\"watchdog\",\"name\":\"watchdog.stall\"",
                        us(t_ps),
                    ),
                );
            }
            TraceEvent::DramSaturated { .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\
                         \"cat\":\"mem\",\"name\":\"dram_saturated\"",
                        us(t_ps),
                    ),
                );
            }
            TraceEvent::PStoreAlloc { tile, occupancy }
            | TraceEvent::PStoreDealloc { tile, occupancy } => {
                let pid = pid_of_tile(tile as usize);
                // Clustered runs keep one counter track per tile by naming
                // the counter after the tile inside the chip's process.
                let name = if clustered {
                    format!("pstore.tile{tile}")
                } else {
                    "pstore".to_owned()
                };
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\"name\":\"{name}\",\
                         \"args\":{{\"occupancy\":{occupancy}}}",
                        us(t_ps),
                    ),
                );
            }
            TraceEvent::LinkXfer {
                src_chip,
                dst_chip,
                class,
                wait_ps,
            } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "\"ph\":\"i\",\"s\":\"p\",\"pid\":{src_chip},\"tid\":0,\"ts\":{},\
                         \"cat\":\"link\",\"name\":\"link c{src_chip}-c{dst_chip}\",\
                         \"args\":{{\"class\":{class},\"wait_ps\":{wait_ps}}}",
                        us(t_ps),
                    ),
                );
            }
            _ => {}
        }
    }

    // Telemetry counter tracks ride on the host process (pid 0): the
    // sampler records whole-fabric gauges and registry-wide rates, not
    // per-unit ones, so they get their own tracks next to the slices.
    for sample in timeline.map(Timeline::samples).unwrap_or_default() {
        let ts = us(sample.at.as_ps());
        for (name, value) in &sample.gauges {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"telemetry.{name}\",\
                     \"args\":{{\"value\":{value}}}"
                ),
            );
        }
        for c in &sample.counters {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"telemetry.{}.rate\",\
                     \"args\":{{\"per_sec\":{}}}",
                    c.name, c.rate,
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::{Time, Tracer};

    #[test]
    fn ps_to_us_is_exact() {
        assert_eq!(us(0), "0.000000");
        assert_eq!(us(1), "0.000001");
        assert_eq!(us(1_234_567), "1.234567");
        assert_eq!(us(2_000_000), "2.000000");
    }

    #[test]
    fn document_shape_and_determinism() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(1_500_000),
            TraceEvent::TaskComplete {
                unit: 5,
                ty: 2,
                busy_ps: 500_000,
                task: 7,
            },
        );
        t.emit(
            Time::from_ps(100),
            TraceEvent::PStoreAlloc {
                tile: 1,
                occupancy: 3,
            },
        );
        t.finish();
        let layout = Layout::new(8, 4);
        let a = to_perfetto_json(t.records(), &layout, "uts/flex");
        let b = to_perfetto_json(t.records(), &layout, "uts/flex");
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with("]}\n"));
        assert!(a.contains("\"ph\":\"X\",\"pid\":1,\"tid\":5,\"ts\":1.000000,\"dur\":0.500000"));
        assert!(a.contains("\"name\":\"tile0\""));
        assert!(a.contains("\"name\":\"pe7\""));
        assert!(a.contains("\"occupancy\":3"));
        // Valid JSON bracket balance (cheap sanity check without a parser).
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn clustered_layout_groups_tiles_under_chip_processes() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(1_000_000),
            TraceEvent::TaskComplete {
                unit: 5,
                ty: 2,
                busy_ps: 500_000,
                task: 7,
            },
        );
        t.emit(
            Time::from_ps(2_000_000),
            TraceEvent::LinkXfer {
                src_chip: 1,
                dst_chip: 0,
                class: 0,
                wait_ps: 42,
            },
        );
        t.emit(
            Time::from_ps(100),
            TraceEvent::PStoreAlloc {
                tile: 1,
                occupancy: 3,
            },
        );
        t.finish();
        // 8 units, 2 per tile, 2 tiles per chip → 2 chips.
        let layout = Layout::clustered(8, 2, 2);
        let doc = to_perfetto_json(t.records(), &layout, "uts/hier");
        // Processes are chips, not tiles; threads carry their tile name.
        assert!(doc.contains("\"name\":\"chip0\""));
        assert!(doc.contains("\"name\":\"chip1\""));
        assert!(!doc.contains("\"name\":\"tile0\"}"));
        assert!(doc.contains("\"name\":\"tile2.pe5\""));
        // Unit 5 lives in tile 2, which is chip 1.
        assert!(doc.contains("\"ph\":\"X\",\"pid\":1,\"tid\":5,"));
        // The link marker pins to the sending chip with its stall attached.
        assert!(doc.contains("\"cat\":\"link\",\"name\":\"link c1-c0\""));
        assert!(doc.contains("\"wait_ps\":42"));
        // The P-Store counter keeps one track per tile inside the chip.
        assert!(doc.contains("\"name\":\"pstore.tile1\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn timeline_renders_as_counter_tracks() {
        use pxl_sim::{CounterDelta, TelemetrySample, Timeline};
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(1_500_000),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 2,
                busy_ps: 500_000,
                task: 7,
            },
        );
        t.finish();
        let layout = Layout::new(2, 2);
        let timeline = Timeline::new(vec![TelemetrySample {
            epoch: 0,
            at: Time::from_ps(1_000_000),
            window: Time::from_ps(1_000_000),
            gauges: vec![("events".to_owned(), 4)],
            counters: vec![CounterDelta {
                name: "accel.tasks".to_owned(),
                delta: 10,
                rate: 10_000_000_000,
            }],
        }]);
        let doc = to_perfetto_json_with_timeline(t.records(), &layout, "uts/flex", &timeline);
        assert!(doc.contains(
            "\"ph\":\"C\",\"pid\":0,\"ts\":1.000000,\"name\":\"telemetry.events\",\
             \"args\":{\"value\":4}"
        ));
        assert!(doc.contains(
            "\"ph\":\"C\",\"pid\":0,\"ts\":1.000000,\"name\":\"telemetry.accel.tasks.rate\",\
             \"args\":{\"per_sec\":10000000000}"
        ));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // An empty timeline produces the exact plain-export bytes.
        let plain = to_perfetto_json(t.records(), &layout, "uts/flex");
        let empty =
            to_perfetto_json_with_timeline(t.records(), &layout, "uts/flex", &Timeline::default());
        assert_eq!(plain, empty);
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let layout = Layout::new(1, 1);
        let doc = to_perfetto_json(&[], &layout, "x");
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("tile0"));
    }
}
