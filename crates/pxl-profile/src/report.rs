//! Deterministic report rendering: markdown for humans, JSONL for tools.
//!
//! Everything here is a pure function of a [`Profile`]; floating-point
//! values are only ever produced at render time with fixed precision, so
//! two identical profiles render byte-identically.

use std::fmt::Write as _;

use crate::latency::Percentiles;
use crate::Profile;

fn table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut emit = |cells: &[String]| {
        out.push('|');
        for (c, w) in cells.iter().zip(&widths) {
            let _ = write!(out, " {c:<w$} |");
        }
        out.push('\n');
    };
    emit(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    emit(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        emit(row);
    }
}

fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

fn latency_row(name: &str, p: &Percentiles) -> Vec<String> {
    vec![
        name.to_string(),
        p.count.to_string(),
        p.p50.to_string(),
        p.p90.to_string(),
        p.p99.to_string(),
        p.max.to_string(),
        format!("{:.1}", p.mean()),
    ]
}

fn percentiles_json(p: &Percentiles) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        p.count, p.p50, p.p90, p.p99, p.max
    )
}

impl Profile {
    /// Renders the profile as a markdown section titled `bench on engine`.
    pub fn render_markdown(&self, bench: &str, engine: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## {bench} on {engine} ({} units)\n",
            self.layout.units
        );
        let _ = writeln!(out, "- makespan: {} ps", self.elapsed.as_ps());
        let _ = writeln!(
            out,
            "- work: {} ps, span: {} ps, parallelism: {:.2}x",
            self.graph.work_ps,
            self.graph.span_ps,
            self.parallelism()
        );
        let _ = writeln!(
            out,
            "- tasks: {} dispatched, edges: {} spawn + {} join, trace: {} events",
            self.graph.dispatched(),
            self.graph.spawn_edges,
            self.graph.join_edges,
            self.trace_events
        );
        match self.metric_task_ps_sum {
            Some(sum) => {
                let _ = writeln!(
                    out,
                    "- work cross-check: accel.task_ps sum = {} ps ({})",
                    sum,
                    if sum == self.graph.work_ps {
                        "match"
                    } else {
                        "MISMATCH"
                    }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "- work cross-check: per-unit busy counters sum = {} ps",
                    self.metric_busy_ps_sum
                );
            }
        }
        if self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "\n> **warning**: {} trace event(s) dropped by the capacity \
                 bound; work/span are lower bounds and the DAG is incomplete.",
                self.trace_dropped
            );
        }

        let _ = writeln!(
            out,
            "\n### Critical path ({} tasks, showing last {})\n",
            self.graph.critical_len,
            self.graph.critical_path.len()
        );
        table(
            &mut out,
            &["#", "task", "ty", "unit", "chain_ps", "busy_ps"],
            &self
                .graph
                .critical_path
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    vec![
                        (self.graph.critical_len - self.graph.critical_path.len() + i + 1)
                            .to_string(),
                        s.id.to_string(),
                        s.ty.to_string(),
                        s.unit.to_string(),
                        s.est_ps.to_string(),
                        s.busy_ps.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let _ = writeln!(out, "\n### Heaviest tasks\n");
        table(
            &mut out,
            &["rank", "task", "ty", "unit", "busy_ps"],
            &self
                .graph
                .top_tasks
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    vec![
                        (i + 1).to_string(),
                        s.id.to_string(),
                        s.ty.to_string(),
                        s.unit.to_string(),
                        s.busy_ps.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let _ = writeln!(out, "\n### Latency percentiles (ps)\n");
        let s = &self.latency.steals;
        table(
            &mut out,
            &["population", "count", "p50", "p90", "p99", "max", "mean"],
            &[
                latency_row("dispatch\u{2192}complete", &self.latency.busy),
                latency_row("ready\u{2192}dispatch", &self.latency.queue),
                latency_row("steal grant", &s.grant),
                latency_row("steal fail", &s.fail),
            ],
        );
        let _ = writeln!(
            out,
            "\nsteals: {} requests, hit rate {}",
            s.requests,
            pct(s.hit_rate())
        );

        let _ = writeln!(out, "\n### Per-unit utilization\n");
        table(
            &mut out,
            &["unit", "tasks", "busy_ps", "util", "timeline"],
            &self
                .units
                .iter()
                .map(|u| {
                    vec![
                        u.unit.to_string(),
                        u.tasks.to_string(),
                        u.busy_ps.to_string(),
                        pct(u.utilization(self.elapsed)),
                        format!("`{}`", u.timeline()),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let _ = writeln!(out, "\n### Bottleneck attribution\n");
        table(
            &mut out,
            &[
                "tile",
                "pes",
                "busy",
                "steal-wait",
                "recovery",
                "L1 miss",
                "verdict",
            ],
            &self
                .tiles
                .iter()
                .map(|t| {
                    vec![
                        t.tile.to_string(),
                        t.pes.to_string(),
                        pct(t.busy_frac()),
                        pct(t.steal_frac()),
                        pct(t.recovery_frac()),
                        pct(t.miss_rate()),
                        t.verdict.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        // Only multi-chip cluster runs carry a chip rollup; single-chip
        // reports keep their exact pre-cluster bytes.
        if !self.chips.is_empty() {
            let _ = writeln!(out, "\n### Per-chip rollup\n");
            table(
                &mut out,
                &[
                    "chip",
                    "pes",
                    "busy",
                    "link msgs",
                    "steal msgs",
                    "link stall",
                    "verdict",
                ],
                &self
                    .chips
                    .iter()
                    .map(|c| {
                        vec![
                            c.chip.to_string(),
                            c.pes.to_string(),
                            pct(c.busy_frac()),
                            c.link_msgs.to_string(),
                            c.link_steal_msgs.to_string(),
                            pct(c.link_frac()),
                            c.verdict.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
        out
    }

    /// Renders the profile as one JSONL record.
    pub fn render_jsonl(&self, bench: &str, engine: &str) -> String {
        let s = &self.latency.steals;
        let util: Vec<String> = self
            .units
            .iter()
            .map(|u| format!("{:.4}", u.utilization(self.elapsed)))
            .collect();
        let tiles: Vec<String> = self
            .tiles
            .iter()
            .map(|t| {
                format!(
                    "{{\"tile\":{},\"busy\":{:.4},\"steal_wait\":{:.4},\
                     \"recovery\":{:.4},\"l1_miss_rate\":{:.4},\"verdict\":\"{}\"}}",
                    t.tile,
                    t.busy_frac(),
                    t.steal_frac(),
                    t.recovery_frac(),
                    t.miss_rate(),
                    t.verdict
                )
            })
            .collect();
        // The chips field only appears on cluster runs so that single-chip
        // records keep their exact historical bytes.
        let chips = if self.chips.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .chips
                .iter()
                .map(|c| {
                    format!(
                        "{{\"chip\":{},\"pes\":{},\"busy\":{:.4},\"link_msgs\":{},\
                         \"link_steal_msgs\":{},\"link_stall\":{:.4},\"verdict\":\"{}\"}}",
                        c.chip,
                        c.pes,
                        c.busy_frac(),
                        c.link_msgs,
                        c.link_steal_msgs,
                        c.link_frac(),
                        c.verdict
                    )
                })
                .collect();
            format!(",\"chips\":[{}]", rows.join(","))
        };
        format!(
            concat!(
                "{{\"bench\":\"{}\",\"engine\":\"{}\",\"units\":{},",
                "\"elapsed_ps\":{},\"work_ps\":{},\"span_ps\":{},",
                "\"parallelism\":{:.3},\"tasks\":{},\"spawn_edges\":{},",
                "\"join_edges\":{},\"critical_len\":{},\"trace_events\":{},",
                "\"trace_dropped\":{},\"busy\":{},\"queue\":{},",
                "\"steal_requests\":{},\"steal_grant\":{},\"steal_fail\":{},",
                "\"steal_hit_rate\":{:.4},\"util\":[{}],\"tiles\":[{}]{}}}"
            ),
            bench,
            engine,
            self.layout.units,
            self.elapsed.as_ps(),
            self.graph.work_ps,
            self.graph.span_ps,
            self.parallelism(),
            self.graph.dispatched(),
            self.graph.spawn_edges,
            self.graph.join_edges,
            self.graph.critical_len,
            self.trace_events,
            self.trace_dropped,
            percentiles_json(&self.latency.busy),
            percentiles_json(&self.latency.queue),
            s.requests,
            percentiles_json(&s.grant),
            percentiles_json(&s.fail),
            s.hit_rate(),
            util.join(","),
            tiles.join(","),
            chips,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{Layout, Profile};
    use pxl_sim::{Metrics, Time, TraceEvent, Tracer};

    fn sample() -> Profile {
        let mut t = Tracer::bounded(32);
        t.emit(
            Time::from_ps(0),
            TraceEvent::TaskDispatch {
                unit: 0,
                ty: 0,
                task: 1,
            },
        );
        t.emit(
            Time::from_ps(20),
            TraceEvent::Spawn {
                unit: 0,
                ty: 1,
                parent: 1,
                child: 2,
            },
        );
        t.emit(
            Time::from_ps(80),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 80,
                task: 1,
            },
        );
        t.emit(
            Time::from_ps(30),
            TraceEvent::TaskDispatch {
                unit: 1,
                ty: 1,
                task: 2,
            },
        );
        t.emit(
            Time::from_ps(90),
            TraceEvent::TaskComplete {
                unit: 1,
                ty: 1,
                busy_ps: 60,
                task: 2,
            },
        );
        t.finish();
        Profile::analyze(
            t.records(),
            &Metrics::new(),
            &Layout::new(2, 2),
            Time::from_ps(100),
        )
    }

    #[test]
    fn markdown_is_deterministic_and_complete() {
        let p = sample();
        let a = p.render_markdown("uts", "flex");
        assert_eq!(a, p.render_markdown("uts", "flex"));
        for section in [
            "## uts on flex (2 units)",
            "### Critical path",
            "### Heaviest tasks",
            "### Latency percentiles",
            "### Per-unit utilization",
            "### Bottleneck attribution",
        ] {
            assert!(a.contains(section), "missing {section:?} in:\n{a}");
        }
        assert!(!a.contains("warning"), "nothing was dropped");
    }

    #[test]
    fn jsonl_has_headline_numbers() {
        let p = sample();
        let line = p.render_jsonl("uts", "flex");
        assert!(line.starts_with("{\"bench\":\"uts\",\"engine\":\"flex\",\"units\":2,"));
        assert!(line.contains("\"work_ps\":140"));
        assert!(line.contains("\"span_ps\":80"));
        assert!(line.contains("\"verdict\":"));
        assert!(line.ends_with("]}"));
        assert!(
            !line.contains("\"chips\""),
            "single-chip records must keep their historical shape"
        );
        assert!(!p.render_markdown("uts", "flex").contains("Per-chip rollup"));
    }

    #[test]
    fn cluster_profiles_render_a_chip_section() {
        let mut t = Tracer::bounded(32);
        t.emit(
            Time::from_ps(80),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 80,
                task: 1,
            },
        );
        t.emit(
            Time::from_ps(50),
            TraceEvent::LinkXfer {
                src_chip: 0,
                dst_chip: 1,
                class: 3,
                wait_ps: 30,
            },
        );
        t.finish();
        // 4 units, 2 per tile, 1 tile per chip → 2 chips.
        let p = Profile::analyze(
            t.records(),
            &Metrics::new(),
            &Layout::clustered(4, 2, 1),
            Time::from_ps(100),
        );
        assert_eq!(p.chips.len(), 2);
        let md = p.render_markdown("uts", "hier");
        assert!(md.contains("### Per-chip rollup"), "missing section:\n{md}");
        assert!(md.contains("link-bound"), "30/200 ps stall is link-bound");
        let line = p.render_jsonl("uts", "hier");
        assert!(line.contains(",\"chips\":[{\"chip\":0,"));
        assert!(line.contains("\"link_msgs\":1"));
        assert!(line.ends_with("]}"));
    }
}
