//! Post-run performance analysis over a simulation's trace and metrics.
//!
//! Every ParallelXL engine can record a bounded, deterministic event trace
//! ([`pxl_sim::Tracer`]) alongside its typed [`pxl_sim::Metrics`]. This
//! crate turns that raw material into answers:
//!
//! - [`graph`] reconstructs the causal spawn/join task DAG from the task
//!   instance ids stamped into `TaskDispatch` / `TaskComplete` / `Spawn` /
//!   `PStoreJoin` events, and computes total work, critical-path (span)
//!   length, available parallelism and the critical tasks themselves.
//! - [`latency`] derives dispatch-to-complete and spawn-to-dispatch
//!   (queueing-delay) percentiles, the steal-latency breakdown, and
//!   per-unit utilization timelines.
//! - [`bottleneck`] attributes each tile's time to compute, steal waiting,
//!   fault recovery or memory stalls and issues a deterministic verdict.
//! - [`perfetto`] exports the trace as Chrome/Perfetto `trace.json` for
//!   interactive inspection in <https://ui.perfetto.dev>.
//! - [`parse`] parses [`pxl_sim::Tracer::to_jsonl`] output back into
//!   records, so dumped traces can be profiled offline.
//!
//! All analyses are pure functions of the (already deterministic) trace:
//! two same-seed runs produce byte-identical reports.
//!
//! # Examples
//!
//! ```
//! use pxl_profile::{Layout, Profile};
//! use pxl_sim::{Metrics, Time, TraceEvent, Tracer};
//!
//! let mut t = Tracer::bounded(64);
//! t.emit(Time::from_ps(0), TraceEvent::TaskDispatch { unit: 0, ty: 0, task: 1 });
//! t.emit(Time::from_ps(50), TraceEvent::Spawn { unit: 0, ty: 1, parent: 1, child: 2 });
//! t.emit(Time::from_ps(60), TraceEvent::TaskComplete { unit: 0, ty: 0, busy_ps: 60, task: 1 });
//! t.emit(Time::from_ps(60), TraceEvent::TaskDispatch { unit: 1, ty: 1, task: 2 });
//! t.emit(Time::from_ps(90), TraceEvent::TaskComplete { unit: 1, ty: 1, busy_ps: 30, task: 2 });
//! t.finish();
//!
//! let profile = Profile::analyze(
//!     t.records(),
//!     &Metrics::new(),
//!     &Layout::new(2, 2),
//!     Time::from_ps(100),
//! );
//! assert_eq!(profile.graph.work_ps, 90);
//! assert_eq!(profile.graph.span_ps, 80); // 50 into task 1, then 30 of task 2
//! assert!(profile.check_invariants().is_empty());
//! ```

pub mod bottleneck;
pub mod graph;
pub mod latency;
pub mod parse;
pub mod perfetto;
pub mod report;

use pxl_sim::{Metrics, Time, TraceRecord};

pub use bottleneck::{ChipBottleneck, TileBottleneck};
pub use graph::{CriticalStep, GraphSummary, TaskNode};
pub use latency::{LatencySummary, Percentiles, StealSummary, UnitUtilization};
pub use parse::{parse_jsonl, parse_line};
pub use perfetto::{to_perfetto_json, to_perfetto_json_with_timeline};

/// The unit topology of the engine that produced a trace: how many PEs or
/// cores there are, how they group into tiles (the CPU baseline is one
/// tile of all its cores), and — for multi-chip cluster runs — how tiles
/// group into chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Flat PE/core count.
    pub units: usize,
    /// PEs per tile; `units` that do not fill a whole number of tiles go to
    /// the last tile.
    pub pes_per_tile: usize,
    /// Tiles per chip for multi-chip fabrics; zero means the run was not
    /// clustered (all tiles on one chip) and every chip-level analysis is
    /// skipped, keeping single-chip reports byte-identical.
    pub tiles_per_chip: usize,
}

impl Layout {
    /// A layout of `units` units grouped `pes_per_tile` to a tile.
    /// A `pes_per_tile` of zero is treated as one tile of all units.
    pub fn new(units: usize, pes_per_tile: usize) -> Self {
        Layout {
            units,
            pes_per_tile: if pes_per_tile == 0 {
                units.max(1)
            } else {
                pes_per_tile
            },
            tiles_per_chip: 0,
        }
    }

    /// The same layout with tiles grouped `tiles_per_chip` to a chip, as in
    /// a multi-chip `ClusterConfig` run.
    pub fn clustered(units: usize, pes_per_tile: usize, tiles_per_chip: usize) -> Self {
        Layout {
            tiles_per_chip,
            ..Layout::new(units, pes_per_tile)
        }
    }

    /// Number of tiles (at least one).
    pub fn tiles(&self) -> usize {
        self.units.div_ceil(self.pes_per_tile).max(1)
    }

    /// The tile a flat unit index belongs to, clamped into range so stray
    /// indices in a trace cannot push attribution out of bounds.
    pub fn tile_of(&self, unit: u32) -> usize {
        (unit as usize / self.pes_per_tile).min(self.tiles() - 1)
    }

    /// Number of chips; one unless the layout was built with
    /// [`Layout::clustered`].
    pub fn chips(&self) -> usize {
        if self.tiles_per_chip == 0 {
            1
        } else {
            self.tiles().div_ceil(self.tiles_per_chip).max(1)
        }
    }

    /// The chip a tile belongs to (clamped, like [`Layout::tile_of`]).
    pub fn chip_of_tile(&self, tile: usize) -> usize {
        match tile.checked_div(self.tiles_per_chip) {
            Some(chip) => chip.min(self.chips() - 1),
            None => 0,
        }
    }

    /// The chip a flat unit index belongs to.
    pub fn chip_of(&self, unit: u32) -> usize {
        self.chip_of_tile(self.tile_of(unit))
    }
}

/// The complete analysis of one run: task graph + critical path, latency
/// and utilization summaries, and per-tile bottleneck attribution.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Unit topology the analysis attributed events against.
    pub layout: Layout,
    /// Measured makespan of the run (the engine's `elapsed`).
    pub elapsed: Time,
    /// Task-graph reconstruction: work, span, parallelism, critical path.
    pub graph: GraphSummary,
    /// Latency percentiles and steal breakdown.
    pub latency: LatencySummary,
    /// Per-unit busy time, utilization and activity timeline.
    pub units: Vec<UnitUtilization>,
    /// Per-tile bottleneck attribution.
    pub tiles: Vec<TileBottleneck>,
    /// Per-chip utilization rollups and link-bound verdicts; empty unless
    /// the layout is a multi-chip cluster ([`Layout::clustered`]).
    pub chips: Vec<ChipBottleneck>,
    /// Number of trace records analyzed.
    pub trace_events: usize,
    /// Events the tracer's capacity bound discarded (`trace.dropped`); when
    /// nonzero the DAG may be incomplete and work/span are lower bounds.
    pub trace_dropped: u64,
    /// `accel.task_ps` histogram sum from the metrics registry, when the
    /// engine exports one — the cross-check target for [`GraphSummary::work_ps`].
    pub metric_task_ps_sum: Option<u64>,
    /// Sum of the per-unit `*.busy_ps` counters from the metrics registry.
    pub metric_busy_ps_sum: u64,
}

impl Profile {
    /// Analyzes a finished run. `records` must be in final trace order
    /// (i.e. after [`pxl_sim::Tracer::finish`]); `elapsed` is the engine's
    /// measured makespan.
    pub fn analyze(
        records: &[TraceRecord],
        metrics: &Metrics,
        layout: &Layout,
        elapsed: Time,
    ) -> Profile {
        let graph = graph::reconstruct(records);
        let latency = latency::analyze(records, &graph);
        let units = latency::utilization(records, layout, elapsed);
        let tiles = bottleneck::attribute(records, layout, elapsed, &units);
        let chips = bottleneck::attribute_chips(records, layout, elapsed, &units);
        Profile {
            layout: *layout,
            elapsed,
            graph,
            latency,
            units,
            tiles,
            chips,
            trace_events: records.len(),
            trace_dropped: metrics.get("trace.dropped"),
            metric_task_ps_sum: metrics.histogram("accel.task_ps").map(|h| h.sum()),
            metric_busy_ps_sum: metrics.sum_suffix(".busy_ps"),
        }
    }

    /// Available parallelism: total work over critical-path length.
    pub fn parallelism(&self) -> f64 {
        if self.graph.span_ps == 0 {
            0.0
        } else {
            self.graph.work_ps as f64 / self.graph.span_ps as f64
        }
    }

    /// Checks the structural invariants every complete trace must satisfy;
    /// returns one message per violation (empty means all hold).
    ///
    /// - span ≤ makespan: the critical path is a lower bound on execution.
    /// - work == Σ `accel.task_ps` when the engine exports that histogram
    ///   and no events were dropped.
    /// - every unit's utilization lies in \[0, 1\].
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let makespan = self.elapsed.as_ps();
        if self.graph.span_ps > makespan {
            violations.push(format!(
                "span {} ps exceeds makespan {} ps",
                self.graph.span_ps, makespan
            ));
        }
        if self.trace_dropped == 0 {
            if let Some(expect) = self.metric_task_ps_sum {
                if self.graph.work_ps != expect {
                    violations.push(format!(
                        "trace work {} ps != accel.task_ps sum {} ps",
                        self.graph.work_ps, expect
                    ));
                }
            }
        }
        for u in &self.units {
            if u.busy_ps > makespan {
                violations.push(format!(
                    "unit {} busy {} ps exceeds makespan {} ps (utilization > 1)",
                    u.unit, u.busy_ps, makespan
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::TraceEvent;
    use pxl_sim::Tracer;

    #[test]
    fn layout_tiling_clamps() {
        let l = Layout::new(8, 4);
        assert_eq!(l.tiles(), 2);
        assert_eq!(l.tile_of(0), 0);
        assert_eq!(l.tile_of(7), 1);
        assert_eq!(l.tile_of(99), 1, "stray unit indices clamp to last tile");
        let one = Layout::new(3, 0);
        assert_eq!(one.tiles(), 1);
    }

    #[test]
    fn analyze_empty_trace_is_well_formed() {
        let p = Profile::analyze(
            &[],
            &Metrics::new(),
            &Layout::new(4, 4),
            Time::from_ps(1000),
        );
        assert_eq!(p.graph.work_ps, 0);
        assert_eq!(p.graph.span_ps, 0);
        assert_eq!(p.parallelism(), 0.0);
        assert!(p.check_invariants().is_empty());
    }

    #[test]
    fn invariant_catches_work_mismatch() {
        let mut t = Tracer::bounded(8);
        t.emit(
            Time::from_ps(0),
            TraceEvent::TaskDispatch {
                unit: 0,
                ty: 0,
                task: 1,
            },
        );
        t.emit(
            Time::from_ps(10),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 10,
                task: 1,
            },
        );
        t.finish();
        let mut m = Metrics::new();
        let h = m.register_histogram("accel.task_ps");
        m.observe(h, 99); // deliberately different from the trace's 10
        let p = Profile::analyze(t.records(), &m, &Layout::new(1, 1), Time::from_ps(10));
        let violations = p.check_invariants();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("accel.task_ps"));
    }
}
