//! Latency percentiles, steal breakdown and per-unit utilization.
//!
//! Three latency populations come out of a trace:
//!
//! - **dispatch → complete**: each task's modeled execution time
//!   (`busy_ps` of every `TaskComplete` event);
//! - **ready → dispatch** (queueing delay): the gap between the moment a
//!   task became runnable — its `Spawn`, or the last `PStoreJoin` that
//!   filled its continuation — and its `TaskDispatch`;
//! - **steal latency**: per-thief FIFO matching of `StealRequest` against
//!   the following `StealGrant` / `StealFail`, split by outcome.
//!
//! Percentiles use the deterministic nearest-rank rule on the sorted
//! population (index `⌊(n−1)·p/100⌋`), so reports are byte-stable.

use std::collections::{BTreeMap, VecDeque};

use pxl_sim::{Time, TraceEvent, TraceRecord};

use crate::graph::GraphSummary;
use crate::Layout;

/// Number of buckets in each unit's activity timeline.
pub const TIMELINE_BUCKETS: usize = 50;

/// Intensity ramp used to render one timeline bucket (index = tenths of
/// the bucket spent busy).
pub const TIMELINE_RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Nearest-rank percentile summary of one latency population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Population size.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
    /// Population sum (for means in reports).
    pub sum: u64,
}

impl Percentiles {
    /// Summarizes `values` (consumed and sorted in place).
    pub fn of(mut values: Vec<u64>) -> Percentiles {
        values.sort_unstable();
        let n = values.len();
        if n == 0 {
            return Percentiles::default();
        }
        let rank = |p: usize| values[(n - 1) * p / 100];
        Percentiles {
            count: n as u64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: values[n - 1],
            sum: values.iter().sum(),
        }
    }

    /// Arithmetic mean of the population (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Steal-latency breakdown: requests matched FIFO per thief against their
/// grant or fail response.
#[derive(Debug, Clone, Default)]
pub struct StealSummary {
    /// Steal requests observed.
    pub requests: u64,
    /// Request-to-grant latency of successful steals.
    pub grant: Percentiles,
    /// Request-to-fail latency of empty-handed steals.
    pub fail: Percentiles,
    /// Per-thief total time spent with a steal request in flight, keyed by
    /// flat unit index.
    pub wait_ps_by_thief: BTreeMap<u32, u64>,
}

impl StealSummary {
    /// Fraction of requests that found work (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.grant.count as f64 / self.requests as f64
        }
    }
}

/// The latency analysis of one run.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Dispatch-to-complete (task execution) times.
    pub busy: Percentiles,
    /// Ready-to-dispatch queueing delays.
    pub queue: Percentiles,
    /// Steal breakdown.
    pub steals: StealSummary,
}

/// Derives the latency populations from a time-ordered trace, reusing the
/// reconstructed graph for ready/dispatch pairs.
pub fn analyze(records: &[TraceRecord], graph: &GraphSummary) -> LatencySummary {
    let mut busy = Vec::new();
    let mut pending: BTreeMap<u32, VecDeque<u64>> = BTreeMap::new();
    let mut steals = StealSummary::default();
    let mut grant = Vec::new();
    let mut fail = Vec::new();

    for r in records {
        let t_ps = r.at.as_ps();
        match r.event {
            TraceEvent::TaskComplete { busy_ps, .. } => busy.push(busy_ps),
            TraceEvent::StealRequest { thief, .. } => {
                steals.requests += 1;
                pending.entry(thief).or_default().push_back(t_ps);
            }
            TraceEvent::StealGrant { thief, .. } | TraceEvent::StealFail { thief, .. } => {
                let Some(start) = pending.entry(thief).or_default().pop_front() else {
                    continue;
                };
                let wait = t_ps.saturating_sub(start);
                *steals.wait_ps_by_thief.entry(thief).or_default() += wait;
                if matches!(r.event, TraceEvent::StealGrant { .. }) {
                    grant.push(wait);
                } else {
                    fail.push(wait);
                }
            }
            _ => {}
        }
    }

    let queue: Vec<u64> = graph
        .nodes
        .values()
        .filter_map(|n| {
            let d = n.dispatch_ps?;
            let ready = n.ready_ps?;
            Some(d.saturating_sub(ready))
        })
        .collect();

    steals.grant = Percentiles::of(grant);
    steals.fail = Percentiles::of(fail);
    LatencySummary {
        busy: Percentiles::of(busy),
        queue: Percentiles::of(queue),
        steals,
    }
}

/// One unit's busy accounting and activity timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitUtilization {
    /// Flat PE/core index.
    pub unit: u32,
    /// Tasks completed on this unit.
    pub tasks: u64,
    /// Total modeled execution time on this unit.
    pub busy_ps: u64,
    /// Busy picoseconds per timeline bucket ([`TIMELINE_BUCKETS`] buckets
    /// spanning the whole run).
    pub buckets: Vec<u64>,
    /// Width of one bucket in picoseconds.
    pub bucket_ps: u64,
}

impl UnitUtilization {
    /// Busy fraction of the whole run, in \[0, 1\] for a well-formed trace.
    pub fn utilization(&self, elapsed: Time) -> f64 {
        let total = elapsed.as_ps();
        if total == 0 {
            0.0
        } else {
            self.busy_ps as f64 / total as f64
        }
    }

    /// Renders the timeline as one character per bucket using
    /// [`TIMELINE_RAMP`].
    pub fn timeline(&self) -> String {
        self.buckets
            .iter()
            .map(|&b| {
                let tenths = if self.bucket_ps == 0 {
                    0
                } else {
                    (b * 9).div_ceil(self.bucket_ps).min(9) as usize
                };
                TIMELINE_RAMP[tenths]
            })
            .collect()
    }
}

/// Accumulates per-unit busy intervals (each `TaskComplete` covers
/// `[t − busy_ps, t]`) into utilization records for every unit of the
/// layout, including idle ones.
pub fn utilization(
    records: &[TraceRecord],
    layout: &Layout,
    elapsed: Time,
) -> Vec<UnitUtilization> {
    let total = elapsed.as_ps();
    let bucket_ps = (total / TIMELINE_BUCKETS as u64).max(1);
    let mut units: Vec<UnitUtilization> = (0..layout.units as u32)
        .map(|unit| UnitUtilization {
            unit,
            tasks: 0,
            busy_ps: 0,
            buckets: vec![0; TIMELINE_BUCKETS],
            bucket_ps,
        })
        .collect();

    for r in records {
        let TraceEvent::TaskComplete { unit, busy_ps, .. } = r.event else {
            continue;
        };
        let Some(u) = units.get_mut(unit as usize) else {
            continue;
        };
        u.tasks += 1;
        u.busy_ps += busy_ps;
        let end = r.at.as_ps();
        let start = end.saturating_sub(busy_ps);
        let first = (start / bucket_ps) as usize;
        let last = ((end.saturating_sub(1)) / bucket_ps) as usize;
        for b in first..=last.min(TIMELINE_BUCKETS - 1) {
            let lo = (b as u64 * bucket_ps).max(start);
            let hi = ((b as u64 + 1) * bucket_ps).min(end);
            u.buckets[b] += hi.saturating_sub(lo);
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use pxl_sim::Tracer;

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of((1..=100).collect());
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        assert_eq!(Percentiles::of(vec![]).max, 0);
    }

    #[test]
    fn percentiles_empty_population_is_all_zeros() {
        let p = Percentiles::of(vec![]);
        assert_eq!(p, Percentiles::default());
        assert_eq!(p.count, 0);
        assert_eq!((p.p50, p.p90, p.p99, p.max, p.sum), (0, 0, 0, 0, 0));
        assert!((p.mean() - 0.0).abs() < f64::EPSILON, "mean of empty is 0");
    }

    #[test]
    fn percentiles_single_sample_is_every_rank() {
        let p = Percentiles::of(vec![42]);
        assert_eq!(p.count, 1);
        assert_eq!((p.p50, p.p90, p.p99, p.max), (42, 42, 42, 42));
        assert_eq!(p.sum, 42);
        assert!((p.mean() - 42.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles_all_equal_population_collapses() {
        let p = Percentiles::of(vec![7; 1000]);
        assert_eq!(p.count, 1000);
        assert_eq!((p.p50, p.p90, p.p99, p.max), (7, 7, 7, 7));
        assert_eq!(p.sum, 7000);
        assert!((p.mean() - 7.0).abs() < f64::EPSILON);
    }

    #[test]
    fn steal_fifo_matches_per_thief() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(0),
            TraceEvent::StealRequest {
                thief: 1,
                victim: 0,
            },
        );
        t.emit(
            Time::from_ps(5),
            TraceEvent::StealRequest {
                thief: 2,
                victim: 0,
            },
        );
        t.emit(
            Time::from_ps(30),
            TraceEvent::StealGrant {
                thief: 1,
                victim: 0,
            },
        );
        t.emit(
            Time::from_ps(45),
            TraceEvent::StealFail {
                thief: 2,
                victim: 0,
            },
        );
        t.finish();
        let s = analyze(t.records(), &GraphSummary::default()).steals;
        assert_eq!(s.requests, 2);
        assert_eq!(s.grant.count, 1);
        assert_eq!(s.grant.max, 30);
        assert_eq!(s.fail.max, 40);
        assert_eq!(s.wait_ps_by_thief[&1], 30);
        assert_eq!(s.wait_ps_by_thief[&2], 40);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_delay_uses_ready_time() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(0),
            TraceEvent::TaskDispatch {
                unit: 0,
                ty: 0,
                task: 1,
            },
        );
        t.emit(
            Time::from_ps(10),
            TraceEvent::Spawn {
                unit: 0,
                ty: 0,
                parent: 1,
                child: 2,
            },
        );
        t.emit(
            Time::from_ps(40),
            TraceEvent::TaskDispatch {
                unit: 0,
                ty: 0,
                task: 2,
            },
        );
        t.finish();
        let g = graph::reconstruct(t.records());
        let lat = analyze(t.records(), &g);
        assert_eq!(lat.queue.count, 1, "only task 2 has a known ready time");
        assert_eq!(lat.queue.max, 30);
    }

    #[test]
    fn utilization_buckets_cover_intervals() {
        let mut t = Tracer::bounded(16);
        // One task busy for the entire first half of a 100 ps run.
        t.emit(
            Time::from_ps(50),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 50,
                task: 1,
            },
        );
        t.finish();
        let layout = Layout::new(2, 2);
        let units = utilization(t.records(), &layout, Time::from_ps(100));
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].busy_ps, 50);
        assert_eq!(units[0].buckets.iter().sum::<u64>(), 50);
        assert!((units[0].utilization(Time::from_ps(100)) - 0.5).abs() < 1e-12);
        assert_eq!(units[1].busy_ps, 0, "idle units still get a row");
        let tl = units[0].timeline();
        assert_eq!(tl.len(), TIMELINE_BUCKETS);
        assert!(tl.starts_with('@'), "first half fully busy: {tl}");
        assert!(tl.ends_with(' '), "second half idle: {tl}");
    }
}
