//! Per-tile bottleneck attribution.
//!
//! For each tile the run's capacity (`elapsed × PEs in the tile`) is split
//! into compute (task execution), steal waiting (time a PE's TMU had a
//! steal request in flight), fault recovery (injection-to-recovery windows
//! of faults attributed to the tile) and the remainder (idle / queueing /
//! memory stalls). Combined with the tile's L1 miss rate and the global
//! DRAM-saturation signal, a deterministic rule ladder issues one verdict
//! per tile:
//!
//! 1. recovery > 25% of capacity → `fault-recovery-bound`
//! 2. steal wait > 25% of capacity → `steal-bound`
//! 3. L1 miss rate > 30%, or the DRAM model saturated → `memory-bound`
//! 4. compute > 60% of capacity → `compute-bound`
//! 5. otherwise → `underutilized`
//!
//! The thresholds are integer comparisons on picosecond totals, so the
//! verdicts are exactly reproducible.

use std::collections::BTreeMap;

use pxl_sim::{Time, TraceEvent, TraceRecord};

use crate::latency::UnitUtilization;
use crate::Layout;

/// One tile's time attribution and verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBottleneck {
    /// Tile index.
    pub tile: u32,
    /// PEs in this tile.
    pub pes: u32,
    /// Capacity: `elapsed × pes` picoseconds.
    pub capacity_ps: u64,
    /// Task execution time summed over the tile's PEs.
    pub busy_ps: u64,
    /// Time the tile's PEs had steal requests in flight.
    pub steal_wait_ps: u64,
    /// Injection-to-recovery time of faults attributed to the tile.
    pub recovery_ps: u64,
    /// L1 hits issued by the tile's ports.
    pub l1_hits: u64,
    /// L1 misses issued by the tile's ports.
    pub l1_misses: u64,
    /// DRAM-saturation events (global — same value on every tile).
    pub dram_saturated: u64,
    /// The verdict from the rule ladder above.
    pub verdict: &'static str,
}

impl TileBottleneck {
    /// Compute fraction of capacity.
    pub fn busy_frac(&self) -> f64 {
        frac(self.busy_ps, self.capacity_ps)
    }

    /// Steal-wait fraction of capacity.
    pub fn steal_frac(&self) -> f64 {
        frac(self.steal_wait_ps, self.capacity_ps)
    }

    /// Fault-recovery fraction of capacity.
    pub fn recovery_frac(&self) -> f64 {
        frac(self.recovery_ps, self.capacity_ps)
    }

    /// L1 miss rate of the tile's ports.
    pub fn miss_rate(&self) -> f64 {
        frac(self.l1_misses, self.l1_hits + self.l1_misses)
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn verdict(t: &TileBottleneck) -> &'static str {
    let cap = t.capacity_ps;
    if t.recovery_ps * 4 > cap {
        "fault-recovery-bound"
    } else if t.steal_wait_ps * 4 > cap {
        "steal-bound"
    } else if t.l1_misses * 10 > (t.l1_hits + t.l1_misses) * 3 || t.dram_saturated > 0 {
        "memory-bound"
    } else if t.busy_ps * 5 > cap * 3 {
        "compute-bound"
    } else {
        "underutilized"
    }
}

/// Attributes the run's time to bottleneck classes per tile.
///
/// Steal waits come from per-thief FIFO request/response matching; fault
/// windows from pairing `FaultInjected` with the `FaultRecovered` /
/// `FaultUnrecovered` of the same spec (unrecovered faults charge until
/// the end of the run). Cache events attribute by issuing port, steals and
/// faults by the unit in the event.
pub fn attribute(
    records: &[TraceRecord],
    layout: &Layout,
    elapsed: Time,
    units: &[UnitUtilization],
) -> Vec<TileBottleneck> {
    let tiles = layout.tiles();
    let mut out: Vec<TileBottleneck> = (0..tiles)
        .map(|t| {
            let pes = if t + 1 == tiles {
                (layout.units - t * layout.pes_per_tile).max(1)
            } else {
                layout.pes_per_tile
            };
            TileBottleneck {
                tile: t as u32,
                pes: pes as u32,
                capacity_ps: elapsed.as_ps() * pes as u64,
                busy_ps: 0,
                steal_wait_ps: 0,
                recovery_ps: 0,
                l1_hits: 0,
                l1_misses: 0,
                dram_saturated: 0,
                verdict: "underutilized",
            }
        })
        .collect();

    for u in units {
        out[layout.tile_of(u.unit)].busy_ps += u.busy_ps;
    }

    let mut steal_start: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut fault_start: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
    let mut dram = 0u64;
    for r in records {
        let t_ps = r.at.as_ps();
        match r.event {
            TraceEvent::StealRequest { thief, .. } => {
                steal_start.entry(thief).or_default().push(t_ps);
            }
            TraceEvent::StealGrant { thief, .. } | TraceEvent::StealFail { thief, .. } => {
                let queue = steal_start.entry(thief).or_default();
                if !queue.is_empty() {
                    let start = queue.remove(0);
                    out[layout.tile_of(thief)].steal_wait_ps += t_ps.saturating_sub(start);
                }
            }
            TraceEvent::FaultInjected { spec, unit } => {
                fault_start.insert(spec, (t_ps, unit));
            }
            TraceEvent::FaultRecovered { spec, .. } | TraceEvent::FaultUnrecovered { spec, .. } => {
                if let Some((start, unit)) = fault_start.remove(&spec) {
                    out[layout.tile_of(unit)].recovery_ps += t_ps.saturating_sub(start);
                }
            }
            TraceEvent::CacheHit { port, level: 1 } => {
                out[layout.tile_of(port)].l1_hits += 1;
            }
            TraceEvent::CacheMiss { port, level: 1 } => {
                out[layout.tile_of(port)].l1_misses += 1;
            }
            TraceEvent::DramSaturated { .. } => dram += 1,
            _ => {}
        }
    }
    // A fault never resolved charges its window to the end of the run.
    for (start, unit) in fault_start.into_values() {
        out[layout.tile_of(unit)].recovery_ps += elapsed.as_ps().saturating_sub(start);
    }

    for t in &mut out {
        t.dram_saturated = dram;
        t.verdict = verdict(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency;
    use pxl_sim::Tracer;

    fn attribute_of(t: &mut Tracer, layout: Layout, elapsed: u64) -> Vec<TileBottleneck> {
        t.finish();
        let elapsed = Time::from_ps(elapsed);
        let units = latency::utilization(t.records(), &layout, elapsed);
        attribute(t.records(), &layout, elapsed, &units)
    }

    #[test]
    fn compute_bound_tile() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(90),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 90,
                task: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].verdict, "compute-bound");
        assert!((tiles[0].busy_frac() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn steal_bound_tile() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(0),
            TraceEvent::StealRequest {
                thief: 0,
                victim: 1,
            },
        );
        t.emit(
            Time::from_ps(40),
            TraceEvent::StealFail {
                thief: 0,
                victim: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles[0].steal_wait_ps, 40);
        assert_eq!(tiles[0].verdict, "steal-bound");
    }

    #[test]
    fn fault_recovery_outranks_everything() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(10),
            TraceEvent::FaultInjected { spec: 0, unit: 0 },
        );
        t.emit(
            Time::from_ps(60),
            TraceEvent::FaultRecovered { spec: 0, unit: 0 },
        );
        t.emit(
            Time::from_ps(100),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 100,
                task: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles[0].recovery_ps, 50);
        assert_eq!(tiles[0].verdict, "fault-recovery-bound");
    }

    #[test]
    fn memory_bound_via_miss_rate() {
        let mut t = Tracer::bounded(16);
        for _ in 0..6 {
            t.emit(
                Time::from_ps(1),
                TraceEvent::CacheMiss { port: 0, level: 1 },
            );
        }
        for _ in 0..4 {
            t.emit(Time::from_ps(1), TraceEvent::CacheHit { port: 0, level: 1 });
        }
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert!((tiles[0].miss_rate() - 0.6).abs() < 1e-12);
        assert_eq!(tiles[0].verdict, "memory-bound");
    }

    #[test]
    fn uneven_last_tile_gets_remainder() {
        let t = Tracer::bounded(1);
        let layout = Layout::new(6, 4);
        let tiles = attribute(
            t.records(),
            &layout,
            Time::from_ps(10),
            &latency::utilization(t.records(), &layout, Time::from_ps(10)),
        );
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].pes, 4);
        assert_eq!(tiles[1].pes, 2);
        assert_eq!(tiles[1].capacity_ps, 20);
    }
}
