//! Per-tile bottleneck attribution.
//!
//! For each tile the run's capacity (`elapsed × PEs in the tile`) is split
//! into compute (task execution), steal waiting (time a PE's TMU had a
//! steal request in flight), fault recovery (injection-to-recovery windows
//! of faults attributed to the tile) and the remainder (idle / queueing /
//! memory stalls). Combined with the tile's L1 miss rate and the global
//! DRAM-saturation signal, a deterministic rule ladder issues one verdict
//! per tile:
//!
//! 1. recovery > 25% of capacity → `fault-recovery-bound`
//! 2. steal wait > 25% of capacity → `steal-bound`
//! 3. L1 miss rate > 30%, or the DRAM model saturated → `memory-bound`
//! 4. compute > 60% of capacity → `compute-bound`
//! 5. otherwise → `underutilized`
//!
//! The thresholds are integer comparisons on picosecond totals, so the
//! verdicts are exactly reproducible.

use std::collections::BTreeMap;

use pxl_sim::{Time, TraceEvent, TraceRecord};

use crate::latency::UnitUtilization;
use crate::Layout;

/// One tile's time attribution and verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBottleneck {
    /// Tile index.
    pub tile: u32,
    /// PEs in this tile.
    pub pes: u32,
    /// Capacity: `elapsed × pes` picoseconds.
    pub capacity_ps: u64,
    /// Task execution time summed over the tile's PEs.
    pub busy_ps: u64,
    /// Time the tile's PEs had steal requests in flight.
    pub steal_wait_ps: u64,
    /// Injection-to-recovery time of faults attributed to the tile.
    pub recovery_ps: u64,
    /// L1 hits issued by the tile's ports.
    pub l1_hits: u64,
    /// L1 misses issued by the tile's ports.
    pub l1_misses: u64,
    /// DRAM-saturation events (global — same value on every tile).
    pub dram_saturated: u64,
    /// The verdict from the rule ladder above.
    pub verdict: &'static str,
}

impl TileBottleneck {
    /// Compute fraction of capacity.
    pub fn busy_frac(&self) -> f64 {
        frac(self.busy_ps, self.capacity_ps)
    }

    /// Steal-wait fraction of capacity.
    pub fn steal_frac(&self) -> f64 {
        frac(self.steal_wait_ps, self.capacity_ps)
    }

    /// Fault-recovery fraction of capacity.
    pub fn recovery_frac(&self) -> f64 {
        frac(self.recovery_ps, self.capacity_ps)
    }

    /// L1 miss rate of the tile's ports.
    pub fn miss_rate(&self) -> f64 {
        frac(self.l1_misses, self.l1_hits + self.l1_misses)
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn verdict(t: &TileBottleneck) -> &'static str {
    let cap = t.capacity_ps;
    if t.recovery_ps * 4 > cap {
        "fault-recovery-bound"
    } else if t.steal_wait_ps * 4 > cap {
        "steal-bound"
    } else if t.l1_misses * 10 > (t.l1_hits + t.l1_misses) * 3 || t.dram_saturated > 0 {
        "memory-bound"
    } else if t.busy_ps * 5 > cap * 3 {
        "compute-bound"
    } else {
        "underutilized"
    }
}

/// One chip's utilization rollup and verdict in a multi-chip cluster run.
///
/// The chip aggregates its tiles' busy time, and additionally owns the
/// inter-chip link traffic it *sends*: every `link_xfer` trace event
/// charges its serialization stall (`wait_ps`) to the source chip, since
/// that is where messages queue when the link's bandwidth bound is the
/// constraint. The verdict ladder:
///
/// 1. link stall > 10% of capacity → `link-bound` (the link is a single
///    shared resource, so a much smaller fraction than a per-PE class
///    already serializes the whole chip)
/// 2. compute > 60% of capacity → `compute-bound`
/// 3. otherwise → `underutilized`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipBottleneck {
    /// Chip index.
    pub chip: u32,
    /// PEs on this chip.
    pub pes: u32,
    /// Capacity: `elapsed × pes` picoseconds.
    pub capacity_ps: u64,
    /// Task execution time summed over the chip's PEs.
    pub busy_ps: u64,
    /// Inter-chip messages this chip sent.
    pub link_msgs: u64,
    /// Of those, steal-protocol messages (requests + replies).
    pub link_steal_msgs: u64,
    /// Serialization stall accumulated by this chip's outbound messages.
    pub link_wait_ps: u64,
    /// The verdict from the ladder above.
    pub verdict: &'static str,
}

impl ChipBottleneck {
    /// Compute fraction of capacity.
    pub fn busy_frac(&self) -> f64 {
        frac(self.busy_ps, self.capacity_ps)
    }

    /// Outbound link-stall fraction of capacity.
    pub fn link_frac(&self) -> f64 {
        frac(self.link_wait_ps, self.capacity_ps)
    }
}

fn chip_verdict(c: &ChipBottleneck) -> &'static str {
    let cap = c.capacity_ps;
    if c.link_wait_ps * 10 > cap {
        "link-bound"
    } else if c.busy_ps * 5 > cap * 3 {
        "compute-bound"
    } else {
        "underutilized"
    }
}

/// Rolls the run up per chip. Returns an empty vector for unclustered
/// layouts (`chips() <= 1`), so single-chip reports carry no chip section
/// and stay byte-identical to their pre-cluster form.
pub fn attribute_chips(
    records: &[TraceRecord],
    layout: &Layout,
    elapsed: Time,
    units: &[UnitUtilization],
) -> Vec<ChipBottleneck> {
    let chips = layout.chips();
    if chips <= 1 {
        return Vec::new();
    }
    let mut out: Vec<ChipBottleneck> = (0..chips)
        .map(|c| ChipBottleneck {
            chip: c as u32,
            pes: 0,
            capacity_ps: 0,
            busy_ps: 0,
            link_msgs: 0,
            link_steal_msgs: 0,
            link_wait_ps: 0,
            verdict: "underutilized",
        })
        .collect();
    for unit in 0..layout.units as u32 {
        out[layout.chip_of(unit)].pes += 1;
    }
    for c in &mut out {
        c.capacity_ps = elapsed.as_ps() * c.pes as u64;
    }
    for u in units {
        out[layout.chip_of(u.unit)].busy_ps += u.busy_ps;
    }
    for r in records {
        if let TraceEvent::LinkXfer {
            src_chip,
            class,
            wait_ps,
            ..
        } = r.event
        {
            let chip = &mut out[(src_chip as usize).min(chips - 1)];
            chip.link_msgs += 1;
            // Classes 0/1 are the steal request/reply protocol.
            if class <= 1 {
                chip.link_steal_msgs += 1;
            }
            chip.link_wait_ps += wait_ps;
        }
    }
    for c in &mut out {
        c.verdict = chip_verdict(c);
    }
    out
}

/// Attributes the run's time to bottleneck classes per tile.
///
/// Steal waits come from per-thief FIFO request/response matching; fault
/// windows from pairing `FaultInjected` with the `FaultRecovered` /
/// `FaultUnrecovered` of the same spec (unrecovered faults charge until
/// the end of the run). Cache events attribute by issuing port, steals and
/// faults by the unit in the event.
pub fn attribute(
    records: &[TraceRecord],
    layout: &Layout,
    elapsed: Time,
    units: &[UnitUtilization],
) -> Vec<TileBottleneck> {
    let tiles = layout.tiles();
    let mut out: Vec<TileBottleneck> = (0..tiles)
        .map(|t| {
            let pes = if t + 1 == tiles {
                (layout.units - t * layout.pes_per_tile).max(1)
            } else {
                layout.pes_per_tile
            };
            TileBottleneck {
                tile: t as u32,
                pes: pes as u32,
                capacity_ps: elapsed.as_ps() * pes as u64,
                busy_ps: 0,
                steal_wait_ps: 0,
                recovery_ps: 0,
                l1_hits: 0,
                l1_misses: 0,
                dram_saturated: 0,
                verdict: "underutilized",
            }
        })
        .collect();

    for u in units {
        out[layout.tile_of(u.unit)].busy_ps += u.busy_ps;
    }

    let mut steal_start: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut fault_start: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
    let mut dram = 0u64;
    for r in records {
        let t_ps = r.at.as_ps();
        match r.event {
            TraceEvent::StealRequest { thief, .. } => {
                steal_start.entry(thief).or_default().push(t_ps);
            }
            TraceEvent::StealGrant { thief, .. } | TraceEvent::StealFail { thief, .. } => {
                let queue = steal_start.entry(thief).or_default();
                if !queue.is_empty() {
                    let start = queue.remove(0);
                    out[layout.tile_of(thief)].steal_wait_ps += t_ps.saturating_sub(start);
                }
            }
            TraceEvent::FaultInjected { spec, unit } => {
                fault_start.insert(spec, (t_ps, unit));
            }
            TraceEvent::FaultRecovered { spec, .. } | TraceEvent::FaultUnrecovered { spec, .. } => {
                if let Some((start, unit)) = fault_start.remove(&spec) {
                    out[layout.tile_of(unit)].recovery_ps += t_ps.saturating_sub(start);
                }
            }
            TraceEvent::CacheHit { port, level: 1 } => {
                out[layout.tile_of(port)].l1_hits += 1;
            }
            TraceEvent::CacheMiss { port, level: 1 } => {
                out[layout.tile_of(port)].l1_misses += 1;
            }
            TraceEvent::DramSaturated { .. } => dram += 1,
            _ => {}
        }
    }
    // A fault never resolved charges its window to the end of the run.
    for (start, unit) in fault_start.into_values() {
        out[layout.tile_of(unit)].recovery_ps += elapsed.as_ps().saturating_sub(start);
    }

    for t in &mut out {
        t.dram_saturated = dram;
        t.verdict = verdict(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency;
    use pxl_sim::Tracer;

    fn attribute_of(t: &mut Tracer, layout: Layout, elapsed: u64) -> Vec<TileBottleneck> {
        t.finish();
        let elapsed = Time::from_ps(elapsed);
        let units = latency::utilization(t.records(), &layout, elapsed);
        attribute(t.records(), &layout, elapsed, &units)
    }

    #[test]
    fn compute_bound_tile() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(90),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 90,
                task: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].verdict, "compute-bound");
        assert!((tiles[0].busy_frac() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn steal_bound_tile() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(0),
            TraceEvent::StealRequest {
                thief: 0,
                victim: 1,
            },
        );
        t.emit(
            Time::from_ps(40),
            TraceEvent::StealFail {
                thief: 0,
                victim: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles[0].steal_wait_ps, 40);
        assert_eq!(tiles[0].verdict, "steal-bound");
    }

    #[test]
    fn fault_recovery_outranks_everything() {
        let mut t = Tracer::bounded(16);
        t.emit(
            Time::from_ps(10),
            TraceEvent::FaultInjected { spec: 0, unit: 0 },
        );
        t.emit(
            Time::from_ps(60),
            TraceEvent::FaultRecovered { spec: 0, unit: 0 },
        );
        t.emit(
            Time::from_ps(100),
            TraceEvent::TaskComplete {
                unit: 0,
                ty: 0,
                busy_ps: 100,
                task: 1,
            },
        );
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert_eq!(tiles[0].recovery_ps, 50);
        assert_eq!(tiles[0].verdict, "fault-recovery-bound");
    }

    #[test]
    fn memory_bound_via_miss_rate() {
        let mut t = Tracer::bounded(16);
        for _ in 0..6 {
            t.emit(
                Time::from_ps(1),
                TraceEvent::CacheMiss { port: 0, level: 1 },
            );
        }
        for _ in 0..4 {
            t.emit(Time::from_ps(1), TraceEvent::CacheHit { port: 0, level: 1 });
        }
        let tiles = attribute_of(&mut t, Layout::new(1, 1), 100);
        assert!((tiles[0].miss_rate() - 0.6).abs() < 1e-12);
        assert_eq!(tiles[0].verdict, "memory-bound");
    }

    #[test]
    fn unclustered_layouts_have_no_chip_rollup() {
        let t = Tracer::bounded(1);
        let layout = Layout::new(8, 4);
        let chips = attribute_chips(
            t.records(),
            &layout,
            Time::from_ps(100),
            &latency::utilization(t.records(), &layout, Time::from_ps(100)),
        );
        assert!(chips.is_empty(), "no cluster, no chip section");
    }

    #[test]
    fn link_stall_turns_a_chip_link_bound() {
        let mut t = Tracer::bounded(16);
        // Chip 0 sends two messages, one badly stalled; chip 1 computes.
        t.emit(
            Time::from_ps(10),
            TraceEvent::LinkXfer {
                src_chip: 0,
                dst_chip: 1,
                class: 0,
                wait_ps: 50,
            },
        );
        t.emit(
            Time::from_ps(20),
            TraceEvent::LinkXfer {
                src_chip: 0,
                dst_chip: 1,
                class: 3,
                wait_ps: 0,
            },
        );
        t.emit(
            Time::from_ps(100),
            TraceEvent::TaskComplete {
                unit: 2,
                ty: 0,
                busy_ps: 90,
                task: 1,
            },
        );
        t.finish();
        // 4 units, 2 per tile, 1 tile per chip → 2 chips of 2 PEs each.
        let layout = Layout::clustered(4, 2, 1);
        let elapsed = Time::from_ps(100);
        let units = latency::utilization(t.records(), &layout, elapsed);
        let chips = attribute_chips(t.records(), &layout, elapsed, &units);
        assert_eq!(chips.len(), 2);
        assert_eq!(chips[0].link_msgs, 2);
        assert_eq!(chips[0].link_steal_msgs, 1);
        assert_eq!(chips[0].link_wait_ps, 50);
        // 50 ps of link stall against 200 ps of capacity is 25% > 10%.
        assert_eq!(chips[0].verdict, "link-bound");
        // Chip 1 sent nothing and is 45% busy: under the compute bar.
        assert_eq!(chips[1].link_msgs, 0);
        assert_eq!(chips[1].busy_ps, 90);
        assert_eq!(chips[1].verdict, "underutilized");
    }

    #[test]
    fn uneven_last_tile_gets_remainder() {
        let t = Tracer::bounded(1);
        let layout = Layout::new(6, 4);
        let tiles = attribute(
            t.records(),
            &layout,
            Time::from_ps(10),
            &latency::utilization(t.records(), &layout, Time::from_ps(10)),
        );
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].pes, 4);
        assert_eq!(tiles[1].pes, 2);
        assert_eq!(tiles[1].capacity_ps, 20);
    }
}
