//! Parses [`pxl_sim::Tracer::to_jsonl`] output back into trace records.
//!
//! Lexing is delegated to the general [`pxl_sim::json::JsonValue`] reader;
//! this module only maps the flat trace dialect — one object per line, a
//! `"kind"` string plus unsigned-integer fields — onto [`TraceEvent`].
//! Round-tripping is tested against the emitter: `parse_line(record.to_json())`
//! must reproduce the record for every event kind.

use pxl_sim::json::JsonValue;
use pxl_sim::{Time, TraceEvent, TraceRecord};

fn field(value: &JsonValue, key: &str) -> Result<u64, String> {
    let field = value
        .get(key)
        .ok_or_else(|| format!("missing field {key}"))?;
    field
        .as_u64()
        .ok_or_else(|| format!("field {key}={}: not an unsigned integer", field.to_json()))
}

/// Parses one JSONL trace line into a [`TraceRecord`].
///
/// # Errors
///
/// Returns a message naming the malformed or missing piece.
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let value = JsonValue::parse(line).map_err(|e| format!("not a JSON object: {e}: {line}"))?;
    if value.as_object().is_none() {
        return Err(format!("not a JSON object: {line}"));
    }
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing kind: {line}"))?;
    let f = |key: &str| field(&value, key);
    let event = match kind {
        "task_dispatch" => TraceEvent::TaskDispatch {
            unit: f("unit")? as u32,
            ty: f("ty")? as u8,
            task: f("task")?,
        },
        "task_complete" => TraceEvent::TaskComplete {
            unit: f("unit")? as u32,
            ty: f("ty")? as u8,
            busy_ps: f("busy_ps")?,
            task: f("task")?,
        },
        "spawn" => TraceEvent::Spawn {
            unit: f("unit")? as u32,
            ty: f("ty")? as u8,
            parent: f("parent")?,
            child: f("child")?,
        },
        "steal_request" => TraceEvent::StealRequest {
            thief: f("thief")? as u32,
            victim: f("victim")? as u32,
        },
        "steal_grant" => TraceEvent::StealGrant {
            thief: f("thief")? as u32,
            victim: f("victim")? as u32,
        },
        "steal_fail" => TraceEvent::StealFail {
            thief: f("thief")? as u32,
            victim: f("victim")? as u32,
        },
        "pstore_alloc" => TraceEvent::PStoreAlloc {
            tile: f("tile")? as u32,
            occupancy: f("occupancy")? as u32,
        },
        "pstore_join" => TraceEvent::PStoreJoin {
            tile: f("tile")? as u32,
            slot: f("slot")? as u8,
            task: f("task")?,
            from: f("from")?,
        },
        "pstore_dealloc" => TraceEvent::PStoreDealloc {
            tile: f("tile")? as u32,
            occupancy: f("occupancy")? as u32,
        },
        "cache_hit" => TraceEvent::CacheHit {
            port: f("port")? as u32,
            level: f("level")? as u8,
        },
        "cache_miss" => TraceEvent::CacheMiss {
            port: f("port")? as u32,
            level: f("level")? as u8,
        },
        "cache_evict" => TraceEvent::CacheEvict {
            port: f("port")? as u32,
            level: f("level")? as u8,
        },
        "dram_saturated" => TraceEvent::DramSaturated {
            epoch: f("epoch")?,
            committed_ps: f("committed_ps")?,
        },
        "fault.injected" => TraceEvent::FaultInjected {
            spec: f("spec")? as u32,
            unit: f("unit")? as u32,
        },
        "fault.recovered" => TraceEvent::FaultRecovered {
            spec: f("spec")? as u32,
            unit: f("unit")? as u32,
        },
        "fault.unrecovered" => TraceEvent::FaultUnrecovered {
            spec: f("spec")? as u32,
            unit: f("unit")? as u32,
        },
        "watchdog.stall" => TraceEvent::WatchdogStall {
            unit: f("unit")? as u32,
            idle_ps: f("idle_ps")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceRecord {
        at: Time::from_ps(f("t_ps")?),
        seq: f("seq")?,
        event,
    })
}

/// Parses a whole JSONL trace dump (blank lines ignored).
///
/// # Errors
///
/// Reports the first malformed line with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let events = [
            TraceEvent::TaskDispatch {
                unit: 1,
                ty: 2,
                task: 3,
            },
            TraceEvent::TaskComplete {
                unit: 1,
                ty: 2,
                busy_ps: 40,
                task: 3,
            },
            TraceEvent::Spawn {
                unit: 1,
                ty: 2,
                parent: 3,
                child: 4,
            },
            TraceEvent::StealRequest {
                thief: 1,
                victim: 2,
            },
            TraceEvent::StealGrant {
                thief: 1,
                victim: 2,
            },
            TraceEvent::StealFail {
                thief: 1,
                victim: 2,
            },
            TraceEvent::PStoreAlloc {
                tile: 1,
                occupancy: 2,
            },
            TraceEvent::PStoreJoin {
                tile: 1,
                slot: 2,
                task: 3,
                from: 4,
            },
            TraceEvent::PStoreDealloc {
                tile: 1,
                occupancy: 2,
            },
            TraceEvent::CacheHit { port: 1, level: 1 },
            TraceEvent::CacheMiss { port: 1, level: 2 },
            TraceEvent::CacheEvict { port: 1, level: 1 },
            TraceEvent::DramSaturated {
                epoch: 9,
                committed_ps: 77,
            },
            TraceEvent::FaultInjected { spec: 0, unit: 3 },
            TraceEvent::FaultRecovered { spec: 0, unit: 3 },
            TraceEvent::FaultUnrecovered { spec: 1, unit: 3 },
            TraceEvent::WatchdogStall {
                unit: 2,
                idle_ps: 500,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let record = TraceRecord {
                at: Time::from_ps(100 + i as u64),
                seq: i as u64,
                event,
            };
            let parsed =
                parse_line(&record.to_json()).unwrap_or_else(|e| panic!("{}: {e}", event.kind()));
            assert_eq!(parsed, record, "round-trip mismatch for {}", event.kind());
        }
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(parse_line("not json").unwrap_err().contains("not a JSON"));
        assert!(parse_line("[1,2]")
            .unwrap_err()
            .contains("not a JSON object"));
        assert!(parse_line("{\"t_ps\":1}").unwrap_err().contains("kind"));
        assert!(parse_line("{\"t_ps\":1,\"seq\":0,\"kind\":\"spawn\"}")
            .unwrap_err()
            .contains("missing field"));
        assert!(parse_line("{\"kind\":\"spawn\",\"unit\":-1}")
            .unwrap_err()
            .contains("unsigned"));
        assert!(parse_jsonl("{\"t_ps\":1,\"seq\":0,\"kind\":\"nope\"}\n")
            .unwrap_err()
            .starts_with("line 1:"));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "\n{\"t_ps\":5,\"seq\":0,\"kind\":\"steal_fail\",\"thief\":1,\"victim\":0}\n\n";
        let records = parse_jsonl(text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].at, Time::from_ps(5));
    }
}
