//! Memory-system substrate for the ParallelXL simulator.
//!
//! The paper integrates its accelerators into a general-purpose,
//! cache-coherent memory hierarchy (Section III-D): one L1 cache per
//! accelerator tile and per CPU core, an inclusive shared L2, a MOESI
//! snooping protocol, and a DDR3-1600 DRAM channel. This crate implements
//! that hierarchy as two cooperating halves:
//!
//! * **Functional memory** ([`func::Memory`]) — a sparse byte-addressable
//!   store holding the *actual data* every benchmark computes on, plus a
//!   bump [`func::Allocator`] for laying out inputs. Correctness of every
//!   simulated run is checked against golden references using this state.
//! * **Timing hierarchy** ([`system::MemorySystem`]) — a latency/bandwidth
//!   oracle that tracks per-line MOESI state in every L1 and the L2, models
//!   LRU replacement, next-line prefetching, bus and DRAM contention, and
//!   answers "when does this access complete?".
//!
//! A third module, [`zedboard`], models the constrained Zynq-7000 prototype
//! platform of Section V-B (stream buffers instead of coherent L1s, a single
//! bandwidth-limited ACP port), used to reproduce Fig. 6.

pub mod bandwidth;
pub mod cache;
pub mod func;
pub mod system;
pub mod zedboard;

pub use bandwidth::BandwidthMeter;
pub use cache::{CacheArray, LineState};
pub use func::{Allocator, Memory};
pub use system::{AccessKind, MemorySystem, PortId};
pub use zedboard::ZedboardMemory;
