//! Set-associative cache arrays with MOESI line states.
//!
//! [`CacheArray`] is the tag/state half of a cache (the data half lives in
//! the shared functional [`crate::Memory`]). One array models each
//! accelerator-tile L1, each CPU-core L1, and the shared L2. The coherence
//! controller in [`crate::system`] drives the per-line [`LineState`] machine.

use pxl_sim::config::CacheParams;

/// MOESI coherence state of one cache line.
///
/// The paper's platform (Table III) keeps accelerator L1s, CPU L1s and the
/// shared L2 coherent with a MOESI snooping protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Modified: exclusive and dirty.
    Modified,
    /// Owned: shared and dirty; this cache supplies data on snoops.
    Owned,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly multiple copies, clean in this cache.
    Shared,
}

impl LineState {
    /// Whether this cache must write the line back when evicting it.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// Whether a store may proceed without a bus upgrade.
    pub fn can_write_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

#[derive(Debug, Clone)]
struct Way {
    /// Line address (byte address >> line_shift); `None` when invalid.
    line: Option<u64>,
    state: LineState,
    /// LRU timestamp (monotone per-array counter).
    last_use: u64,
}

/// The tag/state array of one set-associative cache with true-LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use pxl_mem::cache::{CacheArray, LineState};
/// use pxl_sim::config::CacheParams;
///
/// let mut c = CacheArray::new(&CacheParams::accel_l1_32k());
/// assert!(c.lookup(0x1000).is_none());
/// c.install(0x1000, LineState::Exclusive);
/// assert_eq!(c.lookup(0x1000), Some(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Way>>,
    line_shift: u32,
    set_mask: u64,
    use_counter: u64,
}

impl CacheArray {
    /// Builds an array from cache geometry parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not realizable (see
    /// [`CacheParams::num_sets`]).
    pub fn new(params: &CacheParams) -> Self {
        let num_sets = params.num_sets();
        let line_shift = params.line_bytes.trailing_zeros();
        assert_eq!(
            1usize << line_shift,
            params.line_bytes,
            "line size must be a power of two"
        );
        CacheArray {
            sets: vec![
                vec![
                    Way {
                        line: None,
                        state: LineState::Shared,
                        last_use: 0,
                    };
                    params.ways
                ];
                num_sets
            ],
            line_shift,
            set_mask: (num_sets - 1) as u64,
            use_counter: 0,
        }
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up a byte address; on hit returns the line state and refreshes
    /// LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        self.use_counter += 1;
        let tick = self.use_counter;
        self.sets[idx]
            .iter_mut()
            .find(|w| w.line == Some(line))
            .map(|w| {
                w.last_use = tick;
                w.state
            })
    }

    /// Peeks at a line's state without touching LRU (for snoops).
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        self.sets[self.set_index(line)]
            .iter()
            .find(|w| w.line == Some(line))
            .map(|w| w.state)
    }

    /// Sets the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        let w = self.sets[idx]
            .iter_mut()
            .find(|w| w.line == Some(line))
            .expect("set_state on a non-resident line");
        w.state = state;
    }

    /// Installs a line (choosing an LRU victim) and returns the evicted
    /// line's byte address and state, if a valid line was displaced.
    pub fn install(&mut self, addr: u64, state: LineState) -> Option<(u64, LineState)> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        self.use_counter += 1;
        let tick = self.use_counter;
        let set = &mut self.sets[idx];
        // Re-installing an already-resident line just updates it.
        if let Some(w) = set.iter_mut().find(|w| w.line == Some(line)) {
            w.state = state;
            w.last_use = tick;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.line.is_none() { 0 } else { w.last_use + 1 })
            .expect("cache set has at least one way");
        let evicted = victim.line.map(|l| (l << self.line_shift, victim.state));
        victim.line = Some(line);
        victim.state = state;
        victim.last_use = tick;
        evicted
    }

    /// Removes a line if resident, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        let w = self.sets[idx].iter_mut().find(|w| w.line == Some(line))?;
        let s = w.state;
        w.line = None;
        Some(s)
    }

    /// Number of valid lines currently resident (O(size); for tests/stats).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.line.is_some())
            .count()
    }

    /// Invalidates everything (e.g. between benchmark phases).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            for w in set {
                w.line = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways x 64B lines = 256 B.
        let params = CacheParams {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: pxl_sim::Clock::ghz1("t"),
        };
        CacheArray::new(&params)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = tiny();
        assert_eq!(c.lookup(0), None);
        c.install(0, LineState::Exclusive);
        assert_eq!(c.lookup(0), Some(LineState::Exclusive));
        assert_eq!(c.lookup(63), Some(LineState::Exclusive)); // same line
        assert_eq!(c.lookup(64), None); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line numbers).
        c.install(0, LineState::Shared); // line 0
        c.install(2 * 64, LineState::Shared);
        // Touch line 0 so line 2 becomes LRU.
        assert!(c.lookup(0).is_some());
        let evicted = c.install(4 * 64, LineState::Shared);
        assert_eq!(evicted, Some((2 * 64, LineState::Shared)));
        assert!(c.peek(0).is_some());
        assert!(c.peek(4 * 64).is_some());
        assert!(c.peek(2 * 64).is_none());
    }

    #[test]
    fn install_prefers_invalid_ways() {
        let mut c = tiny();
        c.install(0, LineState::Modified);
        // Second install in the same set must use the empty way, not evict.
        assert_eq!(c.install(2 * 64, LineState::Shared), None);
    }

    #[test]
    fn reinstall_updates_state_in_place() {
        let mut c = tiny();
        c.install(0, LineState::Shared);
        assert_eq!(c.install(0, LineState::Modified), None);
        assert_eq!(c.peek(0), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.install(0, LineState::Owned);
        assert_eq!(c.invalidate(0), Some(LineState::Owned));
        assert_eq!(c.invalidate(0), None);
        c.install(0, LineState::Shared);
        c.install(64, LineState::Shared);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn state_predicates() {
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.is_dirty());
        assert!(LineState::Modified.can_write_silently());
        assert!(LineState::Exclusive.can_write_silently());
        assert!(!LineState::Owned.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_missing_line_panics() {
        let mut c = tiny();
        c.set_state(0, LineState::Shared);
    }
}
