//! Set-associative cache arrays with MOESI line states.
//!
//! [`CacheArray`] is the tag/state half of a cache (the data half lives in
//! the shared functional [`crate::Memory`]). One array models each
//! accelerator-tile L1, each CPU-core L1, and the shared L2. The coherence
//! controller in [`crate::system`] drives the per-line [`LineState`] machine.

use pxl_sim::config::CacheParams;
use pxl_sim::json::JsonValue;

/// MOESI coherence state of one cache line.
///
/// The paper's platform (Table III) keeps accelerator L1s, CPU L1s and the
/// shared L2 coherent with a MOESI snooping protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Modified: exclusive and dirty.
    Modified,
    /// Owned: shared and dirty; this cache supplies data on snoops.
    Owned,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly multiple copies, clean in this cache.
    Shared,
}

impl LineState {
    /// Whether this cache must write the line back when evicting it.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// Whether a store may proceed without a bus upgrade.
    pub fn can_write_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// The tag/state array of one set-associative cache with true-LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use pxl_mem::cache::{CacheArray, LineState};
/// use pxl_sim::config::CacheParams;
///
/// let mut c = CacheArray::new(&CacheParams::accel_l1_32k());
/// assert!(c.lookup(0x1000).is_none());
/// c.install(0x1000, LineState::Exclusive);
/// assert_eq!(c.lookup(0x1000), Some(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// Tag of each way of each set, `assoc` consecutive entries per set:
    /// `line + 1`, with 0 marking an invalid way. Struct-of-arrays so a set
    /// probe compares `assoc` adjacent `u64`s (one or two cache lines)
    /// instead of striding over wider records, and so construction is a
    /// zeroed (lazily mapped) allocation rather than an eager pattern fill.
    lines: Vec<u64>,
    /// Coherence state per way, encoded so 0 = `Shared` (the all-zero
    /// fresh array matches the eager initializer this replaced).
    states: Vec<u8>,
    /// LRU timestamp per way (monotone per-array counter).
    last_use: Vec<u64>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    use_counter: u64,
}

/// Internal `states` byte for a [`LineState`]; inverse of [`dec_state`].
/// The snapshot wire value is `3 - enc_state(s)`, preserving the recorded
/// encoding (Modified=0 … Shared=3) while keeping `Shared == 0` in memory.
#[inline]
fn enc_state(s: LineState) -> u8 {
    match s {
        LineState::Shared => 0,
        LineState::Exclusive => 1,
        LineState::Owned => 2,
        LineState::Modified => 3,
    }
}

#[inline]
fn dec_state(b: u8) -> LineState {
    match b {
        0 => LineState::Shared,
        1 => LineState::Exclusive,
        2 => LineState::Owned,
        _ => LineState::Modified,
    }
}

impl CacheArray {
    /// Builds an array from cache geometry parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not realizable (see
    /// [`CacheParams::num_sets`]).
    pub fn new(params: &CacheParams) -> Self {
        let num_sets = params.num_sets();
        let line_shift = params.line_bytes.trailing_zeros();
        assert_eq!(
            1usize << line_shift,
            params.line_bytes,
            "line size must be a power of two"
        );
        CacheArray {
            lines: vec![0; num_sets * params.ways],
            states: vec![0; num_sets * params.ways],
            last_use: vec![0; num_sets * params.ways],
            assoc: params.ways,
            line_shift,
            set_mask: (num_sets - 1) as u64,
            use_counter: 0,
        }
    }

    /// Index into the flat per-way arrays of way `way` of the set holding
    /// `line`, or of the set's first way when searching.
    #[inline]
    fn base(&self, line: u64) -> usize {
        self.set_index(line) * self.assoc
    }

    /// Way index (flat) of `line` if resident: a linear compare over the
    /// set's `assoc` adjacent tags.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.base(line);
        self.lines[base..base + self.assoc]
            .iter()
            .position(|&l| l == line + 1)
            .map(|i| base + i)
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up a byte address; on hit returns the line state and refreshes
    /// LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        self.use_counter += 1;
        let w = self.find(line)?;
        self.last_use[w] = self.use_counter;
        Some(dec_state(self.states[w]))
    }

    /// Peeks at a line's state without touching LRU (for snoops).
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        self.find(self.line_of(addr))
            .map(|w| dec_state(self.states[w]))
    }

    /// Sets the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let w = self
            .find(self.line_of(addr))
            .expect("set_state on a non-resident line");
        self.states[w] = enc_state(state);
    }

    /// Installs a line (choosing an LRU victim) and returns the evicted
    /// line's byte address and state, if a valid line was displaced.
    pub fn install(&mut self, addr: u64, state: LineState) -> Option<(u64, LineState)> {
        let line = self.line_of(addr);
        self.use_counter += 1;
        let tick = self.use_counter;
        // Re-installing an already-resident line just updates it.
        if let Some(w) = self.find(line) {
            self.states[w] = enc_state(state);
            self.last_use[w] = tick;
            return None;
        }
        let base = self.base(line);
        let victim = (base..base + self.assoc)
            .min_by_key(|&w| {
                if self.lines[w] == 0 {
                    0
                } else {
                    self.last_use[w] + 1
                }
            })
            .expect("cache set has at least one way");
        let evicted = match self.lines[victim] {
            0 => None,
            l => Some(((l - 1) << self.line_shift, dec_state(self.states[victim]))),
        };
        self.lines[victim] = line + 1;
        self.states[victim] = enc_state(state);
        self.last_use[victim] = tick;
        evicted
    }

    /// Removes a line if resident, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let w = self.find(self.line_of(addr))?;
        self.lines[w] = 0;
        Some(dec_state(self.states[w]))
    }

    /// Number of valid lines currently resident (O(size); for tests/stats).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|&&l| l != 0).count()
    }

    /// Invalidates everything (e.g. between benchmark phases).
    pub fn flush_all(&mut self) {
        self.lines.fill(0);
    }

    /// Serializes tag/state/LRU for snapshot/restore:
    /// `{"use_counter":N,"sets":[[[line+1,state,last_use],...],...]}`.
    /// `line+1` is zero for an invalid way (line addresses fit u64-1
    /// comfortably since they are byte addresses shifted right).
    pub fn state_to_json_value(&self) -> JsonValue {
        let sets = (0..self.lines.len() / self.assoc)
            .map(|si| {
                JsonValue::Array(
                    (si * self.assoc..(si + 1) * self.assoc)
                        .map(|w| {
                            JsonValue::Array(vec![
                                JsonValue::num_u64(self.lines[w]),
                                JsonValue::num_u64(3 - self.states[w] as u64),
                                JsonValue::num_u64(self.last_use[w]),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        JsonValue::Object(vec![
            (
                "use_counter".to_owned(),
                JsonValue::num_u64(self.use_counter),
            ),
            ("sets".to_owned(), JsonValue::Array(sets)),
        ])
    }

    /// Restores a state captured by [`CacheArray::state_to_json_value`]
    /// into an array of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns a message on geometry mismatch or malformed entries.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        self.use_counter = value
            .get("use_counter")
            .and_then(JsonValue::as_u64)
            .ok_or("cache state: missing use_counter")?;
        let sets = value
            .get("sets")
            .and_then(JsonValue::as_array)
            .ok_or("cache state: missing sets")?;
        let num_sets = self.lines.len() / self.assoc;
        if sets.len() != num_sets {
            return Err(format!(
                "cache state: {} sets for a {num_sets}-set array",
                sets.len(),
            ));
        }
        for (si, set) in sets.iter().enumerate() {
            let ways = set
                .as_array()
                .filter(|w| w.len() == self.assoc)
                .ok_or_else(|| format!("cache state: set {si} has the wrong way count"))?;
            for (wi, way) in ways.iter().enumerate() {
                let triple = way
                    .as_array()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| format!("cache state: set {si} way is not a triple"))?;
                let field = |i: usize| {
                    triple[i]
                        .as_u64()
                        .ok_or_else(|| format!("cache state: set {si} holds a non-u64"))
                };
                let w = si * self.assoc + wi;
                self.lines[w] = field(0)?;
                self.states[w] = match field(1)? {
                    wire @ 0..=3 => 3 - wire as u8,
                    other => return Err(format!("cache state: unknown line state {other}")),
                };
                self.last_use[w] = field(2)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways x 64B lines = 256 B.
        let params = CacheParams {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: pxl_sim::Clock::ghz1("t"),
        };
        CacheArray::new(&params)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = tiny();
        assert_eq!(c.lookup(0), None);
        c.install(0, LineState::Exclusive);
        assert_eq!(c.lookup(0), Some(LineState::Exclusive));
        assert_eq!(c.lookup(63), Some(LineState::Exclusive)); // same line
        assert_eq!(c.lookup(64), None); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line numbers).
        c.install(0, LineState::Shared); // line 0
        c.install(2 * 64, LineState::Shared);
        // Touch line 0 so line 2 becomes LRU.
        assert!(c.lookup(0).is_some());
        let evicted = c.install(4 * 64, LineState::Shared);
        assert_eq!(evicted, Some((2 * 64, LineState::Shared)));
        assert!(c.peek(0).is_some());
        assert!(c.peek(4 * 64).is_some());
        assert!(c.peek(2 * 64).is_none());
    }

    #[test]
    fn install_prefers_invalid_ways() {
        let mut c = tiny();
        c.install(0, LineState::Modified);
        // Second install in the same set must use the empty way, not evict.
        assert_eq!(c.install(2 * 64, LineState::Shared), None);
    }

    #[test]
    fn reinstall_updates_state_in_place() {
        let mut c = tiny();
        c.install(0, LineState::Shared);
        assert_eq!(c.install(0, LineState::Modified), None);
        assert_eq!(c.peek(0), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.install(0, LineState::Owned);
        assert_eq!(c.invalidate(0), Some(LineState::Owned));
        assert_eq!(c.invalidate(0), None);
        c.install(0, LineState::Shared);
        c.install(64, LineState::Shared);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn state_round_trip_keeps_lru_behavior() {
        let mut a = tiny();
        a.install(0, LineState::Modified);
        a.install(2 * 64, LineState::Shared);
        a.install(64, LineState::Owned);
        assert!(a.lookup(0).is_some()); // refresh LRU on line 0
        let state = a.state_to_json_value();
        let mut b = tiny();
        b.restore_state(&state).unwrap();
        assert_eq!(b.peek(0), Some(LineState::Modified));
        assert_eq!(b.peek(64), Some(LineState::Owned));
        // Same LRU victim choice after restore.
        assert_eq!(
            a.install(4 * 64, LineState::Shared),
            b.install(4 * 64, LineState::Shared)
        );
        assert_eq!(
            a.state_to_json_value().to_json(),
            b.state_to_json_value().to_json()
        );
        // Geometry mismatch is refused.
        let params = CacheParams {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: pxl_sim::Clock::ghz1("t"),
        };
        let mut wrong = CacheArray::new(&params);
        assert!(wrong.restore_state(&state).unwrap_err().contains("sets"));
    }

    #[test]
    fn state_predicates() {
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.is_dirty());
        assert!(LineState::Modified.can_write_silently());
        assert!(LineState::Exclusive.can_write_silently());
        assert!(!LineState::Owned.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_missing_line_panics() {
        let mut c = tiny();
        c.set_state(0, LineState::Shared);
    }
}
