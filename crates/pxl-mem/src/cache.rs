//! Set-associative cache arrays with MOESI line states.
//!
//! [`CacheArray`] is the tag/state half of a cache (the data half lives in
//! the shared functional [`crate::Memory`]). One array models each
//! accelerator-tile L1, each CPU-core L1, and the shared L2. The coherence
//! controller in [`crate::system`] drives the per-line [`LineState`] machine.

use pxl_sim::config::CacheParams;
use pxl_sim::json::JsonValue;

/// MOESI coherence state of one cache line.
///
/// The paper's platform (Table III) keeps accelerator L1s, CPU L1s and the
/// shared L2 coherent with a MOESI snooping protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Modified: exclusive and dirty.
    Modified,
    /// Owned: shared and dirty; this cache supplies data on snoops.
    Owned,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly multiple copies, clean in this cache.
    Shared,
}

impl LineState {
    /// Whether this cache must write the line back when evicting it.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// Whether a store may proceed without a bus upgrade.
    pub fn can_write_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

#[derive(Debug, Clone)]
struct Way {
    /// Line address (byte address >> line_shift); `None` when invalid.
    line: Option<u64>,
    state: LineState,
    /// LRU timestamp (monotone per-array counter).
    last_use: u64,
}

/// The tag/state array of one set-associative cache with true-LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use pxl_mem::cache::{CacheArray, LineState};
/// use pxl_sim::config::CacheParams;
///
/// let mut c = CacheArray::new(&CacheParams::accel_l1_32k());
/// assert!(c.lookup(0x1000).is_none());
/// c.install(0x1000, LineState::Exclusive);
/// assert_eq!(c.lookup(0x1000), Some(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Way>>,
    line_shift: u32,
    set_mask: u64,
    use_counter: u64,
}

impl CacheArray {
    /// Builds an array from cache geometry parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not realizable (see
    /// [`CacheParams::num_sets`]).
    pub fn new(params: &CacheParams) -> Self {
        let num_sets = params.num_sets();
        let line_shift = params.line_bytes.trailing_zeros();
        assert_eq!(
            1usize << line_shift,
            params.line_bytes,
            "line size must be a power of two"
        );
        CacheArray {
            sets: vec![
                vec![
                    Way {
                        line: None,
                        state: LineState::Shared,
                        last_use: 0,
                    };
                    params.ways
                ];
                num_sets
            ],
            line_shift,
            set_mask: (num_sets - 1) as u64,
            use_counter: 0,
        }
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up a byte address; on hit returns the line state and refreshes
    /// LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        self.use_counter += 1;
        let tick = self.use_counter;
        self.sets[idx]
            .iter_mut()
            .find(|w| w.line == Some(line))
            .map(|w| {
                w.last_use = tick;
                w.state
            })
    }

    /// Peeks at a line's state without touching LRU (for snoops).
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        self.sets[self.set_index(line)]
            .iter()
            .find(|w| w.line == Some(line))
            .map(|w| w.state)
    }

    /// Sets the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        let w = self.sets[idx]
            .iter_mut()
            .find(|w| w.line == Some(line))
            .expect("set_state on a non-resident line");
        w.state = state;
    }

    /// Installs a line (choosing an LRU victim) and returns the evicted
    /// line's byte address and state, if a valid line was displaced.
    pub fn install(&mut self, addr: u64, state: LineState) -> Option<(u64, LineState)> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        self.use_counter += 1;
        let tick = self.use_counter;
        let set = &mut self.sets[idx];
        // Re-installing an already-resident line just updates it.
        if let Some(w) = set.iter_mut().find(|w| w.line == Some(line)) {
            w.state = state;
            w.last_use = tick;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.line.is_none() { 0 } else { w.last_use + 1 })
            .expect("cache set has at least one way");
        let evicted = victim.line.map(|l| (l << self.line_shift, victim.state));
        victim.line = Some(line);
        victim.state = state;
        victim.last_use = tick;
        evicted
    }

    /// Removes a line if resident, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let idx = self.set_index(line);
        let w = self.sets[idx].iter_mut().find(|w| w.line == Some(line))?;
        let s = w.state;
        w.line = None;
        Some(s)
    }

    /// Number of valid lines currently resident (O(size); for tests/stats).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.line.is_some())
            .count()
    }

    /// Invalidates everything (e.g. between benchmark phases).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            for w in set {
                w.line = None;
            }
        }
    }

    /// Serializes tag/state/LRU for snapshot/restore:
    /// `{"use_counter":N,"sets":[[[line+1,state,last_use],...],...]}`.
    /// `line+1` is zero for an invalid way (line addresses fit u64-1
    /// comfortably since they are byte addresses shifted right).
    pub fn state_to_json_value(&self) -> JsonValue {
        let sets = self
            .sets
            .iter()
            .map(|set| {
                JsonValue::Array(
                    set.iter()
                        .map(|w| {
                            JsonValue::Array(vec![
                                JsonValue::num_u64(w.line.map_or(0, |l| l + 1)),
                                JsonValue::num_u64(match w.state {
                                    LineState::Modified => 0,
                                    LineState::Owned => 1,
                                    LineState::Exclusive => 2,
                                    LineState::Shared => 3,
                                }),
                                JsonValue::num_u64(w.last_use),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        JsonValue::Object(vec![
            (
                "use_counter".to_owned(),
                JsonValue::num_u64(self.use_counter),
            ),
            ("sets".to_owned(), JsonValue::Array(sets)),
        ])
    }

    /// Restores a state captured by [`CacheArray::state_to_json_value`]
    /// into an array of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns a message on geometry mismatch or malformed entries.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        self.use_counter = value
            .get("use_counter")
            .and_then(JsonValue::as_u64)
            .ok_or("cache state: missing use_counter")?;
        let sets = value
            .get("sets")
            .and_then(JsonValue::as_array)
            .ok_or("cache state: missing sets")?;
        if sets.len() != self.sets.len() {
            return Err(format!(
                "cache state: {} sets for a {}-set array",
                sets.len(),
                self.sets.len()
            ));
        }
        for (si, (set, into)) in sets.iter().zip(self.sets.iter_mut()).enumerate() {
            let ways = set
                .as_array()
                .filter(|w| w.len() == into.len())
                .ok_or_else(|| format!("cache state: set {si} has the wrong way count"))?;
            for (way, slot) in ways.iter().zip(into.iter_mut()) {
                let triple = way
                    .as_array()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| format!("cache state: set {si} way is not a triple"))?;
                let field = |i: usize| {
                    triple[i]
                        .as_u64()
                        .ok_or_else(|| format!("cache state: set {si} holds a non-u64"))
                };
                let line = field(0)?;
                slot.line = if line == 0 { None } else { Some(line - 1) };
                slot.state = match field(1)? {
                    0 => LineState::Modified,
                    1 => LineState::Owned,
                    2 => LineState::Exclusive,
                    3 => LineState::Shared,
                    other => return Err(format!("cache state: unknown line state {other}")),
                };
                slot.last_use = field(2)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways x 64B lines = 256 B.
        let params = CacheParams {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: pxl_sim::Clock::ghz1("t"),
        };
        CacheArray::new(&params)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = tiny();
        assert_eq!(c.lookup(0), None);
        c.install(0, LineState::Exclusive);
        assert_eq!(c.lookup(0), Some(LineState::Exclusive));
        assert_eq!(c.lookup(63), Some(LineState::Exclusive)); // same line
        assert_eq!(c.lookup(64), None); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line numbers).
        c.install(0, LineState::Shared); // line 0
        c.install(2 * 64, LineState::Shared);
        // Touch line 0 so line 2 becomes LRU.
        assert!(c.lookup(0).is_some());
        let evicted = c.install(4 * 64, LineState::Shared);
        assert_eq!(evicted, Some((2 * 64, LineState::Shared)));
        assert!(c.peek(0).is_some());
        assert!(c.peek(4 * 64).is_some());
        assert!(c.peek(2 * 64).is_none());
    }

    #[test]
    fn install_prefers_invalid_ways() {
        let mut c = tiny();
        c.install(0, LineState::Modified);
        // Second install in the same set must use the empty way, not evict.
        assert_eq!(c.install(2 * 64, LineState::Shared), None);
    }

    #[test]
    fn reinstall_updates_state_in_place() {
        let mut c = tiny();
        c.install(0, LineState::Shared);
        assert_eq!(c.install(0, LineState::Modified), None);
        assert_eq!(c.peek(0), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.install(0, LineState::Owned);
        assert_eq!(c.invalidate(0), Some(LineState::Owned));
        assert_eq!(c.invalidate(0), None);
        c.install(0, LineState::Shared);
        c.install(64, LineState::Shared);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn state_round_trip_keeps_lru_behavior() {
        let mut a = tiny();
        a.install(0, LineState::Modified);
        a.install(2 * 64, LineState::Shared);
        a.install(64, LineState::Owned);
        assert!(a.lookup(0).is_some()); // refresh LRU on line 0
        let state = a.state_to_json_value();
        let mut b = tiny();
        b.restore_state(&state).unwrap();
        assert_eq!(b.peek(0), Some(LineState::Modified));
        assert_eq!(b.peek(64), Some(LineState::Owned));
        // Same LRU victim choice after restore.
        assert_eq!(
            a.install(4 * 64, LineState::Shared),
            b.install(4 * 64, LineState::Shared)
        );
        assert_eq!(
            a.state_to_json_value().to_json(),
            b.state_to_json_value().to_json()
        );
        // Geometry mismatch is refused.
        let params = CacheParams {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: pxl_sim::Clock::ghz1("t"),
        };
        let mut wrong = CacheArray::new(&params);
        assert!(wrong.restore_state(&state).unwrap_err().contains("sets"));
    }

    #[test]
    fn state_predicates() {
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.is_dirty());
        assert!(LineState::Modified.can_write_silently());
        assert!(LineState::Exclusive.can_write_silently());
        assert!(!LineState::Owned.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_missing_line_panics() {
        let mut c = tiny();
        c.set_state(0, LineState::Shared);
    }
}
