//! The constrained Zynq-7000 (Zedboard) prototype platform of Section V-B.
//!
//! The paper's FPGA prototype could not implement coherent L1 caches on the
//! fabric, so it used **stream buffers** connecting PEs to the processing
//! system's L2 cache through a **single ACP port** whose bandwidth is much
//! lower than the CPU-to-L2 path. This module models exactly that: per-port
//! stream buffers with sequential-stream hits, all line transfers serialized
//! through one bandwidth-limited ACP channel. It is used to reproduce Fig. 6,
//! including its negative results (the spmvcrs slowdown, and nw/stencil2d not
//! scaling from 4 to 8 PEs).

use pxl_sim::config::{CacheParams, CpuCoreParams, DramParams, MemoryConfig};
use pxl_sim::json::JsonValue;
use pxl_sim::{Clock, CounterId, Metrics, Time, TraceEvent, Tracer};

use crate::bandwidth::BandwidthMeter;
use crate::system::AccessKind;

/// Timing of the single ACP port between the FPGA fabric and the ARM L2.
#[derive(Debug, Clone, PartialEq)]
pub struct AcpParams {
    /// Round-trip latency of an isolated line request.
    pub latency: Time,
    /// Sustained bandwidth in bytes per second (shared by all PEs).
    pub bandwidth_bytes_per_sec: f64,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Stream buffers per PE port.
    pub streams_per_port: usize,
}

impl Default for AcpParams {
    fn default() -> Self {
        AcpParams {
            latency: Time::from_ns(100),
            bandwidth_bytes_per_sec: 2.0e9,
            line_bytes: 64,
            streams_per_port: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct Stream {
    /// The last line address served by this stream.
    last_line: u64,
    /// LRU tick.
    last_use: u64,
}

/// Memory path for accelerator PEs on the Zedboard prototype: stream buffers
/// over one shared ACP port.
///
/// Implements the same access-oracle shape as
/// [`crate::MemorySystem::access`], so the accelerator engine can run against
/// either backing.
///
/// # Examples
///
/// ```
/// use pxl_mem::zedboard::{AcpParams, ZedboardMemory};
/// use pxl_mem::AccessKind;
/// use pxl_sim::Time;
///
/// let mut mem = ZedboardMemory::new(4, AcpParams::default());
/// let t1 = mem.access(0, 0x0, AccessKind::Read, Time::ZERO);
/// // Re-reading the same line hits in the stream buffer.
/// let t2 = mem.access(0, 0x8, AccessKind::Read, t1);
/// assert!(t2 - t1 < t1 - Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct ZedboardMemory {
    params: AcpParams,
    streams: Vec<Vec<Stream>>,
    acp_meter: BandwidthMeter,
    tick: u64,
    stats: Metrics,
    ids: ZedIds,
    trace: Tracer,
    accel_clock: Clock,
}

/// Typed handles for the stream-buffer hot counters; re-registered whenever
/// `stats` is replaced, mirroring the coherent path's `MemIds`.
#[derive(Debug, Clone, Copy)]
struct ZedIds {
    stream_hits: CounterId,
    stream_misses: CounterId,
    stream_seq: CounterId,
    acp_lines: CounterId,
}

impl ZedIds {
    fn register(m: &mut Metrics) -> Self {
        ZedIds {
            stream_hits: m.register_counter("zed.stream_hits"),
            stream_misses: m.register_counter("zed.stream_misses"),
            stream_seq: m.register_counter("zed.stream_seq"),
            acp_lines: m.register_counter("zed.acp_lines"),
        }
    }
}

impl ZedboardMemory {
    /// Creates the memory path for `ports` PE ports.
    pub fn new(ports: usize, params: AcpParams) -> Self {
        let streams_per_port = params.streams_per_port;
        let mut stats = Metrics::new();
        let ids = ZedIds::register(&mut stats);
        ZedboardMemory {
            params,
            streams: vec![Vec::with_capacity(streams_per_port); ports],
            acp_meter: BandwidthMeter::default_epoch(),
            tick: 0,
            stats,
            ids,
            trace: Tracer::disabled(),
            accel_clock: Clock::new("zed_accel", 8_000), // 125 MHz fabric
        }
    }

    /// Borrow the accumulated statistics.
    pub fn stats(&self) -> &Metrics {
        &self.stats
    }

    /// Takes the statistics out, leaving an empty registry.
    pub fn take_stats(&mut self) -> Metrics {
        let taken = std::mem::take(&mut self.stats);
        self.ids = ZedIds::register(&mut self.stats);
        taken
    }

    /// Enables structured event tracing with a bounded buffer of `capacity`
    /// records (zero disables). Stream-buffer hits and misses are reported
    /// as level-0 cache events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Tracer::bounded(capacity);
    }

    /// Takes the accumulated event trace out, leaving a disabled tracer.
    pub fn take_trace(&mut self) -> Tracer {
        std::mem::take(&mut self.trace)
    }

    /// Serializes the complete path state — stream buffers (in allocation
    /// order, which the LRU replacement depends on), ACP meter, LRU tick,
    /// statistics and trace — for snapshot/restore.
    pub fn state_to_json_value(&self) -> JsonValue {
        let streams = self
            .streams
            .iter()
            .map(|port| {
                JsonValue::Array(
                    port.iter()
                        .map(|s| {
                            JsonValue::Array(vec![
                                JsonValue::num_u64(s.last_line),
                                JsonValue::num_u64(s.last_use),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        JsonValue::Object(vec![
            ("streams".to_owned(), JsonValue::Array(streams)),
            ("acp_meter".to_owned(), self.acp_meter.state_to_json_value()),
            ("tick".to_owned(), JsonValue::num_u64(self.tick)),
            (
                "stats".to_owned(),
                JsonValue::parse(&self.stats.to_json()).expect("metrics JSON parses"),
            ),
            ("trace".to_owned(), self.trace.state_to_json_value()),
        ])
    }

    /// Restores the state captured by
    /// [`ZedboardMemory::state_to_json_value`] into a path built with the
    /// same parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field or geometry
    /// mismatch (wrong port count, too many streams for a port).
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("zedboard state: missing {key}"))
        };
        let ports = field("streams")?
            .as_array()
            .ok_or("zedboard state: streams is not an array")?;
        if ports.len() != self.streams.len() {
            return Err(format!(
                "zedboard state: {} ports, this path has {}",
                ports.len(),
                self.streams.len()
            ));
        }
        let mut streams = Vec::with_capacity(ports.len());
        for port in ports {
            let entries = port
                .as_array()
                .ok_or("zedboard state: port streams is not an array")?;
            if entries.len() > self.params.streams_per_port {
                return Err(format!(
                    "zedboard state: {} streams on one port, limit is {}",
                    entries.len(),
                    self.params.streams_per_port
                ));
            }
            let mut list = Vec::with_capacity(self.params.streams_per_port);
            for entry in entries {
                let pair = entry
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("zedboard state: stream is not a [last_line, last_use] pair")?;
                let last_line = pair[0]
                    .as_u64()
                    .ok_or("zedboard state: last_line is not a u64")?;
                let last_use = pair[1]
                    .as_u64()
                    .ok_or("zedboard state: last_use is not a u64")?;
                list.push(Stream {
                    last_line,
                    last_use,
                });
            }
            streams.push(list);
        }
        self.acp_meter.restore_state(field("acp_meter")?)?;
        let tick = field("tick")?
            .as_u64()
            .ok_or("zedboard state: tick is not a u64")?;
        self.stats = Metrics::from_json(&field("stats")?.to_json())?;
        self.ids = ZedIds::register(&mut self.stats);
        self.trace = Tracer::state_from_json_value(field("trace")?)?;
        self.streams = streams;
        self.tick = tick;
        Ok(())
    }

    fn line_transfer(&self) -> Time {
        Time::from_ps(
            (self.params.line_bytes as f64 / self.params.bandwidth_bytes_per_sec * 1e12).round()
                as u64,
        )
    }

    /// One access of up to a line; returns completion time.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn access(&mut self, port: usize, addr: u64, kind: AccessKind, now: Time) -> Time {
        assert!(port < self.streams.len(), "port {port} out of range");
        let line = addr / self.params.line_bytes as u64;
        self.tick += 1;
        let tick = self.tick;

        // Same-line hit in an existing stream buffer: fabric-local access.
        if let Some(s) = self.streams[port].iter_mut().find(|s| s.last_line == line) {
            s.last_use = tick;
            self.stats.inc(self.ids.stream_hits);
            self.trace.emit(
                now,
                TraceEvent::CacheHit {
                    port: port as u32,
                    level: 0,
                },
            );
            return now + self.accel_clock.period();
        }

        // Sequential advance of an existing stream: latency hidden by the
        // stream prefetcher, but ACP bandwidth is consumed.
        let transfer = self.line_transfer();
        let sequential = self.streams[port]
            .iter_mut()
            .find(|s| s.last_line + 1 == line);
        let is_seq = sequential.is_some();
        if let Some(s) = sequential {
            s.last_line = line;
            s.last_use = tick;
        } else {
            // New stream: allocate (LRU) and pay the full round trip.
            let streams = &mut self.streams[port];
            if streams.len() < self.params.streams_per_port {
                streams.push(Stream {
                    last_line: line,
                    last_use: tick,
                });
            } else {
                let lru = streams
                    .iter_mut()
                    .min_by_key(|s| s.last_use)
                    .expect("at least one stream");
                lru.last_line = line;
                lru.last_use = tick;
            }
        }

        let start = self.acp_meter.acquire(now, transfer.as_ps());
        self.stats.inc(self.ids.acp_lines);
        self.stats
            .add("zed.acp_bytes", self.params.line_bytes as u64);
        let mut done = start + transfer;
        if !is_seq {
            self.stats.inc(self.ids.stream_misses);
            self.trace.emit(
                now,
                TraceEvent::CacheMiss {
                    port: port as u32,
                    level: 0,
                },
            );
            done += self.params.latency;
        } else {
            self.stats.inc(self.ids.stream_seq);
        }
        if matches!(kind, AccessKind::Amo) {
            done += self.params.latency; // locked round trip
        }
        done
    }

    /// Burst access (line by line), as in
    /// [`crate::MemorySystem::access_bytes`].
    pub fn access_bytes(
        &mut self,
        port: usize,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Time,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        let line = self.params.line_bytes as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut t = now;
        let mut a = first;
        loop {
            t = self.access(port, a, kind, t);
            if a == last {
                break;
            }
            a += line;
        }
        t
    }
}

/// Memory configuration of the Zedboard's ARM processing system (two
/// Cortex-A9 cores, 512 KB L2, 32-bit DDR3).
pub fn zedboard_cpu_memory() -> MemoryConfig {
    MemoryConfig {
        accel_l1: CacheParams {
            // Unused on the Zedboard (the fabric has stream buffers instead),
            // but kept for config completeness.
            size_bytes: 4 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: false,
            clock: Clock::new("zed_accel_l1", 10_000),
        },
        cpu_l1: CacheParams {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: true,
            clock: Clock::new("zed_cpu_l1", 1_500), // 667 MHz
        },
        l2: CacheParams {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency_cycles: 8,
            next_line_prefetch: false,
            clock: Clock::new("zed_l2", 1_500),
        },
        dram: DramParams {
            access_latency_ns: 70,
            peak_bw_bytes_per_sec: 4.2e9,
        },
    }
}

/// Core parameters of the Zedboard's Cortex-A9 (dual-issue, 667 MHz).
pub fn zedboard_cpu_core() -> CpuCoreParams {
    CpuCoreParams {
        issue_width: 2,
        iq_entries: 16,
        rob_entries: 40,
        clock: Clock::new("zed_cpu", 1_500),
        mem_overlap: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_hits_are_fast() {
        let mut m = ZedboardMemory::new(1, AcpParams::default());
        let t1 = m.access(0, 0, AccessKind::Read, Time::ZERO);
        let t2 = m.access(0, 32, AccessKind::Read, t1);
        assert_eq!(t2 - t1, Time::from_ps(8_000)); // one 125 MHz cycle
        assert_eq!(m.stats().get("zed.stream_hits"), 1);
    }

    #[test]
    fn sequential_stream_is_bandwidth_bound_not_latency_bound() {
        let mut m = ZedboardMemory::new(1, AcpParams::default());
        let t1 = m.access(0, 0, AccessKind::Read, Time::ZERO);
        let cold = t1 - Time::ZERO;
        let t2 = m.access(0, 64, AccessKind::Read, t1);
        let seq = t2 - t1;
        assert!(seq < cold, "sequential line must avoid the ACP latency");
        assert!(seq >= m.line_transfer(), "but still consumes bandwidth");
    }

    #[test]
    fn acp_serializes_across_ports() {
        let mut m = ZedboardMemory::new(2, AcpParams::default());
        let t_a = m.access(0, 0, AccessKind::Read, Time::ZERO);
        let t_b = m.access(1, 0x10000, AccessKind::Read, Time::ZERO);
        // Port 1 queues behind port 0's transfer.
        assert!(t_b > t_a || t_b >= m.line_transfer() + m.line_transfer());
        assert_eq!(m.stats().get("zed.acp_lines"), 2);
    }

    #[test]
    fn stream_lru_replacement() {
        let p = AcpParams {
            streams_per_port: 2,
            ..AcpParams::default()
        };
        let mut m = ZedboardMemory::new(1, p);
        let mut t = Time::ZERO;
        t = m.access(0, 0, AccessKind::Read, t); // stream A (line 0)
        t = m.access(0, 100 * 64, AccessKind::Read, t); // stream B
        t = m.access(0, 200 * 64, AccessKind::Read, t); // evicts A (LRU)
        let misses_before = m.stats().get("zed.stream_misses");
        let _ = m.access(0, 0, AccessKind::Read, t); // A gone -> miss
        assert_eq!(m.stats().get("zed.stream_misses"), misses_before + 1);
    }

    #[test]
    fn burst_touches_every_line() {
        let mut m = ZedboardMemory::new(1, AcpParams::default());
        let t = m.access_bytes(0, 0, 256, AccessKind::Read, Time::ZERO);
        assert!(t >= m.line_transfer());
        assert_eq!(m.stats().get("zed.acp_lines"), 4);
        assert_eq!(m.access_bytes(0, 0, 0, AccessKind::Read, t), t);
    }

    #[test]
    fn amo_pays_locked_round_trip() {
        let mut m1 = ZedboardMemory::new(1, AcpParams::default());
        let w = m1.access(0, 0, AccessKind::Write, Time::ZERO);
        let mut m2 = ZedboardMemory::new(1, AcpParams::default());
        let a = m2.access(0, 0, AccessKind::Amo, Time::ZERO);
        assert!(a > w);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let p = AcpParams {
            streams_per_port: 2,
            ..AcpParams::default()
        };
        let mut a = ZedboardMemory::new(2, p.clone());
        a.enable_trace(128);
        let mut t = Time::ZERO;
        for i in 0..30u64 {
            t = a.access((i % 2) as usize, (i % 5) * 300 * 64, AccessKind::Read, t);
        }
        let state = a.state_to_json_value();
        let mut b = ZedboardMemory::new(2, p.clone());
        b.enable_trace(128);
        b.restore_state(&state).unwrap();
        // Identical future behavior, including LRU victim choices.
        for i in 0..30u64 {
            let ta = a.access((i % 2) as usize, i * 700 * 64, AccessKind::Read, t);
            let tb = b.access((i % 2) as usize, i * 700 * 64, AccessKind::Read, t);
            assert_eq!(ta, tb, "access {i} diverged after restore");
            t = ta;
        }
        assert_eq!(b.stats().to_json(), a.stats().to_json());
        assert_eq!(b.take_trace().to_jsonl(), a.take_trace().to_jsonl());
        // Wrong port count is refused.
        let mut wrong = ZedboardMemory::new(3, p);
        assert!(wrong.restore_state(&state).unwrap_err().contains("ports"));
    }

    #[test]
    fn cpu_side_config_is_weaker_than_table3() {
        let zed = zedboard_cpu_memory();
        let big = MemoryConfig::micro2018();
        assert!(zed.l2.size_bytes < big.l2.size_bytes);
        assert!(zed.dram.peak_bw_bytes_per_sec < big.dram.peak_bw_bytes_per_sec);
        let core = zedboard_cpu_core();
        assert!(core.issue_width < 4);
    }
}
