//! The coherent memory-hierarchy timing model.
//!
//! [`MemorySystem`] is a latency/bandwidth *oracle*: each requester (an
//! accelerator tile's L1 port or a CPU core's L1 port) asks "an access to
//! byte address `a` of kind `k` starts at time `t`; when does it complete?"
//! The oracle walks the hierarchy of the paper's Table III — private L1s
//! kept coherent with a MOESI snooping protocol, an inclusive shared L2, and
//! a bandwidth-limited DDR3 channel — updating tag/state arrays and
//! contention trackers as it goes.
//!
//! Contention is modelled with epoch-bucketed bandwidth metering
//! ([`crate::bandwidth::BandwidthMeter`]): the snoop bus, the L2 port and
//! the DRAM channel each commit service time into fixed epochs, so
//! aggregate throughput is limited exactly even though requesters present
//! their accesses out of global time order. This is the deliberate
//! simplification documented in `DESIGN.md`: no MSHR pipeline, but faithful
//! queueing delay and bandwidth saturation — the effects that shape the
//! paper's memory-bound results (spmvcrs, bfsqueue, stencil2d).

use pxl_sim::config::{CacheParams, DramParams, MemoryConfig};
use pxl_sim::json::JsonValue;
use pxl_sim::{CounterId, Metrics, Time, TraceEvent, Tracer};

use crate::bandwidth::BandwidthMeter;
use crate::cache::{CacheArray, LineState};

/// Identifies one L1 port on the memory system (one accelerator tile or one
/// CPU core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub usize);

/// The kind of memory access a requester performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (write-allocate, write-back).
    Write,
    /// An atomic read-modify-write (acquires exclusive ownership and pays an
    /// extra bus serialization penalty).
    Amo,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Amo)
    }
}

/// Interconnect timing parameters (the snooping bus between L1s and L2).
#[derive(Debug, Clone, PartialEq)]
pub struct BusParams {
    /// One-way request latency across the bus.
    pub latency: Time,
    /// Time one transaction occupies the bus (serialization quantum).
    pub occupancy: Time,
    /// Additional latency for a cache-to-cache transfer from an owning L1.
    pub cache_to_cache: Time,
    /// Time one access occupies the L2 port.
    pub l2_occupancy: Time,
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams {
            latency: Time::from_ns(2),
            occupancy: Time::from_ps(500),
            cache_to_cache: Time::from_ns(8),
            l2_occupancy: Time::from_ns(1),
        }
    }
}

/// The full coherent hierarchy: N private L1s, a shared inclusive L2, DRAM.
///
/// # Examples
///
/// ```
/// use pxl_mem::{AccessKind, MemorySystem, PortId};
/// use pxl_sim::config::{CacheParams, MemoryConfig};
/// use pxl_sim::Time;
///
/// let cfg = MemoryConfig::micro2018();
/// let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone(); 2], &cfg);
/// let t0 = Time::ZERO;
/// let t1 = sys.access(PortId(0), 0x1000, AccessKind::Read, t0); // cold miss
/// let t2 = sys.access(PortId(0), 0x1000, AccessKind::Read, t1); // hit
/// assert!(t1 - t0 > t2 - t1);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1s: Vec<CacheArray>,
    l1_params: Vec<CacheParams>,
    l2: CacheArray,
    l2_params: CacheParams,
    dram: DramParams,
    bus: BusParams,
    bus_meter: BandwidthMeter,
    l2_meter: BandwidthMeter,
    dram_meter: BandwidthMeter,
    stats: Metrics,
    ids: MemIds,
    trace: Tracer,
}

/// Typed handles for the per-access counters. The cache path increments a
/// counter on every lookup, so these skip the string lookup a name-keyed
/// update would pay; they must be re-registered whenever `stats` is
/// replaced (construction, [`MemorySystem::take_stats`],
/// [`MemorySystem::restore_state`]) because the handles index the registry
/// they were registered in.
#[derive(Debug, Clone, Copy)]
struct MemIds {
    l1_hits: CounterId,
    l1_misses: CounterId,
    l1_writebacks: CounterId,
    l2_hits: CounterId,
    l2_misses: CounterId,
    l2_evictions: CounterId,
    l2_writebacks: CounterId,
    bus_txns: CounterId,
    upgrades: CounterId,
    remote_invalidations: CounterId,
    dirty_transfers: CounterId,
    c2c_transfers: CounterId,
    dram_lines: CounterId,
    dram_bytes: CounterId,
    dram_sat_events: CounterId,
    prefetches: CounterId,
}

impl MemIds {
    fn register(m: &mut Metrics) -> Self {
        MemIds {
            l1_hits: m.register_counter("mem.l1_hits"),
            l1_misses: m.register_counter("mem.l1_misses"),
            l1_writebacks: m.register_counter("mem.l1_writebacks"),
            l2_hits: m.register_counter("mem.l2_hits"),
            l2_misses: m.register_counter("mem.l2_misses"),
            l2_evictions: m.register_counter("mem.l2_evictions"),
            l2_writebacks: m.register_counter("mem.l2_writebacks"),
            bus_txns: m.register_counter("mem.bus_txns"),
            upgrades: m.register_counter("mem.upgrades"),
            remote_invalidations: m.register_counter("mem.remote_invalidations"),
            dirty_transfers: m.register_counter("mem.dirty_transfers"),
            c2c_transfers: m.register_counter("mem.c2c_transfers"),
            dram_lines: m.register_counter("mem.dram_lines"),
            dram_bytes: m.register_counter("mem.dram_bytes"),
            dram_sat_events: m.register_counter("mem.dram_sat_events"),
            prefetches: m.register_counter("mem.prefetches"),
        }
    }
}

impl MemorySystem {
    /// Builds a hierarchy with one private L1 per entry of `l1_params`, all
    /// sharing the L2/DRAM described by `config`.
    pub fn new(l1_params: Vec<CacheParams>, config: &MemoryConfig) -> Self {
        let l1s = l1_params.iter().map(CacheArray::new).collect();
        let mut stats = Metrics::new();
        let ids = MemIds::register(&mut stats);
        MemorySystem {
            l1s,
            l1_params,
            l2: CacheArray::new(&config.l2),
            l2_params: config.l2.clone(),
            dram: config.dram.clone(),
            bus: BusParams::default(),
            bus_meter: BandwidthMeter::default_epoch(),
            l2_meter: BandwidthMeter::default_epoch(),
            dram_meter: BandwidthMeter::default_epoch(),
            stats,
            ids,
            trace: Tracer::disabled(),
        }
    }

    /// Number of L1 ports.
    pub fn num_ports(&self) -> usize {
        self.l1s.len()
    }

    /// Line size in bytes (uniform across the hierarchy).
    pub fn line_bytes(&self) -> usize {
        self.l2.line_bytes()
    }

    /// Borrow the accumulated statistics.
    pub fn stats(&self) -> &Metrics {
        &self.stats
    }

    /// Takes the statistics out, leaving an empty registry.
    pub fn take_stats(&mut self) -> Metrics {
        let taken = std::mem::take(&mut self.stats);
        self.ids = MemIds::register(&mut self.stats);
        taken
    }

    /// Enables structured event tracing with a bounded buffer of `capacity`
    /// records (zero disables).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Tracer::bounded(capacity);
    }

    /// Takes the accumulated event trace out, leaving a disabled tracer.
    pub fn take_trace(&mut self) -> Tracer {
        std::mem::take(&mut self.trace)
    }

    /// Serializes the complete hierarchy state — cache tag/state arrays,
    /// bandwidth meters, statistics and the event trace — for
    /// snapshot/restore. Timing parameters are *not* serialized; they come
    /// from the configuration the restoring system was built with.
    pub fn state_to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "l1s".to_owned(),
                JsonValue::Array(
                    self.l1s
                        .iter()
                        .map(CacheArray::state_to_json_value)
                        .collect(),
                ),
            ),
            ("l2".to_owned(), self.l2.state_to_json_value()),
            ("bus_meter".to_owned(), self.bus_meter.state_to_json_value()),
            ("l2_meter".to_owned(), self.l2_meter.state_to_json_value()),
            (
                "dram_meter".to_owned(),
                self.dram_meter.state_to_json_value(),
            ),
            (
                "stats".to_owned(),
                JsonValue::parse(&self.stats.to_json()).expect("metrics JSON parses"),
            ),
            ("trace".to_owned(), self.trace.state_to_json_value()),
        ])
    }

    /// Restores the state captured by [`MemorySystem::state_to_json_value`]
    /// into a system built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field or geometry
    /// mismatch (e.g. a different L1 port count).
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("memory state: missing {key}"))
        };
        let l1s = field("l1s")?
            .as_array()
            .ok_or("memory state: l1s is not an array")?;
        if l1s.len() != self.l1s.len() {
            return Err(format!(
                "memory state: {} L1 ports, this system has {}",
                l1s.len(),
                self.l1s.len()
            ));
        }
        for (cache, state) in self.l1s.iter_mut().zip(l1s) {
            cache.restore_state(state)?;
        }
        self.l2.restore_state(field("l2")?)?;
        self.bus_meter.restore_state(field("bus_meter")?)?;
        self.l2_meter.restore_state(field("l2_meter")?)?;
        self.dram_meter.restore_state(field("dram_meter")?)?;
        self.stats = Metrics::from_json(&field("stats")?.to_json())?;
        self.ids = MemIds::register(&mut self.stats);
        self.trace = Tracer::state_from_json_value(field("trace")?)?;
        Ok(())
    }

    fn l1_hit_time(&self, port: usize) -> Time {
        let p = &self.l1_params[port];
        p.clock.cycles_to_time(p.hit_latency_cycles)
    }

    fn l2_hit_time(&self) -> Time {
        self.l2_params
            .clock
            .cycles_to_time(self.l2_params.hit_latency_cycles)
    }

    fn acquire_bus(&mut self, t: Time) -> Time {
        let start = self.bus_meter.acquire(t, self.bus.occupancy.as_ps());
        self.stats.inc(self.ids.bus_txns);
        start + self.bus.latency
    }

    fn acquire_l2(&mut self, t: Time) -> Time {
        let start = self.l2_meter.acquire(t, self.bus.l2_occupancy.as_ps());
        start + self.l2_hit_time()
    }

    fn acquire_dram(&mut self, t: Time) -> Time {
        let line_bytes = self.line_bytes() as u64;
        let transfer_ps = self.dram.line_transfer_ps(self.line_bytes());
        let start = self.dram_meter.acquire(t, transfer_ps);
        self.stats.inc(self.ids.dram_lines);
        self.stats.add_to(self.ids.dram_bytes, line_bytes);
        // Starting in a later epoch than requested means the natural epoch
        // was already full: the channel is saturated.
        if self.dram_meter.epoch_of(start) > self.dram_meter.epoch_of(t) {
            self.stats.inc(self.ids.dram_sat_events);
            self.trace.emit(
                t,
                TraceEvent::DramSaturated {
                    epoch: self.dram_meter.epoch_of(t),
                    committed_ps: self.dram_meter.total_committed_ps(),
                },
            );
        }
        start + Time::from_ns(self.dram.access_latency_ns) + Time::from_ps(transfer_ps)
    }

    /// Consumes DRAM bandwidth for a background transfer (writeback or
    /// prefetch) without delaying the requester.
    fn dram_background(&mut self, at: Time) {
        let line_bytes = self.line_bytes() as u64;
        let transfer_ps = self.dram.line_transfer_ps(self.line_bytes());
        let _ = self.dram_meter.acquire(at, transfer_ps);
        self.stats.add_to(self.ids.dram_bytes, line_bytes);
    }

    /// Finds a remote L1 (not `port`) holding the line in an owning state
    /// (M, O or E) — the cache that would supply data on a snoop.
    fn snoop_owner(&self, port: usize, addr: u64) -> Option<usize> {
        self.l1s.iter().enumerate().find_map(|(i, c)| {
            if i == port {
                return None;
            }
            match c.peek(addr) {
                Some(LineState::Modified) | Some(LineState::Owned) | Some(LineState::Exclusive) => {
                    Some(i)
                }
                _ => None,
            }
        })
    }

    /// Whether any remote L1 holds the line in any state.
    fn any_remote_copy(&self, port: usize, addr: u64) -> bool {
        self.l1s
            .iter()
            .enumerate()
            .any(|(i, c)| i != port && c.peek(addr).is_some())
    }

    /// Invalidates the line in every remote L1; writebacks of dirty copies
    /// consume DRAM bandwidth in the background (they actually merge into the
    /// L2, but the occupancy cost is what matters for the model).
    fn invalidate_remotes(&mut self, port: usize, addr: u64) {
        for i in 0..self.l1s.len() {
            if i == port {
                continue;
            }
            if let Some(state) = self.l1s[i].invalidate(addr) {
                self.stats.inc(self.ids.remote_invalidations);
                if state.is_dirty() {
                    // Dirty data moves to the requester with the transfer;
                    // no extra DRAM traffic needed under MOESI.
                    self.stats.inc(self.ids.dirty_transfers);
                }
            }
        }
    }

    /// Downgrades remote copies for a read: M -> O, E -> S.
    fn downgrade_remotes(&mut self, port: usize, addr: u64) {
        for i in 0..self.l1s.len() {
            if i == port {
                continue;
            }
            match self.l1s[i].peek(addr) {
                Some(LineState::Modified) => self.l1s[i].set_state(addr, LineState::Owned),
                Some(LineState::Exclusive) => self.l1s[i].set_state(addr, LineState::Shared),
                _ => {}
            }
        }
    }

    /// Installs a line into the L2 (inclusive), handling victim
    /// back-invalidation of L1 copies and dirty writebacks.
    fn install_l2(&mut self, port: usize, addr: u64, state: LineState, at: Time) {
        if let Some((victim_addr, victim_state)) = self.l2.install(addr, state) {
            self.stats.inc(self.ids.l2_evictions);
            self.trace.emit(
                at,
                TraceEvent::CacheEvict {
                    port: port as u32,
                    level: 2,
                },
            );
            // Inclusive L2: evicting a line must remove all L1 copies.
            let mut dirty = victim_state.is_dirty();
            for c in &mut self.l1s {
                if let Some(s) = c.invalidate(victim_addr) {
                    dirty |= s.is_dirty();
                }
            }
            if dirty {
                self.stats.inc(self.ids.l2_writebacks);
                self.dram_background(at);
            }
        }
    }

    /// Installs a line into an L1, handling dirty-victim writeback to L2.
    fn install_l1(&mut self, port: usize, addr: u64, state: LineState, at: Time) {
        if let Some((victim_addr, victim_state)) = self.l1s[port].install(addr, state) {
            self.trace.emit(
                at,
                TraceEvent::CacheEvict {
                    port: port as u32,
                    level: 1,
                },
            );
            if victim_state.is_dirty() {
                self.stats.inc(self.ids.l1_writebacks);
                // Write back into L2 (data plane is functional memory; here
                // we only ensure the L2 still tracks the line as dirty).
                if self.l2.peek(victim_addr).is_some() {
                    self.l2.set_state(victim_addr, LineState::Modified);
                } else {
                    self.install_l2(port, victim_addr, LineState::Modified, at);
                }
            }
        }
    }

    /// Fetches a line into `port`'s L1 after an L1 miss, returning the
    /// completion time. `t` is the time the miss leaves the L1.
    fn fill_from_below(&mut self, port: usize, addr: u64, kind: AccessKind, t: Time) -> Time {
        let mut t = self.acquire_bus(t);
        if kind == AccessKind::Amo {
            // AMOs pay a second bus serialization for the locked phase.
            t = self.acquire_bus(t);
        }
        let install_state;
        if let Some(_owner) = self.snoop_owner(port, addr) {
            // Cache-to-cache transfer from the owning L1.
            self.stats.inc(self.ids.c2c_transfers);
            t += self.bus.cache_to_cache;
            if kind.is_write() {
                self.invalidate_remotes(port, addr);
                install_state = LineState::Modified;
            } else {
                self.downgrade_remotes(port, addr);
                install_state = LineState::Shared;
            }
            // Inclusive: line is already tracked in L2. Mark dirty ownership
            // transfer conservatively.
            if self.l2.peek(addr).is_none() {
                self.install_l2(port, addr, LineState::Modified, t);
            }
        } else {
            t = self.acquire_l2(t);
            let l2_hit = self.l2.lookup(addr).is_some();
            if l2_hit {
                self.stats.inc(self.ids.l2_hits);
                self.trace.emit(
                    t,
                    TraceEvent::CacheHit {
                        port: port as u32,
                        level: 2,
                    },
                );
            } else {
                self.stats.inc(self.ids.l2_misses);
                self.trace.emit(
                    t,
                    TraceEvent::CacheMiss {
                        port: port as u32,
                        level: 2,
                    },
                );
                t = self.acquire_dram(t);
                self.install_l2(port, addr, LineState::Shared, t);
            }
            if kind.is_write() {
                self.invalidate_remotes(port, addr);
                install_state = LineState::Modified;
            } else if self.any_remote_copy(port, addr) {
                install_state = LineState::Shared;
            } else {
                install_state = LineState::Exclusive;
            }
        }
        self.install_l1(port, addr, install_state, t);
        t
    }

    /// Issues a next-line prefetch in the background after a demand miss.
    fn maybe_prefetch(&mut self, port: usize, addr: u64, at: Time) {
        if !self.l1_params[port].next_line_prefetch {
            return;
        }
        let next = addr + self.line_bytes() as u64;
        if self.l1s[port].peek(next).is_some() {
            return;
        }
        // A prefetch must not steal ownership from a remote dirty copy —
        // skip if any remote cache owns the line.
        if self.snoop_owner(port, next).is_some() {
            return;
        }
        self.stats.inc(self.ids.prefetches);
        if self.l2.lookup(next).is_none() {
            self.dram_background(at);
            self.install_l2(port, next, LineState::Shared, at);
        }
        let state = if self.any_remote_copy(port, next) {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        self.install_l1(port, next, state, at);
    }

    /// Performs one access of up to a cache line and returns its completion
    /// time.
    ///
    /// The access must not cross a line boundary in a way that matters: the
    /// model operates on the line containing `addr`. Use
    /// [`MemorySystem::access_bytes`] for multi-line transfers.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn access(&mut self, port: PortId, addr: u64, kind: AccessKind, now: Time) -> Time {
        let p = port.0;
        assert!(p < self.l1s.len(), "port {p} out of range");
        let t = now + self.l1_hit_time(p);
        match self.l1s[p].lookup(addr) {
            Some(state) => {
                self.stats.inc(self.ids.l1_hits);
                self.trace.emit(
                    now,
                    TraceEvent::CacheHit {
                        port: p as u32,
                        level: 1,
                    },
                );
                if kind.is_write() {
                    if state.can_write_silently() {
                        self.l1s[p].set_state(addr, LineState::Modified);
                        t
                    } else {
                        // S or O: upgrade via bus invalidation.
                        self.stats.inc(self.ids.upgrades);
                        let t = self.acquire_bus(t);
                        self.invalidate_remotes(p, addr);
                        self.l1s[p].set_state(addr, LineState::Modified);
                        t
                    }
                } else {
                    t
                }
            }
            None => {
                self.stats.inc(self.ids.l1_misses);
                self.trace.emit(
                    now,
                    TraceEvent::CacheMiss {
                        port: p as u32,
                        level: 1,
                    },
                );
                let done = self.fill_from_below(p, addr, kind, t);
                self.maybe_prefetch(p, addr, done);
                done
            }
        }
    }

    /// Checks the MOESI invariants over a set of line addresses (testing
    /// hook): at most one owner (M/O/E) per line; M and E imply no other
    /// copies; every L1-resident line is also in the inclusive L2.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_coherence(&self, addrs: &[u64]) -> Result<(), String> {
        for &addr in addrs {
            let states: Vec<(usize, LineState)> = self
                .l1s
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.peek(addr).map(|s| (i, s)))
                .collect();
            let owners = states
                .iter()
                .filter(|(_, s)| {
                    matches!(
                        s,
                        LineState::Modified | LineState::Owned | LineState::Exclusive
                    )
                })
                .count();
            if owners > 1 {
                return Err(format!("line {addr:#x}: {owners} owners ({states:?})"));
            }
            let exclusive = states
                .iter()
                .any(|(_, s)| matches!(s, LineState::Modified | LineState::Exclusive));
            if exclusive && states.len() > 1 {
                return Err(format!(
                    "line {addr:#x}: M/E coexists with other copies ({states:?})"
                ));
            }
            if !states.is_empty() && self.l2.peek(addr).is_none() {
                return Err(format!(
                    "line {addr:#x}: L1 copy without inclusive L2 entry"
                ));
            }
        }
        Ok(())
    }

    /// Performs a burst access of `bytes` bytes starting at `addr`,
    /// line by line, each issued when the previous completes (a simple
    /// streaming DMA). Returns the completion time of the last line.
    pub fn access_bytes(
        &mut self,
        port: PortId,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Time,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        let line = self.line_bytes() as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut t = now;
        let mut a = first;
        loop {
            t = self.access(port, a, kind, t);
            if a == last {
                break;
            }
            a += line;
        }
        t
    }
}

/// Builds the port list for an accelerator with `tiles` tiles plus a CPU
/// host port, all using Table III parameters.
pub fn accel_ports(tiles: usize, config: &MemoryConfig) -> Vec<CacheParams> {
    vec![config.accel_l1.clone(); tiles]
}

/// Builds the port list for a CPU with `cores` cores.
pub fn cpu_ports(cores: usize, config: &MemoryConfig) -> Vec<CacheParams> {
    vec![config.cpu_l1.clone(); cores]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::config::MemoryConfig;

    fn sys(ports: usize) -> MemorySystem {
        let cfg = MemoryConfig::micro2018();
        MemorySystem::new(vec![cfg.accel_l1.clone(); ports], &cfg)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys(1);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        assert!(t1 > Time::from_ns(50), "cold miss must pay DRAM latency");
        let t2 = m.access(PortId(0), 0x40, AccessKind::Read, t1);
        assert_eq!(t2 - t1, Time::from_ps(2_500), "hit = 1 cycle at 400MHz");
        assert_eq!(m.stats().get("mem.l1_hits"), 1);
        assert_eq!(m.stats().get("mem.l1_misses"), 1);
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut m = sys(2);
        // Port 0 pulls the line in (fills L2), then evict-free read by port 1
        // hits in L2 after port 0's copy is downgraded... use a read so both share.
        let t1 = m.access(PortId(0), 0x80, AccessKind::Read, Time::ZERO);
        let t2 = m.access(PortId(1), 0x1000, AccessKind::Read, t1); // another cold miss
        let dram_miss = t2 - t1;
        // Invalidate port 0's copy so port 1's access to 0x80 is an L2 hit,
        // not a c2c transfer.
        m.l1s[0].flush_all();
        let t3 = m.access(PortId(1), 0x80, AccessKind::Read, t2);
        assert!(t3 - t2 < dram_miss, "L2 hit must beat DRAM access");
        assert!(m.stats().get("mem.l2_hits") >= 1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut m = sys(2);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        let t2 = m.access(PortId(1), 0x40, AccessKind::Read, t1);
        // Both hold S now; port 0 was downgraded from E to S.
        let t3 = m.access(PortId(0), 0x40, AccessKind::Write, t2);
        assert!(m.stats().get("mem.remote_invalidations") >= 1);
        // Port 1 must now miss.
        let before = m.stats().get("mem.l1_misses");
        let _ = m.access(PortId(1), 0x40, AccessKind::Read, t3);
        assert_eq!(m.stats().get("mem.l1_misses"), before + 1);
    }

    #[test]
    fn dirty_line_supplied_cache_to_cache() {
        let mut m = sys(2);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Write, Time::ZERO);
        let _ = m.access(PortId(1), 0x40, AccessKind::Read, t1);
        assert_eq!(m.stats().get("mem.c2c_transfers"), 1);
        // MOESI: writer downgraded to Owned, not invalidated.
        assert_eq!(m.l1s[0].peek(0x40), Some(LineState::Owned));
        assert_eq!(m.l1s[1].peek(0x40), Some(LineState::Shared));
    }

    #[test]
    fn exclusive_read_upgrades_silently() {
        let mut m = sys(2);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        assert_eq!(m.l1s[0].peek(0x40), Some(LineState::Exclusive));
        let bus_before = m.stats().get("mem.bus_txns");
        let _ = m.access(PortId(0), 0x40, AccessKind::Write, t1);
        assert_eq!(
            m.stats().get("mem.bus_txns"),
            bus_before,
            "E->M must not use the bus"
        );
        assert_eq!(m.l1s[0].peek(0x40), Some(LineState::Modified));
    }

    #[test]
    fn dram_bandwidth_is_limited() {
        let mut m = sys(2);
        // A burst of cold misses issued at t=0 from two ports: aggregate
        // completion cannot beat the DRAM line rate (5 ns per 64 B line at
        // 12.8 GB/s). Use strided lines so the next-line prefetcher does not
        // serve any of them.
        let n = 200u64;
        let mut last = Time::ZERO;
        for i in 0..n {
            let t = m.access(
                PortId((i % 2) as usize),
                i * 0x10000,
                AccessKind::Read,
                Time::ZERO,
            );
            last = last.max(t);
        }
        let min_transfer = Time::from_ps(5_000 * n);
        assert!(
            last >= min_transfer,
            "{n} lines finished at {last}, faster than the 12.8 GB/s bound {min_transfer}"
        );
    }

    #[test]
    fn prefetch_makes_next_line_hit() {
        let mut m = sys(1);
        let t1 = m.access(PortId(0), 0x0, AccessKind::Read, Time::ZERO);
        assert!(m.stats().get("mem.prefetches") >= 1);
        let t2 = m.access(PortId(0), 0x40, AccessKind::Read, t1);
        assert_eq!(t2 - t1, Time::from_ps(2_500), "prefetched line must hit");
    }

    #[test]
    fn burst_access_covers_all_lines() {
        let mut m = sys(1);
        let t = m.access_bytes(PortId(0), 0x100, 256, AccessKind::Read, Time::ZERO);
        assert!(t > Time::ZERO);
        // 256 bytes from 0x100 = lines 0x100..0x1C0 -> 4 line accesses.
        assert_eq!(
            m.stats().get("mem.l1_hits") + m.stats().get("mem.l1_misses"),
            4
        );
        assert_eq!(
            m.access_bytes(PortId(0), 0x100, 0, AccessKind::Read, t),
            t,
            "zero-byte burst is free"
        );
    }

    #[test]
    fn amo_costs_more_than_write_hit() {
        let mut m = sys(1);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Write, Time::ZERO);
        let t2 = m.access(PortId(0), 0x40, AccessKind::Write, t1);
        let write_hit = t2 - t1;
        let mut m2 = sys(1);
        let u1 = m2.access(PortId(0), 0x40, AccessKind::Write, Time::ZERO);
        let u2 = m2.access(PortId(0), 0x40, AccessKind::Amo, u1);
        // AMO on an M-state line is a silent hit in this model (already
        // exclusive); it only pays extra on misses. Check the miss path:
        let mut m3 = sys(2);
        let v1 = m3.access(PortId(0), 0x40, AccessKind::Write, Time::ZERO);
        let v2 = m3.access(PortId(1), 0x40, AccessKind::Write, v1);
        let plain_transfer = v2 - v1;
        let mut m4 = sys(2);
        let w1 = m4.access(PortId(0), 0x40, AccessKind::Write, Time::ZERO);
        let w2 = m4.access(PortId(1), 0x40, AccessKind::Amo, w1);
        assert!(w2 - w1 > plain_transfer, "AMO miss pays extra bus phase");
        let _ = (u2, write_hit);
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        let cfg = MemoryConfig::micro2018();
        // Tiny L2 (4 KB, 2-way) to force evictions quickly; L1 32 KB.
        let mut small = cfg.clone();
        small.l2 = cfg.l2.clone().with_size(4 * 1024);
        small.l2.ways = 2;
        let mut m = MemorySystem::new(vec![cfg.accel_l1.clone()], &small);
        // Touch enough distinct lines mapping across L2 sets to evict line 0.
        let mut t = m.access(PortId(0), 0, AccessKind::Read, Time::ZERO);
        let sets = small.l2.num_sets() as u64;
        let line = 64u64;
        for i in 1..=2 * sets {
            t = m.access(PortId(0), i * sets * line, AccessKind::Read, t);
        }
        assert!(m.stats().get("mem.l2_evictions") > 0);
        // Line 0 must have been back-invalidated from the L1 (inclusive).
        assert_eq!(m.l1s[0].peek(0), None);
    }

    #[test]
    fn trace_records_cache_events_and_dram_bytes() {
        let mut m = sys(1);
        m.enable_trace(1024);
        let t1 = m.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        let _ = m.access(PortId(0), 0x40, AccessKind::Read, t1);
        assert_eq!(
            m.stats().get("mem.dram_bytes"),
            m.stats().get("mem.dram_lines") * 64 + m.stats().get("mem.prefetches") * 64
        );
        let trace = m.take_trace();
        let kinds: Vec<&str> = trace.records().iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"cache_miss"));
        assert!(kinds.contains(&"cache_hit"));
        // Tracing is off by default: a fresh system records nothing.
        let mut quiet = sys(1);
        let _ = quiet.access(PortId(0), 0x40, AccessKind::Read, Time::ZERO);
        assert!(quiet.take_trace().is_empty());
    }

    #[test]
    fn saturated_dram_counts_events() {
        let mut m = sys(2);
        m.enable_trace(100_000);
        // Hammer cold misses at t=0 until the first 100 ns epoch overflows.
        for i in 0..200u64 {
            let _ = m.access(
                PortId((i % 2) as usize),
                i * 0x10000,
                AccessKind::Read,
                Time::ZERO,
            );
        }
        assert!(m.stats().get("mem.dram_sat_events") > 0);
        let trace = m.take_trace();
        assert!(trace
            .records()
            .iter()
            .any(|r| r.event.kind() == "dram_saturated"));
    }

    #[test]
    fn bounded_trace_drops_overflow() {
        let mut m = sys(1);
        m.enable_trace(4);
        let mut t = Time::ZERO;
        for i in 0..32u64 {
            t = m.access(PortId(0), i * 0x10000, AccessKind::Read, t);
        }
        let trace = m.take_trace();
        assert_eq!(trace.records().len(), 4);
        assert!(trace.dropped() > 0, "bounded buffer must drop overflow");
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut a = sys(2);
        a.enable_trace(256);
        let mut t = Time::ZERO;
        for i in 0..40u64 {
            let port = PortId((i % 2) as usize);
            let kind = if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            t = a.access(port, (i % 7) * 0x940, kind, t);
        }
        let state = a.state_to_json_value();
        let mut b = sys(2);
        b.enable_trace(256);
        b.restore_state(&state).unwrap();
        assert_eq!(b.stats().to_json(), a.stats().to_json());
        // Identical future behavior: same timing, same stats, same trace.
        for i in 0..40u64 {
            let port = PortId(((i + 1) % 2) as usize);
            let ta = a.access(port, (i % 11) * 0x400, AccessKind::Read, t);
            let tb = b.access(port, (i % 11) * 0x400, AccessKind::Read, t);
            assert_eq!(ta, tb, "access {i} diverged after restore");
            t = ta;
        }
        assert_eq!(b.stats().to_json(), a.stats().to_json());
        assert_eq!(
            b.take_trace().to_jsonl(),
            a.take_trace().to_jsonl(),
            "trace streams diverged after restore"
        );
        // Geometry mismatch is refused.
        let mut wrong = sys(3);
        assert!(wrong.restore_state(&state).unwrap_err().contains("ports"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_port_panics() {
        let mut m = sys(1);
        let _ = m.access(PortId(5), 0, AccessKind::Read, Time::ZERO);
    }
}
