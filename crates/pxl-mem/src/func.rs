//! Functional memory: the data plane of the simulation.
//!
//! Every simulated engine (FlexArch, LiteArch, the CPU baseline) executes
//! benchmarks *for real* against a shared [`Memory`], while the timing
//! hierarchy separately answers how long each access takes. The split is the
//! standard timing-directed simulation structure and is what lets the test
//! suite verify that, e.g., a 32-PE work-stealing run of quicksort actually
//! sorts.

use std::collections::HashMap;

use pxl_sim::hash::Mix64Build;
use pxl_sim::json::JsonValue;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, byte-addressable, zero-initialized 64-bit memory.
///
/// Backed by 4 KiB pages allocated on first touch, so simulations can use
/// realistic (sparse) address-space layouts without host cost.
///
/// # Examples
///
/// ```
/// use pxl_mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u32(0x2000), 0); // untouched memory reads zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, Mix64Build>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let in_page = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let in_page = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            self.page_mut(a)[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `i32`.
    pub fn read_i32(&self, addr: u64) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Writes a little-endian `i32`.
    pub fn write_i32(&mut self, addr: u64, v: i32) {
        self.write_u32(addr, v as u32);
    }

    /// Reads an `f32` from its bit pattern.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` as its bit pattern.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its bit pattern.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Convenience: reads `n` consecutive `u32` values starting at `addr`.
    pub fn read_u32_slice(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Convenience: writes consecutive `u32` values starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, vals: &[u32]) {
        for (i, &v) in vals.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, v);
        }
    }

    /// Convenience: reads `n` consecutive `i32` values starting at `addr`.
    pub fn read_i32_slice(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n).map(|i| self.read_i32(addr + 4 * i as u64)).collect()
    }

    /// Convenience: writes consecutive `i32` values starting at `addr`.
    pub fn write_i32_slice(&mut self, addr: u64, vals: &[i32]) {
        for (i, &v) in vals.iter().enumerate() {
            self.write_i32(addr + 4 * i as u64, v);
        }
    }

    /// Serializes every resident page for snapshot/restore: an object
    /// keyed by decimal page index (in index order, so the output is
    /// deterministic) holding each 4 KiB page as lower-case hex.
    pub fn state_to_json_value(&self) -> JsonValue {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        let members = indices
            .into_iter()
            .map(|idx| {
                let page = &self.pages[&idx];
                let mut hex = String::with_capacity(2 * PAGE_SIZE);
                for b in page.iter() {
                    hex.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
                    hex.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
                }
                (idx.to_string(), JsonValue::Str(hex))
            })
            .collect();
        JsonValue::Object(members)
    }

    /// Replaces the entire contents with a state captured by
    /// [`Memory::state_to_json_value`]. Pages not in the snapshot are
    /// dropped (they read zero again), so restoring over a memory that
    /// already holds benchmark inputs reproduces the snapshotted state
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed page.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let members = value
            .as_object()
            .ok_or("memory state: not an object of pages")?;
        let mut pages: HashMap<_, _, Mix64Build> =
            HashMap::with_capacity_and_hasher(members.len(), Mix64Build::default());
        for (key, page) in members {
            let idx: u64 = key
                .parse()
                .map_err(|_| format!("memory state: bad page index {key:?}"))?;
            let hex = page
                .as_str()
                .ok_or_else(|| format!("memory state: page {key} is not a hex string"))?;
            if hex.len() != 2 * PAGE_SIZE {
                return Err(format!(
                    "memory state: page {key} has {} hex digits, want {}",
                    hex.len(),
                    2 * PAGE_SIZE
                ));
            }
            let mut data = Box::new([0u8; PAGE_SIZE]);
            let bytes = hex.as_bytes();
            for (i, out) in data.iter_mut().enumerate() {
                let nibble = |c: u8| -> Result<u8, String> {
                    (c as char)
                        .to_digit(16)
                        .map(|d| d as u8)
                        .ok_or_else(|| format!("memory state: page {key} has non-hex byte"))
                };
                *out = (nibble(bytes[2 * i])? << 4) | nibble(bytes[2 * i + 1])?;
            }
            pages.insert(idx, data);
        }
        self.pages = pages;
        Ok(())
    }
}

/// A bump allocator for laying out benchmark data in the simulated address
/// space.
///
/// Mirrors what the host program's `malloc` would do before offloading to the
/// accelerator. Never frees; each benchmark run uses a fresh allocator.
///
/// # Examples
///
/// ```
/// use pxl_mem::Allocator;
///
/// let mut alloc = Allocator::new(0x1000);
/// let a = alloc.alloc(100, 64);
/// let b = alloc.alloc(8, 8);
/// assert_eq!(a % 64, 0);
/// assert!(b >= a + 100);
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u64,
}

impl Allocator {
    /// Creates an allocator whose first allocation is at or after `base`.
    pub fn new(base: u64) -> Self {
        Allocator { next: base }
    }

    /// Allocates `size` bytes aligned to `align` and returns the address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + size;
        addr
    }

    /// Allocates room for `n` elements of `elem_size` bytes, cache-line
    /// aligned (the layout HLS buffers use).
    pub fn alloc_array(&mut self, n: u64, elem_size: u64) -> u64 {
        self.alloc(n * elem_size, 64)
    }

    /// Address the next allocation would start searching from.
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(0xFFFF_FFFF), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn typed_roundtrips() {
        let mut mem = Memory::new();
        mem.write_u8(10, 0xAB);
        mem.write_u16(20, 0xBEEF);
        mem.write_u32(30, 0xDEAD_BEEF);
        mem.write_u64(40, 0x0123_4567_89AB_CDEF);
        mem.write_i32(50, -42);
        mem.write_f32(60, 3.5);
        mem.write_f64(70, -2.25);
        assert_eq!(mem.read_u8(10), 0xAB);
        assert_eq!(mem.read_u16(20), 0xBEEF);
        assert_eq!(mem.read_u32(30), 0xDEAD_BEEF);
        assert_eq!(mem.read_u64(40), 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_i32(50), -42);
        assert_eq!(mem.read_f32(60), 3.5);
        assert_eq!(mem.read_f64(70), -2.25);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE as u64 - 3; // straddles a page boundary
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut mem = Memory::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        mem.write_bytes(123, &data);
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(123, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn slice_helpers() {
        let mut mem = Memory::new();
        mem.write_i32_slice(0x100, &[-1, 2, -3]);
        assert_eq!(mem.read_i32_slice(0x100, 3), vec![-1, 2, -3]);
        mem.write_u32_slice(0x200, &[7, 8]);
        assert_eq!(mem.read_u32_slice(0x200, 2), vec![7, 8]);
    }

    #[test]
    fn state_round_trip_replaces_everything() {
        let mut mem = Memory::new();
        mem.write_u64(0x40, 0x0123_4567_89AB_CDEF);
        mem.write_bytes(3 * PAGE_SIZE as u64 - 2, &[1, 2, 3, 4]);
        let state = mem.state_to_json_value();
        // Restoring over a dirtied memory must drop the extra page and
        // reproduce the original bytes exactly.
        let mut other = Memory::new();
        other.write_u64(0x40, 999);
        other.write_u64(0x9000, 7);
        other.restore_state(&state).unwrap();
        assert_eq!(other.read_u64(0x40), 0x0123_4567_89AB_CDEF);
        assert_eq!(other.read_u64(0x9000), 0, "stale page must vanish");
        assert_eq!(other.resident_pages(), mem.resident_pages());
        assert_eq!(
            other.state_to_json_value().to_json(),
            state.to_json(),
            "round trip is byte-stable"
        );
    }

    #[test]
    fn state_restore_rejects_garbage() {
        let mut mem = Memory::new();
        let bad = JsonValue::parse("{\"x\":\"00\"}").unwrap();
        assert!(mem.restore_state(&bad).unwrap_err().contains("page index"));
        let bad = JsonValue::parse("{\"1\":\"zz\"}").unwrap();
        assert!(mem.restore_state(&bad).unwrap_err().contains("hex digits"));
        let bad = JsonValue::parse("[1]").unwrap();
        assert!(mem.restore_state(&bad).is_err());
    }

    #[test]
    fn allocator_alignment_and_progress() {
        let mut a = Allocator::new(1);
        let x = a.alloc(10, 16);
        assert_eq!(x, 16);
        let y = a.alloc(1, 1);
        assert_eq!(y, 26);
        let z = a.alloc_array(4, 4);
        assert_eq!(z % 64, 0);
        assert!(a.watermark() >= z + 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn allocator_bad_alignment() {
        let mut a = Allocator::new(0);
        a.alloc(1, 3);
    }
}
