//! Epoch-bucketed bandwidth metering for shared resources.
//!
//! The simulator executes each task's memory accesses eagerly at dispatch
//! time, so accesses from different PEs reach a shared resource (snoop bus,
//! L2 port, DRAM channel) *out of global time order*. A naive
//! "next-free-time" watermark would let one PE running ahead in local time
//! push the watermark into the future and stall every later-dispatched
//! access behind it — serializing the machine spuriously.
//!
//! [`BandwidthMeter`] instead divides time into fixed epochs and tracks how
//! much service time each epoch has committed. An access landing in a full
//! epoch spills into the next one. Aggregate throughput is limited exactly;
//! arrival order within an epoch does not matter. The approximation is the
//! epoch granularity (default 100 ns), far finer than the phenomena being
//! modelled (DRAM saturation over microseconds).

use std::collections::HashMap;

use pxl_sim::hash::Mix64Build;
use pxl_sim::json::JsonValue;
use pxl_sim::Time;

/// A serially-occupied shared resource with epoch-granular accounting.
///
/// # Examples
///
/// ```
/// use pxl_mem::bandwidth::BandwidthMeter;
/// use pxl_sim::Time;
///
/// let mut m = BandwidthMeter::new(1_000); // 1 ns epochs for the example
/// // Fill one epoch with 500 ps twice; the third access spills over.
/// let t0 = m.acquire(Time::ZERO, 500);
/// let t1 = m.acquire(Time::ZERO, 500);
/// let t2 = m.acquire(Time::ZERO, 500);
/// assert_eq!(t0, Time::ZERO);
/// assert!(t1 >= t0 && t2 >= Time::from_ps(1_000));
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    epoch_ps: u64,
    used: HashMap<u64, u64, Mix64Build>,
}

impl BandwidthMeter {
    /// Creates a meter with the given epoch length in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_ps` is zero.
    pub fn new(epoch_ps: u64) -> Self {
        assert!(epoch_ps > 0, "epoch must be nonzero");
        BandwidthMeter {
            epoch_ps,
            used: HashMap::default(),
        }
    }

    /// A meter with the default 100 ns epoch.
    pub fn default_epoch() -> Self {
        BandwidthMeter::new(100_000)
    }

    /// Reserves `occupancy_ps` of service time at or after `at`, returning
    /// the service start time.
    ///
    /// Occupancies larger than one epoch consume multiple epochs.
    pub fn acquire(&mut self, at: Time, occupancy_ps: u64) -> Time {
        if occupancy_ps == 0 {
            return at;
        }
        let mut epoch = at.as_ps() / self.epoch_ps;
        let mut remaining = occupancy_ps;
        let mut start: Option<Time> = None;
        loop {
            let used = self.used.entry(epoch).or_insert(0);
            if *used >= self.epoch_ps {
                epoch += 1;
                continue;
            }
            if start.is_none() {
                // Service begins in this epoch, after the work already
                // committed here (but never before the request itself).
                let begin = Time::from_ps(epoch * self.epoch_ps + *used).max(at);
                start = Some(begin);
            }
            let take = remaining.min(self.epoch_ps - *used);
            *used += take;
            remaining -= take;
            if remaining == 0 {
                return start.expect("start set on first reservation");
            }
            epoch += 1;
        }
    }

    /// Total committed service time (for tests/stats).
    pub fn total_committed_ps(&self) -> u64 {
        self.used.values().sum()
    }

    /// Epoch length in picoseconds.
    pub fn epoch_ps(&self) -> u64 {
        self.epoch_ps
    }

    /// Epoch index containing `t`.
    pub fn epoch_of(&self, t: Time) -> u64 {
        t.as_ps() / self.epoch_ps
    }

    /// Serializes the committed-usage map for snapshot/restore, as
    /// `[epoch, used_ps]` pairs in epoch order.
    pub fn state_to_json_value(&self) -> JsonValue {
        let mut epochs: Vec<u64> = self.used.keys().copied().collect();
        epochs.sort_unstable();
        JsonValue::Array(
            epochs
                .into_iter()
                .map(|e| {
                    JsonValue::Array(vec![
                        JsonValue::num_u64(e),
                        JsonValue::num_u64(self.used[&e]),
                    ])
                })
                .collect(),
        )
    }

    /// Replaces the committed-usage map with a state captured by
    /// [`BandwidthMeter::state_to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns a message for anything that is not an array of
    /// `[epoch, used]` pairs.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let pairs = value
            .as_array()
            .ok_or("bandwidth state: not an array of pairs")?;
        let mut used: HashMap<_, _, Mix64Build> =
            HashMap::with_capacity_and_hasher(pairs.len(), Mix64Build::default());
        for pair in pairs {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("bandwidth state: entry is not an [epoch, used] pair")?;
            let epoch = pair[0]
                .as_u64()
                .ok_or("bandwidth state: epoch is not a u64")?;
            let committed = pair[1]
                .as_u64()
                .ok_or("bandwidth state: used is not a u64")?;
            used.insert(epoch, committed);
        }
        self.used = used;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_starts_immediately() {
        let mut m = BandwidthMeter::new(100_000);
        assert_eq!(m.acquire(Time::from_ns(5), 500), Time::from_ns(5));
    }

    #[test]
    fn saturation_spills_into_later_epochs() {
        let mut m = BandwidthMeter::new(1_000);
        // Commit 3 epochs' worth of work all at t=0.
        let mut last = Time::ZERO;
        for _ in 0..6 {
            last = m.acquire(Time::ZERO, 500);
        }
        assert!(
            last >= Time::from_ps(2_000),
            "sixth access must start in epoch 2"
        );
        assert_eq!(m.total_committed_ps(), 3_000);
    }

    #[test]
    fn out_of_order_arrivals_do_not_serialize() {
        let mut m = BandwidthMeter::new(100_000);
        // A PE far ahead in local time consumes bandwidth at 1 ms.
        let _ = m.acquire(Time::from_us(1_000), 5_000);
        // Another PE's access at 1 us must NOT be pushed behind it.
        let t = m.acquire(Time::from_us(1), 5_000);
        assert!(t < Time::from_us(2), "early access stalled to {t}");
    }

    #[test]
    fn long_occupancy_spans_epochs() {
        let mut m = BandwidthMeter::new(1_000);
        let start = m.acquire(Time::ZERO, 2_500);
        assert_eq!(start, Time::ZERO);
        assert_eq!(m.total_committed_ps(), 2_500);
        // Epochs 0..2 are now (partially) full.
        let next = m.acquire(Time::ZERO, 1_000);
        assert!(next >= Time::from_ps(2_000));
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut a = BandwidthMeter::new(1_000);
        for i in 0..10 {
            let _ = a.acquire(Time::from_ps(i * 300), 400);
        }
        let state = a.state_to_json_value();
        let mut b = BandwidthMeter::new(1_000);
        b.restore_state(&state).unwrap();
        assert_eq!(b.total_committed_ps(), a.total_committed_ps());
        // Identical future behavior.
        for i in 0..20 {
            assert_eq!(
                a.acquire(Time::from_ps(i * 150), 250),
                b.acquire(Time::from_ps(i * 150), 250)
            );
        }
        let bad = JsonValue::parse("[[1]]").unwrap();
        assert!(b.restore_state(&bad).is_err());
    }

    #[test]
    fn zero_occupancy_is_free() {
        let mut m = BandwidthMeter::new(1_000);
        assert_eq!(m.acquire(Time::from_ps(123), 0), Time::from_ps(123));
        assert_eq!(m.total_committed_ps(), 0);
    }
}
