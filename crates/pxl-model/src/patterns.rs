//! Higher-level parallel patterns built on continuation passing.
//!
//! The paper's framework ships a `parallel_for` helper "similar to Intel
//! TBB" plus a `blocked_range` concept (Section IV-B). Both are implemented
//! here purely in terms of the model primitives — recursive range splitting
//! with successor joins — demonstrating the composability property of
//! Section II-B2: data-parallel loops are just a spawning discipline over
//! continuation passing.

use crate::task::{Continuation, Task, TaskTypeId};
use crate::worker::TaskContext;

/// Cost charged for one range-splitting step (index arithmetic + two task
/// constructions), in abstract operations.
const SPLIT_OPS: u64 = 4;
/// Cost charged for one join/reduce step.
const JOIN_OPS: u64 = 1;

/// A half-open index range `[lo, hi)` with a grain size, as in TBB's
/// `blocked_range`.
///
/// # Examples
///
/// ```
/// use pxl_model::BlockedRange;
///
/// let r = BlockedRange::new(0, 100, 16);
/// assert!(r.is_divisible());
/// let (a, b) = r.split();
/// assert_eq!(a.hi(), b.lo());
/// assert_eq!(a.len() + b.len(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedRange {
    lo: u64,
    hi: u64,
    grain: u64,
}

impl BlockedRange {
    /// Creates a range `[lo, hi)` that recursive splitting stops dividing
    /// once its length is at most `grain`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `grain` is zero.
    pub fn new(lo: u64, hi: u64, grain: u64) -> Self {
        assert!(lo <= hi, "range must be ordered");
        assert!(grain > 0, "grain must be nonzero");
        BlockedRange { lo, hi, grain }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Grain size.
    pub fn grain(&self) -> u64 {
        self.grain
    }

    /// Number of indices in the range.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether recursive decomposition should split this range further.
    pub fn is_divisible(&self) -> bool {
        self.len() > self.grain
    }

    /// Splits at the midpoint.
    ///
    /// # Panics
    ///
    /// Panics if the range is not divisible.
    pub fn split(&self) -> (BlockedRange, BlockedRange) {
        assert!(self.is_divisible(), "range is not divisible");
        let mid = self.lo + self.len() / 2;
        (
            BlockedRange::new(self.lo, mid, self.grain),
            BlockedRange::new(mid, self.hi, self.grain),
        )
    }
}

/// A data-parallel loop with reduction, expressed as tasks.
///
/// Reserves two task types in the application's space: a *split* type that
/// recursively decomposes the range (the paper's recursive decomposition of
/// Fig. 2(a)) and a *join* type that combines two partial results by
/// addition. Leaves return a `u64` contribution; a plain `for` loop simply
/// returns 0.
///
/// A worker embeds the pattern by calling [`ParallelFor::step`] first and
/// falling through to its own task types when `step` returns `false`:
///
/// # Examples
///
/// ```
/// use pxl_model::{Continuation, ParallelFor, SerialExecutor, Task};
/// use pxl_model::{TaskContext, TaskTypeId, Worker};
///
/// const SPLIT: TaskTypeId = TaskTypeId(10);
/// const JOIN: TaskTypeId = TaskTypeId(11);
///
/// struct SumWorker {
///     pf: ParallelFor,
/// }
/// impl Worker for SumWorker {
///     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
///         let pf = self.pf;
///         let handled = pf.step(task, ctx, |_ctx, lo, hi| (lo..hi).sum::<u64>());
///         assert!(handled, "only pattern tasks exist in this worker");
///     }
/// }
///
/// let pf = ParallelFor::new(SPLIT, JOIN, 8);
/// let mut exec = SerialExecutor::new();
/// let root = pf.root_task(0, 100, Continuation::host(0));
/// let total = exec.run(&mut SumWorker { pf }, root).unwrap();
/// assert_eq!(total, (0..100).sum::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelFor {
    split_ty: TaskTypeId,
    join_ty: TaskTypeId,
    grain: u64,
}

impl ParallelFor {
    /// Creates a pattern using `split_ty`/`join_ty` as its reserved task
    /// types, splitting ranges down to `grain` indices.
    ///
    /// # Panics
    ///
    /// Panics if the two task types collide or `grain` is zero.
    pub fn new(split_ty: TaskTypeId, join_ty: TaskTypeId, grain: u64) -> Self {
        assert_ne!(split_ty, join_ty, "split and join types must differ");
        assert!(grain > 0, "grain must be nonzero");
        ParallelFor {
            split_ty,
            join_ty,
            grain,
        }
    }

    /// The grain size.
    pub fn grain(&self) -> u64 {
        self.grain
    }

    /// Builds the root task covering `[lo, hi)` whose reduced result is
    /// delivered to `k`.
    pub fn root_task(&self, lo: u64, hi: u64, k: Continuation) -> Task {
        Task::new(self.split_ty, k, &[lo, hi])
    }

    /// Handles `task` if it belongs to this pattern; returns whether it was
    /// handled. `leaf` runs each undivided subrange and returns its
    /// contribution to the reduction.
    pub fn step<F>(&self, task: &Task, ctx: &mut dyn TaskContext, mut leaf: F) -> bool
    where
        F: FnMut(&mut dyn TaskContext, u64, u64) -> u64,
    {
        if task.ty == self.split_ty {
            let range = BlockedRange::new(task.args[0], task.args[1], self.grain);
            if range.is_divisible() {
                ctx.compute(SPLIT_OPS);
                let kk = ctx.make_successor(self.join_ty, task.k, 2);
                let (a, b) = range.split();
                ctx.spawn(Task::new(self.split_ty, kk.with_slot(1), &[b.lo(), b.hi()]));
                ctx.spawn(Task::new(self.split_ty, kk.with_slot(0), &[a.lo(), a.hi()]));
            } else {
                let v = if range.is_empty() {
                    0
                } else {
                    leaf(ctx, range.lo(), range.hi())
                };
                ctx.send_arg(task.k, v);
            }
            true
        } else if task.ty == self.join_ty {
            ctx.compute(JOIN_OPS);
            ctx.send_arg(task.k, task.args[0].wrapping_add(task.args[1]));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialExecutor;
    use crate::worker::Worker;

    const SPLIT: TaskTypeId = TaskTypeId(10);
    const JOIN: TaskTypeId = TaskTypeId(11);

    #[test]
    fn blocked_range_splitting() {
        let r = BlockedRange::new(0, 10, 3);
        assert_eq!(r.len(), 10);
        assert!(r.is_divisible());
        let (a, b) = r.split();
        assert_eq!((a.lo(), a.hi()), (0, 5));
        assert_eq!((b.lo(), b.hi()), (5, 10));
        assert!(!BlockedRange::new(0, 3, 3).is_divisible());
        assert!(BlockedRange::new(5, 5, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn splitting_small_range_panics() {
        let _ = BlockedRange::new(0, 2, 4).split();
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_range_panics() {
        let _ = BlockedRange::new(5, 2, 1);
    }

    struct CoverageWorker {
        pf: ParallelFor,
        /// Bitmap address in functional memory where leaves mark coverage.
        base: u64,
    }

    impl Worker for CoverageWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let pf = self.pf;
            let base = self.base;
            let handled = pf.step(task, ctx, |ctx, lo, hi| {
                for i in lo..hi {
                    let addr = base + i;
                    let prev = ctx.mem().read_u8(addr);
                    ctx.mem().write_u8(addr, prev + 1);
                }
                hi - lo
            });
            assert!(handled);
        }
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        for (n, grain) in [(0u64, 4u64), (1, 4), (7, 3), (64, 8), (100, 7), (5, 100)] {
            let pf = ParallelFor::new(SPLIT, JOIN, grain);
            let mut exec = SerialExecutor::new();
            let root = pf.root_task(0, n, Continuation::host(0));
            let total = exec
                .run(&mut CoverageWorker { pf, base: 0x1000 }, root)
                .unwrap();
            assert_eq!(total, n, "reduction must count every index (n={n})");
            for i in 0..n {
                assert_eq!(
                    exec.memory().read_u8(0x1000 + i),
                    1,
                    "index {i} covered wrong number of times (n={n}, grain={grain})"
                );
            }
        }
    }

    #[test]
    fn parallel_for_task_count_scales_with_grain() {
        let run = |grain| {
            let pf = ParallelFor::new(SPLIT, JOIN, grain);
            let mut exec = SerialExecutor::new();
            let root = pf.root_task(0, 1024, Continuation::host(0));
            exec.run(&mut CoverageWorker { pf, base: 0 }, root).unwrap();
            exec.stats().tasks_executed
        };
        assert!(run(8) > run(128), "finer grain must create more tasks");
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn colliding_types_panic() {
        let _ = ParallelFor::new(SPLIT, SPLIT, 1);
    }
}
