//! Task, continuation and pending-task types — the hardware message formats.
//!
//! These types mirror the messages that flow over the accelerator's intra-
//! tile buses and inter-tile networks: task messages (`task_in`/`task_out`
//! ports), argument messages (`arg_out` port), and the P-Store entries that
//! pending tasks occupy. [`Continuation`] has an exact 64-bit encoding
//! ([`Continuation::encode`]) because it travels inside task and argument
//! messages in hardware.

use std::fmt;

/// Maximum number of argument words a task message carries.
///
/// The paper's Fibonacci task type carries four payload words; we provision
/// six so that the widest benchmark task (cilksort's parallel merge) fits in
/// one message.
pub const MAX_ARGS: usize = 6;

/// Identifies the function *f* of a task tuple *(f, args, k)* — the `type`
/// field of the task message that the worker dispatches on.
///
/// # Examples
///
/// ```
/// use pxl_model::TaskTypeId;
///
/// const FIB: TaskTypeId = TaskTypeId(0);
/// const SUM: TaskTypeId = TaskTypeId(1);
/// assert_ne!(FIB, SUM);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskTypeId(pub u8);

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A continuation: where a task's return value goes.
///
/// Points at one argument slot of a pending task, either in a tile's P-Store
/// or in the host interface block (for the computation's final results).
///
/// # Examples
///
/// ```
/// use pxl_model::Continuation;
///
/// let k = Continuation::pstore(2, 17, 0);
/// let k1 = k.with_slot(1);
/// assert_eq!(Continuation::decode(k1.encode()), k1);
/// assert_ne!(k, k1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Continuation {
    /// The value is a final result, delivered to the host interface block's
    /// result register `slot`.
    Host {
        /// Result register index in the interface block.
        slot: u8,
    },
    /// The value fills argument `slot` of P-Store entry `entry` on tile
    /// `tile`.
    PStore {
        /// Tile whose P-Store holds the pending task.
        tile: u16,
        /// Entry index within that P-Store.
        entry: u32,
        /// Argument slot to fill.
        slot: u8,
    },
}

impl Continuation {
    /// A continuation delivering to host result register `slot`.
    pub const fn host(slot: u8) -> Self {
        Continuation::Host { slot }
    }

    /// A continuation delivering to a P-Store entry's argument slot.
    pub const fn pstore(tile: u16, entry: u32, slot: u8) -> Self {
        Continuation::PStore { tile, entry, slot }
    }

    /// Returns this continuation retargeted at a different argument slot of
    /// the same pending task. Used after `make_successor` to point each
    /// spawned child at its own slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not below [`MAX_ARGS`].
    pub fn with_slot(self, slot: u8) -> Self {
        assert!((slot as usize) < MAX_ARGS, "slot {slot} out of range");
        match self {
            Continuation::Host { .. } => Continuation::Host { slot },
            Continuation::PStore { tile, entry, .. } => Continuation::PStore { tile, entry, slot },
        }
    }

    /// The argument slot this continuation targets.
    pub fn slot(self) -> u8 {
        match self {
            Continuation::Host { slot } => slot,
            Continuation::PStore { slot, .. } => slot,
        }
    }

    /// Packs the continuation into the 64-bit field it occupies in hardware
    /// task/argument messages.
    ///
    /// Layout: bit 63 = P-Store flag; bits 55..40 = tile; bits 39..8 = entry;
    /// bits 7..0 = slot.
    pub fn encode(self) -> u64 {
        match self {
            Continuation::Host { slot } => slot as u64,
            Continuation::PStore { tile, entry, slot } => {
                (1u64 << 63) | ((tile as u64) << 40) | ((entry as u64) << 8) | slot as u64
            }
        }
    }

    /// Inverse of [`Continuation::encode`].
    pub fn decode(bits: u64) -> Self {
        if bits >> 63 == 0 {
            Continuation::Host { slot: bits as u8 }
        } else {
            Continuation::PStore {
                tile: (bits >> 40) as u16,
                entry: ((bits >> 8) & 0xFFFF_FFFF) as u32,
                slot: bits as u8,
            }
        }
    }
}

impl fmt::Display for Continuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Continuation::Host { slot } => write!(f, "k(host:{slot})"),
            Continuation::PStore { tile, entry, slot } => {
                write!(f, "k(t{tile}.e{entry}.s{slot})")
            }
        }
    }
}

/// A ready task: the message a worker receives on its `task_in` port.
///
/// # Examples
///
/// ```
/// use pxl_model::{Continuation, Task, TaskTypeId};
///
/// let t = Task::new(TaskTypeId(3), Continuation::host(0), &[10, 20]);
/// assert_eq!(t.args[0], 10);
/// assert_eq!(t.args[2], 0); // unused slots read zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// The function this task runs.
    pub ty: TaskTypeId,
    /// Where the task's result goes.
    pub k: Continuation,
    /// Argument words (unused slots are zero).
    pub args: [u64; MAX_ARGS],
    /// Run-unique task instance id, stamped by the engine at spawn time
    /// (zero until stamped). Workers never read it; it only feeds tracing,
    /// so profilers can reconstruct the spawn/join DAG.
    pub id: u64,
}

impl Task {
    /// Creates a task; unspecified argument slots are zeroed and the
    /// instance id starts at zero (the engine stamps it on spawn).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ARGS`] arguments are given.
    pub fn new(ty: TaskTypeId, k: Continuation, args: &[u64]) -> Self {
        assert!(args.len() <= MAX_ARGS, "too many task arguments");
        let mut a = [0u64; MAX_ARGS];
        a[..args.len()].copy_from_slice(args);
        Task {
            ty,
            k,
            args: a,
            id: 0,
        }
    }

    /// Returns the task with its instance id set. Engines stamp ids from a
    /// per-run counter so every dispatched task is distinguishable in the
    /// trace.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Argument word `i` reinterpreted as `i64` (two's complement).
    pub fn arg_i64(&self, i: usize) -> i64 {
        self.args[i] as i64
    }

    /// Flattens the task into its [`TASK_WORDS`] word message encoding
    /// (`[ty, k, id, args...]`) for engine snapshots.
    pub fn to_words(&self) -> [u64; TASK_WORDS] {
        let mut w = [0u64; TASK_WORDS];
        w[0] = self.ty.0 as u64;
        w[1] = self.k.encode();
        w[2] = self.id;
        w[3..].copy_from_slice(&self.args);
        w
    }

    /// Inverse of [`Task::to_words`].
    ///
    /// # Errors
    ///
    /// Returns a message when `words` is not exactly [`TASK_WORDS`] long or
    /// the type word overflows a `u8`.
    pub fn from_words(words: &[u64]) -> Result<Task, String> {
        if words.len() != TASK_WORDS {
            return Err(format!(
                "task encoding holds {} words, expected {TASK_WORDS}",
                words.len()
            ));
        }
        let ty = u8::try_from(words[0]).map_err(|_| format!("task type {} overflows", words[0]))?;
        let mut args = [0u64; MAX_ARGS];
        args.copy_from_slice(&words[3..]);
        Ok(Task {
            ty: TaskTypeId(ty),
            k: Continuation::decode(words[1]),
            args,
            id: words[2],
        })
    }
}

/// Number of words in [`Task::to_words`]'s flat encoding.
pub const TASK_WORDS: usize = 3 + MAX_ARGS;

/// Number of words in [`PendingTask::to_words`]'s flat encoding.
pub const PENDING_WORDS: usize = 4 + MAX_ARGS;

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?})->{}", self.ty, &self.args, self.k)
    }
}

/// An argument message: the payload of the worker's `arg_out` port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Argument {
    /// Destination continuation (pending task slot or host register).
    pub k: Continuation,
    /// The value being returned.
    pub value: u64,
}

impl Argument {
    /// Creates an argument message.
    pub fn new(k: Continuation, value: u64) -> Self {
        Argument { k, value }
    }
}

/// A pending task: one P-Store entry.
///
/// Holds the task's type, its own continuation, the argument words collected
/// so far, and the join counter of missing arguments. Created by
/// `make_successor`; becomes a ready [`Task`] when the counter hits zero.
///
/// # Examples
///
/// ```
/// use pxl_model::{Continuation, PendingTask, TaskTypeId};
///
/// let mut p = PendingTask::new(TaskTypeId(1), Continuation::host(0), 2);
/// assert!(p.fill(0, 10).is_none());
/// let ready = p.fill(1, 20).expect("second argument completes the join");
/// assert_eq!(ready.args[0], 10);
/// assert_eq!(ready.args[1], 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTask {
    /// Task type to run once ready.
    pub ty: TaskTypeId,
    /// Continuation the ready task will carry.
    pub k: Continuation,
    /// Number of arguments still missing.
    pub join: u8,
    /// Argument words (preset + received).
    pub args: [u64; MAX_ARGS],
    /// Instance id the ready task inherits (see [`Task::id`]).
    pub id: u64,
}

impl PendingTask {
    /// Creates a pending task awaiting `join` arguments.
    ///
    /// # Panics
    ///
    /// Panics if `join` is zero (a ready task should be spawned directly) or
    /// exceeds [`MAX_ARGS`].
    pub fn new(ty: TaskTypeId, k: Continuation, join: u8) -> Self {
        assert!(
            join >= 1 && (join as usize) <= MAX_ARGS,
            "join counter must be in 1..={MAX_ARGS}"
        );
        PendingTask {
            ty,
            k,
            join,
            args: [0; MAX_ARGS],
            id: 0,
        }
    }

    /// Returns the pending task with its instance id set (see
    /// [`Task::with_id`]); the ready task produced by [`PendingTask::fill`]
    /// inherits it.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Presets argument slot `slot` (does not decrement the join counter);
    /// used for loop bounds or pointers the successor needs in addition to
    /// the joined values.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn preset(mut self, slot: u8, value: u64) -> Self {
        assert!((slot as usize) < MAX_ARGS, "slot {slot} out of range");
        self.args[slot as usize] = value;
        self
    }

    /// Flattens the pending task into its [`PENDING_WORDS`] word encoding
    /// (`[ty, k, join, id, args...]`) for engine snapshots.
    pub fn to_words(&self) -> [u64; PENDING_WORDS] {
        let mut w = [0u64; PENDING_WORDS];
        w[0] = self.ty.0 as u64;
        w[1] = self.k.encode();
        w[2] = self.join as u64;
        w[3] = self.id;
        w[4..].copy_from_slice(&self.args);
        w
    }

    /// Inverse of [`PendingTask::to_words`].
    ///
    /// # Errors
    ///
    /// Returns a message when `words` is not exactly [`PENDING_WORDS`] long
    /// or the type/join words overflow a `u8`.
    pub fn from_words(words: &[u64]) -> Result<PendingTask, String> {
        if words.len() != PENDING_WORDS {
            return Err(format!(
                "pending-task encoding holds {} words, expected {PENDING_WORDS}",
                words.len()
            ));
        }
        let ty = u8::try_from(words[0]).map_err(|_| format!("task type {} overflows", words[0]))?;
        let join =
            u8::try_from(words[2]).map_err(|_| format!("join counter {} overflows", words[2]))?;
        let mut args = [0u64; MAX_ARGS];
        args.copy_from_slice(&words[4..]);
        Ok(PendingTask {
            ty: TaskTypeId(ty),
            k: Continuation::decode(words[1]),
            join,
            args,
            id: words[3],
        })
    }

    /// Delivers an argument to `slot`, decrementing the join counter.
    /// Returns the ready task when the last argument arrives.
    ///
    /// # Panics
    ///
    /// Panics if the join counter is already zero or `slot` is out of range.
    pub fn fill(&mut self, slot: u8, value: u64) -> Option<Task> {
        assert!((slot as usize) < MAX_ARGS, "slot {slot} out of range");
        assert!(self.join > 0, "argument delivered to a completed join");
        self.args[slot as usize] = value;
        self.join -= 1;
        if self.join == 0 {
            Some(Task {
                ty: self.ty,
                k: self.k,
                args: self.args,
                id: self.id,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuation_encode_roundtrip() {
        let cases = [
            Continuation::host(0),
            Continuation::host(7),
            Continuation::pstore(0, 0, 0),
            Continuation::pstore(65_535, 0xFFFF_FFFF, 5),
            Continuation::pstore(3, 1234, 2),
        ];
        for k in cases {
            assert_eq!(Continuation::decode(k.encode()), k, "roundtrip {k}");
        }
    }

    #[test]
    fn with_slot_preserves_target() {
        let k = Continuation::pstore(1, 2, 0);
        match k.with_slot(3) {
            Continuation::PStore { tile, entry, slot } => {
                assert_eq!((tile, entry, slot), (1, 2, 3));
            }
            _ => panic!("must stay a P-Store continuation"),
        }
        assert_eq!(Continuation::host(0).with_slot(2).slot(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_slot_validates() {
        let _ = Continuation::host(0).with_slot(MAX_ARGS as u8);
    }

    #[test]
    fn task_construction() {
        let t = Task::new(TaskTypeId(1), Continuation::host(0), &[1, 2, 3]);
        assert_eq!(t.args, [1, 2, 3, 0, 0, 0]);
        let neg = Task::new(TaskTypeId(1), Continuation::host(0), &[(-5i64) as u64]);
        assert_eq!(neg.arg_i64(0), -5);
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn task_arg_overflow_panics() {
        let _ = Task::new(TaskTypeId(0), Continuation::host(0), &[0; MAX_ARGS + 1]);
    }

    #[test]
    fn pending_join_counts_down() {
        let mut p = PendingTask::new(TaskTypeId(2), Continuation::host(1), 3).preset(3, 99);
        assert!(p.fill(2, 30).is_none());
        assert!(p.fill(0, 10).is_none());
        let ready = p.fill(1, 20).unwrap();
        assert_eq!(ready.ty, TaskTypeId(2));
        assert_eq!(ready.k, Continuation::host(1));
        assert_eq!(ready.args, [10, 20, 30, 99, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "completed join")]
    fn overfilling_panics() {
        let mut p = PendingTask::new(TaskTypeId(0), Continuation::host(0), 1);
        let _ = p.fill(0, 1);
        let _ = p.fill(1, 2);
    }

    #[test]
    #[should_panic(expected = "join counter")]
    fn zero_join_panics() {
        let _ = PendingTask::new(TaskTypeId(0), Continuation::host(0), 0);
    }

    #[test]
    fn task_ids_propagate_through_joins() {
        let t = Task::new(TaskTypeId(0), Continuation::host(0), &[]);
        assert_eq!(t.id, 0, "unstamped tasks carry id zero");
        assert_eq!(t.with_id(42).id, 42);
        let mut p = PendingTask::new(TaskTypeId(1), Continuation::host(0), 1).with_id(7);
        let ready = p.fill(0, 0).unwrap();
        assert_eq!(ready.id, 7, "ready task inherits the pending id");
    }

    #[test]
    fn task_word_codec_round_trips() {
        let t = Task::new(TaskTypeId(5), Continuation::pstore(3, 1234, 2), &[1, 2, 3]).with_id(77);
        assert_eq!(Task::from_words(&t.to_words()).unwrap(), t);
        let p = PendingTask::new(TaskTypeId(9), Continuation::host(1), 2)
            .preset(3, 42)
            .with_id(8);
        assert_eq!(PendingTask::from_words(&p.to_words()).unwrap(), p);
        assert!(Task::from_words(&[0; TASK_WORDS - 1]).is_err());
        assert!(PendingTask::from_words(&[0; PENDING_WORDS + 1]).is_err());
        let mut bad = t.to_words();
        bad[0] = 300;
        assert!(Task::from_words(&bad).is_err(), "type word overflow");
    }

    #[test]
    fn display_formats() {
        let t = Task::new(TaskTypeId(1), Continuation::pstore(0, 5, 1), &[7]);
        let s = t.to_string();
        assert!(s.contains("T1") && s.contains("e5"), "got {s}");
        assert_eq!(Continuation::host(2).to_string(), "k(host:2)");
    }
}
