//! The serial reference executor.
//!
//! [`SerialExecutor`] runs a computation on a single logical processing
//! element with a LIFO task stack and an unbounded pending-task store. It is
//! the model-level ground truth the timing engines are validated against:
//!
//! * **Golden results** — every benchmark's output under any engine and PE
//!   count must match its output under the serial executor.
//! * **Space bound** — it measures *S₁*, the serial task-storage
//!   requirement. Work-stealing theory (Section II-C) bounds a `P`-PE
//!   execution's space by `S_P ≤ S₁·P`, which is what lets hardware task
//!   queues be finitely sized; integration tests check the simulated
//!   accelerator against this bound.

use pxl_mem::Memory;

use crate::task::{Argument, Continuation, PendingTask, Task, TaskTypeId};
use crate::worker::{TaskContext, Worker};

/// Number of host-interface result registers.
pub const HOST_SLOTS: usize = 8;

/// Errors a model-level execution can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Execution drained every queue but pending tasks never became ready —
    /// the task graph leaked joins (an argument was never sent).
    LeakedPending {
        /// Number of pending tasks left in the P-Store.
        count: usize,
    },
    /// The computation finished without writing the root continuation's
    /// host result register.
    NoResult {
        /// The slot that was expected to be written.
        slot: u8,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::LeakedPending { count } => {
                write!(f, "computation leaked {count} pending task(s)")
            }
            ExecError::NoResult { slot } => {
                write!(f, "no result delivered to host slot {slot}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Counters the serial executor collects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialStats {
    /// Ready tasks executed.
    pub tasks_executed: u64,
    /// Child tasks spawned.
    pub spawns: u64,
    /// Argument messages sent.
    pub args_sent: u64,
    /// Pending successor tasks created.
    pub successors: u64,
    /// Compute operations charged.
    pub ops: u64,
    /// Timed load/store/DMA line touches.
    pub mem_accesses: u64,
    /// Peak depth of the ready-task stack (the serial space bound `S₁`
    /// contribution from ready tasks).
    pub max_stack: usize,
    /// Peak number of simultaneously pending tasks.
    pub max_pending: usize,
}

impl SerialStats {
    /// The serial space requirement `S₁`: peak ready + pending tasks.
    pub fn s1(&self) -> usize {
        // Peak combined occupancy is conservatively bounded by the sum of
        // the individual peaks.
        self.max_stack + self.max_pending
    }
}

/// Single-PE reference scheduler (LIFO, greedy, unbounded storage).
///
/// # Examples
///
/// See the crate-level Fibonacci example.
#[derive(Debug, Default)]
pub struct SerialExecutor {
    mem: Memory,
    stack: Vec<Task>,
    pstore: Vec<Option<PendingTask>>,
    free: Vec<u32>,
    live_pending: usize,
    host: [Option<u64>; HOST_SLOTS],
    stats: SerialStats,
}

impl SerialExecutor {
    /// Creates an executor with empty memory.
    pub fn new() -> Self {
        SerialExecutor::default()
    }

    /// Creates an executor over pre-initialized memory (benchmark inputs).
    pub fn with_memory(mem: Memory) -> Self {
        SerialExecutor {
            mem,
            ..SerialExecutor::default()
        }
    }

    /// Mutable access to functional memory, for input setup and output
    /// checking.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Shared access to functional memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The collected statistics.
    pub fn stats(&self) -> SerialStats {
        self.stats
    }

    /// Value delivered to a host result register, if any.
    pub fn host_result(&self, slot: u8) -> Option<u64> {
        self.host.get(slot as usize).copied().flatten()
    }

    fn deliver(&mut self, arg: Argument) {
        match arg.k {
            Continuation::Host { slot } => {
                self.host[slot as usize] = Some(arg.value);
            }
            Continuation::PStore { entry, slot, .. } => {
                let cell = self.pstore[entry as usize]
                    .as_mut()
                    .expect("argument sent to a freed P-Store entry");
                if let Some(ready) = cell.fill(slot, arg.value) {
                    self.pstore[entry as usize] = None;
                    self.free.push(entry);
                    self.live_pending -= 1;
                    self.stack.push(ready);
                    self.stats.max_stack = self.stats.max_stack.max(self.stack.len());
                }
            }
        }
    }

    /// Runs `root` to completion and returns the value delivered to the
    /// root continuation's host slot.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::LeakedPending`] if the task graph strands
    /// pending tasks, or [`ExecError::NoResult`] if the root result slot is
    /// never written (only checked when the root continuation targets the
    /// host).
    pub fn run<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        root: Task,
    ) -> Result<u64, ExecError> {
        let result_slot = match root.k {
            Continuation::Host { slot } => Some(slot),
            _ => None,
        };
        self.stack.push(root);
        self.stats.max_stack = self.stats.max_stack.max(self.stack.len());
        while let Some(task) = self.stack.pop() {
            self.stats.tasks_executed += 1;
            worker.execute(&task, self);
        }
        if self.live_pending > 0 {
            return Err(ExecError::LeakedPending {
                count: self.live_pending,
            });
        }
        match result_slot {
            Some(slot) => self.host_result(slot).ok_or(ExecError::NoResult { slot }),
            None => Ok(0),
        }
    }
}

impl TaskContext for SerialExecutor {
    fn spawn(&mut self, task: Task) {
        self.stats.spawns += 1;
        self.stack.push(task);
        self.stats.max_stack = self.stats.max_stack.max(self.stack.len());
    }

    fn send_arg(&mut self, k: Continuation, value: u64) {
        self.stats.args_sent += 1;
        self.deliver(Argument::new(k, value));
    }

    fn make_successor_with(
        &mut self,
        ty: TaskTypeId,
        k: Continuation,
        join: u8,
        preset: &[(u8, u64)],
    ) -> Continuation {
        self.stats.successors += 1;
        let mut pending = PendingTask::new(ty, k, join);
        for &(slot, value) in preset {
            pending = pending.preset(slot, value);
        }
        let entry = match self.free.pop() {
            Some(e) => {
                self.pstore[e as usize] = Some(pending);
                e
            }
            None => {
                self.pstore.push(Some(pending));
                (self.pstore.len() - 1) as u32
            }
        };
        self.live_pending += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.live_pending);
        Continuation::pstore(0, entry, 0)
    }

    fn compute(&mut self, ops: u64) {
        self.stats.ops += ops;
    }

    fn load(&mut self, _addr: u64, _bytes: u32) {
        self.stats.mem_accesses += 1;
    }

    fn store(&mut self, _addr: u64, _bytes: u32) {
        self.stats.mem_accesses += 1;
    }

    fn amo(&mut self, _addr: u64) {
        self.stats.mem_accesses += 1;
    }

    fn dma_read(&mut self, _addr: u64, bytes: u64) {
        self.stats.mem_accesses += bytes.div_ceil(64);
    }

    fn dma_write(&mut self, _addr: u64, bytes: u64) {
        self.stats.mem_accesses += bytes.div_ceil(64);
    }

    fn mem(&mut self) -> &mut Memory {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: TaskTypeId = TaskTypeId(0);
    const SUM: TaskTypeId = TaskTypeId(1);

    struct FibWorker;
    impl Worker for FibWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let k = task.k;
            if task.ty == FIB {
                let n = task.args[0];
                ctx.compute(2);
                if n < 2 {
                    ctx.send_arg(k, n);
                } else {
                    let kk = ctx.make_successor(SUM, k, 2);
                    ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                    ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
                }
            } else {
                ctx.compute(1);
                ctx.send_arg(k, task.args[0] + task.args[1]);
            }
        }
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn fibonacci_matches_reference() {
        for n in [0u64, 1, 2, 5, 10, 15] {
            let mut exec = SerialExecutor::new();
            let got = exec
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[n]))
                .unwrap();
            assert_eq!(got, fib(n), "fib({n})");
        }
    }

    #[test]
    fn stats_are_collected() {
        let mut exec = SerialExecutor::new();
        let _ = exec
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[10]))
            .unwrap();
        let s = exec.stats();
        assert!(s.tasks_executed > 100);
        assert!(s.spawns > 0);
        assert!(s.successors > 0);
        assert!(s.max_pending > 0);
        assert!(s.ops > 0);
        assert!(s.s1() >= s.max_stack);
        // LIFO depth-first: the stack of fib(10) stays shallow.
        assert!(s.max_stack < 30, "depth-first stack got {}", s.max_stack);
    }

    #[test]
    fn pstore_entries_are_recycled() {
        let mut exec = SerialExecutor::new();
        let _ = exec
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[12]))
            .unwrap();
        // Every entry was freed; peak live is far below total successors.
        assert!(exec.live_pending == 0);
        assert!((exec.stats.max_pending as u64) < exec.stats.successors);
    }

    struct LeakyWorker;
    impl Worker for LeakyWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            // Creates a successor but never sends it any argument.
            let _ = ctx.make_successor(SUM, task.k, 2);
        }
    }

    #[test]
    fn leaked_pending_is_detected() {
        let mut exec = SerialExecutor::new();
        let err = exec
            .run(
                &mut LeakyWorker,
                Task::new(FIB, Continuation::host(0), &[1]),
            )
            .unwrap_err();
        assert_eq!(err, ExecError::LeakedPending { count: 1 });
        assert!(err.to_string().contains("leaked"));
    }

    struct SilentWorker;
    impl Worker for SilentWorker {
        fn execute(&mut self, _task: &Task, _ctx: &mut dyn TaskContext) {}
    }

    #[test]
    fn missing_result_is_detected() {
        let mut exec = SerialExecutor::new();
        let err = exec
            .run(
                &mut SilentWorker,
                Task::new(FIB, Continuation::host(3), &[]),
            )
            .unwrap_err();
        assert_eq!(err, ExecError::NoResult { slot: 3 });
    }

    struct MemWorker;
    impl Worker for MemWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let a = ctx.read_u32(0x100) as u64;
            ctx.write_u32(0x200, (a + 1) as u32);
            ctx.send_arg(task.k, a + 1);
        }
    }

    #[test]
    fn memory_accessors_flow_through_context() {
        let mut exec = SerialExecutor::new();
        exec.mem_mut().write_u32(0x100, 41);
        let got = exec
            .run(&mut MemWorker, Task::new(FIB, Continuation::host(0), &[]))
            .unwrap();
        assert_eq!(got, 42);
        assert_eq!(exec.memory().read_u32(0x200), 42);
        assert_eq!(exec.stats().mem_accesses, 2);
    }
}
