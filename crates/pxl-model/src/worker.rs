//! The worker abstraction: application logic behind the PE's port interface.
//!
//! A [`Worker`] is the Rust analogue of the paper's C++-based worker
//! description (CPPWD, Fig. 5). The architecture "does not stipulate how the
//! worker is implemented as long as it follows the interface protocol"
//! (Section III-A); here the protocol is the [`TaskContext`] trait, whose
//! methods correspond one-to-one to the hardware ports:
//!
//! | Hardware port        | `TaskContext` method        |
//! |----------------------|-----------------------------|
//! | `task_out`           | [`TaskContext::spawn`]      |
//! | `arg_out`            | [`TaskContext::send_arg`]   |
//! | `cont_req`/`cont_resp` | [`TaskContext::make_successor`] |
//! | memory port          | typed loads/stores, [`TaskContext::dma_read`] etc. |
//!
//! Compute work is reported in architecture-neutral *operations* via
//! [`TaskContext::compute`]; each engine converts operations to cycles
//! through an [`ExecProfile`] — the accelerator side models the HLS loop
//! pipelining/unrolling the paper applies to every worker, the CPU side
//! models superscalar issue plus NEON auto-vectorization of the Cilk Plus
//! baseline.

use pxl_mem::Memory;

use crate::task::{Continuation, Task, TaskTypeId};

/// How fast each engine retires one unit of a worker's compute work.
///
/// A worker reports work in abstract operations (one addition/comparison/
/// multiply-accumulate). The profile maps operations to cycles:
///
/// * `accel_ops_per_cycle` — operations the HLS-generated datapath finishes
///   per 200 MHz fabric cycle (loop unrolling, pipelining, scratchpad
///   bandwidth). "A single PE ... can be considered to represent optimized
///   accelerators designed using today's HLS tools" (Section V-A).
/// * `cpu_ops_per_cycle` — operations one out-of-order core finishes per
///   1 GHz cycle for this kernel (issue width, dependence chains, NEON
///   vectorization).
///
/// # Examples
///
/// ```
/// use pxl_model::ExecProfile;
///
/// let p = ExecProfile::new(8.0, 2.0);
/// assert_eq!(p.accel_cycles(16), 2);
/// assert_eq!(p.cpu_cycles(16), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecProfile {
    /// Operations per accelerator (200 MHz) cycle.
    pub accel_ops_per_cycle: f64,
    /// Operations per CPU (1 GHz) cycle.
    pub cpu_ops_per_cycle: f64,
}

impl ExecProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not positive.
    pub fn new(accel_ops_per_cycle: f64, cpu_ops_per_cycle: f64) -> Self {
        assert!(
            accel_ops_per_cycle > 0.0 && cpu_ops_per_cycle > 0.0,
            "profile rates must be positive"
        );
        ExecProfile {
            accel_ops_per_cycle,
            cpu_ops_per_cycle,
        }
    }

    /// A neutral profile (one op per cycle on both engines).
    pub fn scalar() -> Self {
        ExecProfile::new(1.0, 1.0)
    }

    /// Accelerator cycles to retire `ops` operations (at least 1 for any
    /// nonzero work).
    pub fn accel_cycles(&self, ops: u64) -> u64 {
        if ops == 0 {
            0
        } else {
            ((ops as f64 / self.accel_ops_per_cycle).ceil() as u64).max(1)
        }
    }

    /// CPU cycles to retire `ops` operations (at least 1 for any nonzero
    /// work).
    pub fn cpu_cycles(&self, ops: u64) -> u64 {
        if ops == 0 {
            0
        } else {
            ((ops as f64 / self.cpu_ops_per_cycle).ceil() as u64).max(1)
        }
    }
}

impl Default for ExecProfile {
    fn default() -> Self {
        ExecProfile::scalar()
    }
}

/// The environment a worker executes in: the PE's ports, its memory port,
/// and compute-time accounting.
///
/// Implemented by every engine (the FlexArch and LiteArch simulators, the
/// software-runtime CPU model, and the serial reference executor), so one
/// `Worker` implementation runs unmodified everywhere — the property the
/// paper calls separating "the logical parallelism of the computation from
/// the physical parallelism of the hardware".
pub trait TaskContext {
    /// Spawns a child task (the `task_out` port).
    fn spawn(&mut self, task: Task);

    /// Returns a value to a continuation (the `arg_out` port).
    fn send_arg(&mut self, k: Continuation, value: u64);

    /// Creates a pending successor task awaiting `join` arguments and
    /// returns a continuation pointing at its slot 0 (the
    /// `cont_req`/`cont_resp` port pair). Retarget with
    /// [`Continuation::with_slot`] for each child.
    fn make_successor(&mut self, ty: TaskTypeId, k: Continuation, join: u8) -> Continuation {
        self.make_successor_with(ty, k, join, &[])
    }

    /// Like [`TaskContext::make_successor`], additionally presetting
    /// argument slots that do not participate in the join (loop bounds,
    /// base pointers).
    fn make_successor_with(
        &mut self,
        ty: TaskTypeId,
        k: Continuation,
        join: u8,
        preset: &[(u8, u64)],
    ) -> Continuation;

    /// Charges `ops` architecture-neutral operations of datapath work.
    fn compute(&mut self, ops: u64);

    /// Charges a timed load of `bytes` bytes at `addr` through the cache
    /// hierarchy (data comes from [`TaskContext::mem`]).
    fn load(&mut self, addr: u64, bytes: u32);

    /// Charges a timed store of `bytes` bytes at `addr`.
    fn store(&mut self, addr: u64, bytes: u32);

    /// Charges an atomic read-modify-write at `addr`.
    fn amo(&mut self, addr: u64);

    /// Charges a burst read of `bytes` bytes into a worker-local scratchpad
    /// (the paper's application-specific local memory structures). After a
    /// `dma_read`, compute over that data uses the untimed accessors.
    fn dma_read(&mut self, addr: u64, bytes: u64);

    /// Charges a burst write of `bytes` bytes from a worker-local
    /// scratchpad.
    fn dma_write(&mut self, addr: u64, bytes: u64);

    /// Direct access to functional memory, untimed. Use for scratchpad-
    /// resident data already charged via DMA, or for host-side setup.
    fn mem(&mut self) -> &mut Memory;

    // --- Typed convenience accessors (timed load/store + functional data).

    /// Timed 8-bit load.
    fn read_u8(&mut self, addr: u64) -> u8 {
        self.load(addr, 1);
        self.mem().read_u8(addr)
    }
    /// Timed 32-bit load.
    fn read_u32(&mut self, addr: u64) -> u32 {
        self.load(addr, 4);
        self.mem().read_u32(addr)
    }
    /// Timed 32-bit signed load.
    fn read_i32(&mut self, addr: u64) -> i32 {
        self.load(addr, 4);
        self.mem().read_i32(addr)
    }
    /// Timed 64-bit load.
    fn read_u64(&mut self, addr: u64) -> u64 {
        self.load(addr, 8);
        self.mem().read_u64(addr)
    }
    /// Timed 8-bit store.
    fn write_u8(&mut self, addr: u64, v: u8) {
        self.store(addr, 1);
        self.mem().write_u8(addr, v);
    }
    /// Timed 32-bit store.
    fn write_u32(&mut self, addr: u64, v: u32) {
        self.store(addr, 4);
        self.mem().write_u32(addr, v);
    }
    /// Timed 32-bit signed store.
    fn write_i32(&mut self, addr: u64, v: i32) {
        self.store(addr, 4);
        self.mem().write_i32(addr, v);
    }
    /// Timed 64-bit store.
    fn write_u64(&mut self, addr: u64, v: u64) {
        self.store(addr, 8);
        self.mem().write_u64(addr, v);
    }
}

/// Application logic: consumes one ready task, produces spawns/arguments.
///
/// Implementations must be deterministic functions of the task and memory
/// state — the engines rely on this for reproducibility. A worker is
/// *homogeneous* (Section III-A): it can run any task type in the
/// computation's graph, dispatching on `task.ty`.
pub trait Worker {
    /// Processes one ready task.
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext);
}

impl<W: Worker + ?Sized> Worker for &mut W {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        (**self).execute(task, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_cycle_math() {
        let p = ExecProfile::new(4.0, 2.0);
        assert_eq!(p.accel_cycles(0), 0);
        assert_eq!(p.cpu_cycles(0), 0);
        assert_eq!(p.accel_cycles(1), 1);
        assert_eq!(p.accel_cycles(9), 3);
        assert_eq!(p.cpu_cycles(9), 5);
    }

    #[test]
    fn scalar_profile_is_identity() {
        let p = ExecProfile::scalar();
        assert_eq!(p.accel_cycles(17), 17);
        assert_eq!(p.cpu_cycles(17), 17);
        assert_eq!(ExecProfile::default(), p);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn profile_rejects_zero_rate() {
        let _ = ExecProfile::new(0.0, 1.0);
    }
}
