//! The ParallelXL computation model: tasks with explicit continuation
//! passing.
//!
//! This crate implements Section II of the paper. The primitives:
//!
//! * A **task** is a tuple *(f, args, k)* — a function id ([`TaskTypeId`]),
//!   argument words, and a [`Continuation`] pointing at the pending task
//!   that should receive this task's return value.
//! * A task may **spawn** children; spawned tasks eventually **join** by
//!   sending arguments to a pending **successor** task created with
//!   `make_successor`. Each pending task carries a **join counter**; when the
//!   counter reaches zero the task becomes ready.
//! * Everything else — sequential composition, fork-join, data-parallel
//!   loops, the wavefront pattern of dynamic programming — is built from
//!   these primitives (the paper's Fig. 1 and Fig. 2).
//!
//! Algorithms are described by implementing [`Worker`], the Rust analogue of
//! the paper's C++-based worker description (CPPWD, Fig. 5): a worker
//! receives one ready task and talks to the architecture exclusively through
//! the port-like methods of [`TaskContext`] (`spawn`, `send_arg`,
//! `make_successor`, plus memory and compute accounting).
//!
//! The crate also provides [`patterns::ParallelFor`] (the paper's
//! `parallel_for` helper with `blocked_range` semantics) and a
//! [`serial::SerialExecutor`] — the single-PE reference scheduler used for
//! golden checks and for measuring the serial space bound *S₁* that sizes
//! hardware queues (Section II-C).
//!
//! # Examples
//!
//! Fibonacci, the paper's running example (Fig. 5), and its serial execution:
//!
//! ```
//! use pxl_model::{Continuation, Task, TaskContext, TaskTypeId, Worker};
//! use pxl_model::serial::SerialExecutor;
//!
//! const FIB: TaskTypeId = TaskTypeId(0);
//! const SUM: TaskTypeId = TaskTypeId(1);
//!
//! struct FibWorker;
//! impl Worker for FibWorker {
//!     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
//!         let k = task.k;
//!         if task.ty == FIB {
//!             let n = task.args[0];
//!             if n < 2 {
//!                 ctx.send_arg(k, n);
//!             } else {
//!                 let kk = ctx.make_successor(SUM, k, 2);
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
//!             }
//!         } else {
//!             ctx.send_arg(k, task.args[0] + task.args[1]);
//!         }
//!     }
//! }
//!
//! let mut exec = SerialExecutor::new();
//! let root = Task::new(FIB, Continuation::host(0), &[10]);
//! let result = exec.run(&mut FibWorker, root).unwrap();
//! assert_eq!(result, 55);
//! ```

pub mod patterns;
pub mod serial;
pub mod task;
pub mod trace;
pub mod worker;

pub use patterns::{BlockedRange, ParallelFor};
pub use serial::SerialExecutor;
pub use task::{
    Argument, Continuation, PendingTask, Task, TaskTypeId, MAX_ARGS, PENDING_WORDS, TASK_WORDS,
};
pub use trace::{TaskGraph, TracingExecutor};
pub use worker::{ExecProfile, TaskContext, Worker};
