//! Task-graph tracing: record the dynamic task graph a worker unfolds and
//! export it for inspection.
//!
//! The paper's Fig. 2 illustrates the graphs that continuation passing
//! builds at run time — the regular tree of a data-parallel vector add, the
//! unbalanced fork-join tree of Fibonacci, the wavefront lattice of dynamic
//! programming. [`TracingExecutor`] runs a worker with the serial reference
//! semantics while recording every node (executed task or pending
//! successor) and every edge (spawn, successor creation, argument return),
//! producing a [`TaskGraph`] that can be checked structurally or rendered
//! to Graphviz DOT.
//!
//! # Examples
//!
//! ```
//! use pxl_model::trace::{EdgeKind, TracingExecutor};
//! use pxl_model::{Continuation, Task, TaskContext, TaskTypeId, Worker};
//!
//! const FIB: TaskTypeId = TaskTypeId(0);
//! const SUM: TaskTypeId = TaskTypeId(1);
//! struct Fib;
//! impl Worker for Fib {
//!     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
//!         let k = task.k;
//!         if task.ty == FIB {
//!             let n = task.args[0];
//!             if n < 2 {
//!                 ctx.send_arg(k, n);
//!             } else {
//!                 let kk = ctx.make_successor(SUM, k, 2);
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
//!             }
//!         } else {
//!             ctx.send_arg(k, task.args[0] + task.args[1]);
//!         }
//!     }
//! }
//!
//! let mut tracer = TracingExecutor::new();
//! let (result, graph) = tracer
//!     .run(&mut Fib, Task::new(FIB, Continuation::host(0), &[4]))
//!     .unwrap();
//! assert_eq!(result, 3);
//! // fib(4): 9 FIB tasks + 4 SUM successors (the paper's Fig. 2b).
//! assert_eq!(graph.node_count(), 13);
//! assert!(graph.is_acyclic());
//! assert_eq!(graph.edges_of_kind(EdgeKind::Successor).count(), 4);
//! ```

use pxl_mem::Memory;

use crate::serial::{ExecError, HOST_SLOTS};
use crate::task::{Continuation, PendingTask, Task, TaskTypeId};
use crate::worker::{TaskContext, Worker};

/// Identifies one node of a recorded task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Parent spawned child (the downward arrows of Fig. 1).
    Spawn,
    /// Task created a pending successor (the horizontal arrows of Fig. 1).
    Successor,
    /// Task returned a value to a continuation (the dotted arrows of
    /// Fig. 1).
    Arg,
}

/// One recorded node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The task type.
    pub ty: TaskTypeId,
    /// Whether the node was created as a pending successor (join) rather
    /// than a spawned/root task.
    pub pending: bool,
    /// First argument word at execution time (a convenient label, e.g.
    /// `n` for Fibonacci).
    pub label_arg: u64,
}

/// The dynamic task graph one execution unfolded.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
}

impl TaskGraph {
    /// Number of recorded nodes (tasks + successors).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of recorded edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges `(from, to, kind)`.
    pub fn edges(&self) -> &[(NodeId, NodeId, EdgeKind)] {
        &self.edges
    }

    /// Iterates the edges of one kind.
    pub fn edges_of_kind(&self, kind: EdgeKind) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .filter(move |(_, _, k)| *k == kind)
            .map(|&(a, b, _)| (a, b))
    }

    /// Whether the graph (all edge kinds) is a DAG — continuation passing
    /// can only reference already-created tasks, so a cycle indicates a
    /// protocol violation.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b, _) in &self.edges {
            out[a.0].push(b.0);
            indeg[b.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &out[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        seen == n
    }

    /// Length (in nodes) of the longest dependence chain through the graph
    /// — the paper's *critical path*, which bounds achievable speedup.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn critical_path_len(&self) -> usize {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b, _) in &self.edges {
            out[a.0].push(b.0);
            indeg[b.0] += 1;
        }
        let mut depth = vec![1usize; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        let mut best = if n == 0 { 0 } else { 1 };
        while let Some(v) = queue.pop() {
            seen += 1;
            best = best.max(depth[v]);
            for &w in &out[v] {
                depth[w] = depth[w].max(depth[v] + 1);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        assert!(seen == n, "critical path of a cyclic graph");
        best
    }

    /// Renders the graph as Graphviz DOT. `name_of` labels task types
    /// (e.g. `|t| if t == FIB { "fib" } else { "sum" }`).
    pub fn to_dot(&self, name_of: &dyn Fn(TaskTypeId) -> String) -> String {
        let mut s = String::from("digraph tasks {\n  rankdir=TB;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = if node.pending { "ellipse" } else { "box" };
            s.push_str(&format!(
                "  n{} [label=\"{}({})\", shape={}];\n",
                i,
                name_of(node.ty),
                node.label_arg,
                shape
            ));
        }
        for &(a, b, kind) in &self.edges {
            let style = match kind {
                EdgeKind::Spawn => "solid",
                EdgeKind::Successor => "bold",
                EdgeKind::Arg => "dashed",
            };
            s.push_str(&format!("  n{} -> n{} [style={}];\n", a.0, b.0, style));
        }
        s.push_str("}\n");
        s
    }
}

/// A serial executor that records the task graph while running.
///
/// Semantics match [`crate::SerialExecutor`] (LIFO stack, unbounded pending
/// storage, greedy readiness); intended for debugging, visualization and
/// structural tests rather than timing.
#[derive(Debug, Default)]
pub struct TracingExecutor {
    mem: Memory,
    stack: Vec<(Task, NodeId)>,
    pstore: Vec<Option<(PendingTask, NodeId)>>,
    free: Vec<u32>,
    live_pending: usize,
    host: [Option<u64>; HOST_SLOTS],
    graph: TaskGraph,
}

impl TracingExecutor {
    /// Creates a tracer with empty memory.
    pub fn new() -> Self {
        TracingExecutor::default()
    }

    /// Mutable access to functional memory for input setup.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Runs `root` to completion, returning its result and the recorded
    /// graph.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::SerialExecutor::run`].
    pub fn run<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        root: Task,
    ) -> Result<(u64, TaskGraph), ExecError> {
        let result_slot = match root.k {
            Continuation::Host { slot } => Some(slot),
            _ => None,
        };
        let root_node = self.add_node(root.ty, false, root.args[0]);
        self.stack.push((root, root_node));
        while let Some((task, node)) = self.stack.pop() {
            let mut ctx = TraceCtx {
                exec: self,
                current: node,
            };
            worker.execute(&task, &mut ctx);
        }
        if self.live_pending > 0 {
            return Err(ExecError::LeakedPending {
                count: self.live_pending,
            });
        }
        let result = match result_slot {
            Some(slot) => self.host[slot as usize].ok_or(ExecError::NoResult { slot })?,
            None => 0,
        };
        Ok((result, std::mem::take(&mut self.graph)))
    }

    fn add_node(&mut self, ty: TaskTypeId, pending: bool, label_arg: u64) -> NodeId {
        self.graph.nodes.push(Node {
            ty,
            pending,
            label_arg,
        });
        NodeId(self.graph.nodes.len() - 1)
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.graph.edges.push((from, to, kind));
    }
}

struct TraceCtx<'e> {
    exec: &'e mut TracingExecutor,
    current: NodeId,
}

impl TaskContext for TraceCtx<'_> {
    fn spawn(&mut self, task: Task) {
        let node = self.exec.add_node(task.ty, false, task.args[0]);
        self.exec.add_edge(self.current, node, EdgeKind::Spawn);
        self.exec.stack.push((task, node));
    }

    fn send_arg(&mut self, k: Continuation, value: u64) {
        match k {
            Continuation::Host { slot } => {
                self.exec.host[slot as usize] = Some(value);
            }
            Continuation::PStore { entry, slot, .. } => {
                let (ready, target) = {
                    let (cell, node) = self.exec.pstore[entry as usize]
                        .as_mut()
                        .map(|(c, n)| (c, *n))
                        .expect("argument sent to a freed P-Store entry");
                    (cell.fill(slot, value), node)
                };
                self.exec.add_edge(self.current, target, EdgeKind::Arg);
                if let Some(ready) = ready {
                    self.exec.pstore[entry as usize] = None;
                    self.exec.free.push(entry);
                    self.exec.live_pending -= 1;
                    self.exec.graph.nodes[target.0].label_arg = ready.args[0];
                    self.exec.stack.push((ready, target));
                }
            }
        }
    }

    fn make_successor_with(
        &mut self,
        ty: TaskTypeId,
        k: Continuation,
        join: u8,
        preset: &[(u8, u64)],
    ) -> Continuation {
        let mut pending = PendingTask::new(ty, k, join);
        for &(slot, value) in preset {
            pending = pending.preset(slot, value);
        }
        let node = self.exec.add_node(ty, true, 0);
        self.exec.add_edge(self.current, node, EdgeKind::Successor);
        let entry = match self.exec.free.pop() {
            Some(e) => {
                self.exec.pstore[e as usize] = Some((pending, node));
                e
            }
            None => {
                self.exec.pstore.push(Some((pending, node)));
                (self.exec.pstore.len() - 1) as u32
            }
        };
        self.exec.live_pending += 1;
        Continuation::pstore(0, entry, 0)
    }

    fn compute(&mut self, _ops: u64) {}
    fn load(&mut self, _addr: u64, _bytes: u32) {}
    fn store(&mut self, _addr: u64, _bytes: u32) {}
    fn amo(&mut self, _addr: u64) {}
    fn dma_read(&mut self, _addr: u64, _bytes: u64) {}
    fn dma_write(&mut self, _addr: u64, _bytes: u64) {}

    fn mem(&mut self) -> &mut Memory {
        &mut self.exec.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: TaskTypeId = TaskTypeId(0);
    const SUM: TaskTypeId = TaskTypeId(1);

    struct FibWorker;
    impl Worker for FibWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let k = task.k;
            if task.ty == FIB {
                let n = task.args[0];
                if n < 2 {
                    ctx.send_arg(k, n);
                } else {
                    let kk = ctx.make_successor(SUM, k, 2);
                    ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                    ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
                }
            } else {
                ctx.send_arg(k, task.args[0] + task.args[1]);
            }
        }
    }

    fn fib_graph(n: u64) -> (u64, TaskGraph) {
        let mut tracer = TracingExecutor::new();
        tracer
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[n]))
            .unwrap()
    }

    #[test]
    fn fib4_matches_paper_fig2b() {
        let (result, g) = fib_graph(4);
        assert_eq!(result, 3);
        // Fig. 2(b): nodes 4,3,2,2,1,1,1,0,0 (9 fib calls) + 4 S nodes.
        let fib_nodes = g.nodes().iter().filter(|n| n.ty == FIB).count();
        let sum_nodes = g.nodes().iter().filter(|n| n.ty == SUM).count();
        assert_eq!(fib_nodes, 9);
        assert_eq!(sum_nodes, 4);
        // Each internal fib contributes 2 spawn edges and 1 successor edge.
        assert_eq!(g.edges_of_kind(EdgeKind::Spawn).count(), 8);
        assert_eq!(g.edges_of_kind(EdgeKind::Successor).count(), 4);
        // P-Store argument edges: the 5 leaves (fib(1)/fib(0)) each send
        // one, and 3 of the 4 S nodes forward to a parent S (the root S
        // returns to the host, which is not a graph node).
        assert_eq!(g.edges_of_kind(EdgeKind::Arg).count(), 8);
    }

    #[test]
    fn graphs_are_acyclic_with_sane_critical_paths() {
        for n in [2u64, 5, 8, 10] {
            let (_, g) = fib_graph(n);
            assert!(g.is_acyclic(), "fib({n}) graph must be a DAG");
            let cp = g.critical_path_len();
            // The critical path grows with n but is far below the node count.
            assert!(cp >= n as usize, "fib({n}): cp {cp}");
            assert!(
                cp < g.node_count(),
                "fib({n}): cp {cp} nodes {}",
                g.node_count()
            );
        }
    }

    #[test]
    fn dot_output_is_wellformed() {
        let (_, g) = fib_graph(3);
        let dot = g.to_dot(&|t| if t == FIB { "fib".into() } else { "S".into() });
        assert!(dot.starts_with("digraph tasks {"));
        assert!(dot.ends_with("}\n"));
        assert!(
            dot.contains("shape=ellipse"),
            "successors drawn as ellipses"
        );
        assert!(
            dot.contains("style=dashed"),
            "arg edges dashed, as in Fig. 1"
        );
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }

    #[test]
    fn leak_detection_matches_serial_executor() {
        struct Leaky;
        impl Worker for Leaky {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let _ = ctx.make_successor(SUM, task.k, 2);
            }
        }
        let mut tracer = TracingExecutor::new();
        let err = tracer
            .run(&mut Leaky, Task::new(FIB, Continuation::host(0), &[1]))
            .unwrap_err();
        assert_eq!(err, ExecError::LeakedPending { count: 1 });
    }
}
