//! A deterministic discrete-event queue with data-oriented internals.
//!
//! The accelerator and CPU models are predominantly cycle-driven, but the
//! surrounding system (memory responses, steal round trips, host/accelerator
//! interface transactions) is naturally event-driven — the same split the
//! paper uses when embedding a cycle-based RTL simulator inside gem5's
//! event-driven core. [`EventQueue`] orders arbitrary payloads by timestamp
//! with FIFO tie-breaking so simulation is deterministic regardless of
//! insertion order at equal times.
//!
//! # Data layout
//!
//! Payloads never move after insertion: they live in a free-list
//! [`EventSlab`] and the queue orders only compact 24-byte
//! `(time, seq, slot)` index entries. Two lanes hold those entries:
//!
//! * a **near-future bucket ring** — [`NUM_BUCKETS`] buckets of
//!   `1 << BUCKET_SHIFT` picoseconds each, covering the window
//!   `[cursor, cursor + NUM_BUCKETS)` of absolute bucket indices. The
//!   dominant short-latency events (PE wakes, steal hops, argument
//!   deliveries) land here with O(1) pushes and amortized-O(1) pops: the
//!   cursor only moves forward, so empty-bucket skips are paid once per
//!   bucket, not once per pop.
//! * a **far/overflow binary heap** for everything beyond the window
//!   (watchdog horizons, timed faults, long stalls) and, defensively, for
//!   any push behind the cursor.
//!
//! Correctness never depends on lane placement: every pop compares the
//! earliest candidate of *both* lanes under the same `(time, seq)` order, so
//! a misrouted entry costs a heap operation, never a reordering. The pop
//! order is therefore bit-identical to the plain binary-heap implementation
//! this replaced (a qcheck property in `tests/properties.rs` holds the two
//! equivalent over random interleavings).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Near-future lane geometry: `NUM_BUCKETS` buckets of `1 << BUCKET_SHIFT`
/// picoseconds. At the fabric's 200 MHz clock (5000 ps/cycle) this spans
/// ~420 cycles — wide enough for dispatch/steal/backoff deltas, while
/// watchdog- and fault-horizon events overflow to the heap lane.
const BUCKET_SHIFT: u32 = 13;
const NUM_BUCKETS: usize = 256;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;

/// A free-list slab: stable `u32` handles to payloads that never move until
/// removed. [`EventQueue`] stores its payloads here; `pxl-arch` reuses it to
/// park task payloads outside its event enum so events stay small.
#[derive(Debug, Clone)]
pub struct EventSlab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for EventSlab<T> {
    fn default() -> Self {
        EventSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> EventSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        EventSlab::default()
    }

    /// Stores `value`, returning its stable slot handle.
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Removes and returns the payload at `slot`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant — a handle was used twice or never issued,
    /// which is always a logic error in the caller.
    pub fn take(&mut self, slot: u32) -> T {
        let value = self.slots[slot as usize]
            .take()
            .expect("slab slot is occupied");
        self.free.push(slot);
        value
    }

    /// Shared access to the payload at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant.
    pub fn get(&self, slot: u32) -> &T {
        self.slots[slot as usize]
            .as_ref()
            .expect("slab slot is occupied")
    }

    /// Number of live payloads.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no payloads are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every payload and recycles all slots.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// A compact index entry: the heap and buckets order these 24-byte records
/// while the payload stays put in the slab.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    when: Time,
    seq: u64,
    slot: u32,
}

impl IndexEntry {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.when, self.seq)
    }
}

impl PartialEq for IndexEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for IndexEntry {}

impl Ord for IndexEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and break timestamp ties by insertion order (lower seq first).
        other.key().cmp(&self.key())
    }
}
impl PartialOrd for IndexEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One ring bucket: entries sorted by `(time, seq)` ascending, consumed
/// from `head` forward. Simulated time mostly moves forward, so the common
/// push is an O(1) append at the back and every pop is an O(1) read at
/// `head`; only the rare out-of-order push within a bucket pays a binary
/// search plus a short memmove. The consumed prefix is reclaimed wholesale
/// when the bucket drains.
#[derive(Debug, Clone, Default)]
struct Bucket {
    entries: Vec<IndexEntry>,
    head: usize,
}

impl Bucket {
    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.entries.len()
    }

    /// The earliest live entry (entries are ascending past `head`).
    #[inline]
    fn front(&self) -> Option<&IndexEntry> {
        self.entries.get(self.head)
    }

    #[inline]
    fn push(&mut self, entry: IndexEntry) {
        if self.is_empty() {
            self.entries.clear();
            self.head = 0;
        }
        if self
            .entries
            .last()
            .is_none_or(|back| back.key() < entry.key())
        {
            self.entries.push(entry);
        } else {
            let at =
                self.head + self.entries[self.head..].partition_point(|e| e.key() < entry.key());
            self.entries.insert(at, entry);
        }
    }

    /// Consumes the earliest live entry.
    #[inline]
    fn pop_front(&mut self) -> IndexEntry {
        let entry = self.entries[self.head];
        self.head += 1;
        if self.head == self.entries.len() {
            self.entries.clear();
            self.head = 0;
        }
        entry
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
    }

    /// The live (unconsumed) entries.
    fn live(&self) -> &[IndexEntry] {
        &self.entries[self.head..]
    }
}

/// A time-ordered queue of events carrying payloads of type `T`.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// making simulations reproducible. See the module docs for the slab +
/// two-lane index layout behind the API.
///
/// # Examples
///
/// ```
/// use pxl_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "late");
/// q.push(Time::from_ns(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, Time::from_ns(1));
/// assert_eq!(e, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    slab: EventSlab<T>,
    /// The near-future ring; bucket `b` (absolute index) lives at
    /// `b & BUCKET_MASK` while `b` is inside `[cursor, cursor +
    /// NUM_BUCKETS)`.
    buckets: Vec<Bucket>,
    /// Entries currently in the ring (across all buckets).
    near_len: usize,
    /// Absolute bucket index the ring window starts at; monotone
    /// non-decreasing between [`EventQueue::clear`]s.
    cursor: u64,
    /// Far-future / overflow lane.
    far: BinaryHeap<IndexEntry>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            slab: EventSlab::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Bucket::default()).collect(),
            near_len: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
        }
    }
}

#[inline]
fn bucket_of(when: Time) -> u64 {
    when.as_ps() >> BUCKET_SHIFT
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` at absolute time `when`.
    pub fn push(&mut self, when: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.slab.insert(payload);
        let entry = IndexEntry { when, seq, slot };
        let bucket = bucket_of(when);
        // Behind-cursor pushes (possible only for times already popped past)
        // fall through to the heap lane, which keeps them correctly ordered.
        if bucket >= self.cursor && bucket - self.cursor < NUM_BUCKETS as u64 {
            self.buckets[(bucket & BUCKET_MASK) as usize].push(entry);
            self.near_len += 1;
        } else {
            self.far.push(entry);
        }
        self.len += 1;
    }

    /// Ring position of the earliest near-lane entry (its bucket's back),
    /// advancing `cursor` over the empty buckets it skips (each bucket is
    /// skipped at most once between clears, making pops amortized O(1)).
    fn find_near(&mut self) -> Option<usize> {
        if self.near_len == 0 {
            return None;
        }
        let mut bucket = self.cursor;
        loop {
            let pos = (bucket & BUCKET_MASK) as usize;
            if !self.buckets[pos].is_empty() {
                self.cursor = bucket;
                return Some(pos);
            }
            bucket += 1;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let near = self.find_near();
        let entry = match (near, self.far.peek()) {
            (None, None) => return None,
            (Some(pos), far_top) => {
                let near_entry = *self.buckets[pos].front().expect("bucket is non-empty");
                if far_top.is_none_or(|f| near_entry.key() <= f.key()) {
                    self.near_len -= 1;
                    self.buckets[pos].pop_front()
                } else {
                    self.pop_far()
                }
            }
            (None, Some(_)) => self.pop_far(),
        };
        self.len -= 1;
        Some((entry.when, self.slab.take(entry.slot)))
    }

    /// Pops the far lane and re-centers the ring window on the popped time.
    /// Safe because every remaining entry orders at or after the popped one,
    /// so no live ring entry can fall behind the advanced cursor.
    fn pop_far(&mut self) -> IndexEntry {
        let entry = self.far.pop().expect("far lane is non-empty");
        self.cursor = self.cursor.max(bucket_of(entry.when));
        entry
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        let mut best: Option<(Time, u64)> = self.far.peek().map(|e| e.key());
        if self.near_len > 0 {
            let mut bucket = self.cursor;
            loop {
                let pos = (bucket & BUCKET_MASK) as usize;
                if let Some(min) = self.buckets[pos].front() {
                    if best.is_none_or(|b| min.key() < b) {
                        best = Some(min.key());
                    }
                    break;
                }
                bucket += 1;
            }
        }
        best.map(|(when, _)| when)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.slab.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.near_len = 0;
        self.cursor = 0;
        self.far.clear();
        self.len = 0;
    }

    /// Returns every pending event in the exact order `pop` would yield
    /// them (time order, insertion order at equal times), without
    /// consuming the queue.
    ///
    /// Snapshot/restore uses this: re-pushing the returned sequence into a
    /// fresh queue reproduces the pop order exactly, because fresh
    /// sequence numbers assigned in this order preserve every tie-break.
    pub fn ordered(&self) -> Vec<(Time, &T)> {
        let mut entries: Vec<IndexEntry> = self
            .buckets
            .iter()
            .flat_map(Bucket::live)
            .chain(self.far.iter())
            .copied()
            .collect();
        entries.sort_by_key(IndexEntry::key);
        entries
            .into_iter()
            .map(|e| (e.when, self.slab.get(e.slot)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), 3);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(7), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ps(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ordered_matches_pop_order_and_preserves_ties() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(9), 'c');
        q.push(Time::from_ps(4), 'a');
        q.push(Time::from_ps(4), 'b');
        let snap: Vec<(Time, char)> = q.ordered().into_iter().map(|(t, &p)| (t, p)).collect();
        // Rebuilding from the snapshot must pop identically to the original.
        let mut rebuilt = EventQueue::new();
        for &(t, p) in &snap {
            rebuilt.push(t, p);
        }
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(snap, a);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), 'a');
        q.push(Time::from_ps(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(Time::from_ps(1), 'c');
        q.push(Time::from_ps(50), 'd');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'd');
        assert!(q.pop().is_none());
    }

    /// Events far beyond the bucket window (watchdog-scale horizons) take
    /// the heap lane and still interleave correctly with near-lane traffic.
    #[test]
    fn far_future_events_interleave_with_near_traffic() {
        let mut q = EventQueue::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        q.push(Time::from_ps(10 * horizon), -1); // far lane
        q.push(Time::from_ps(3), 0);
        q.push(Time::from_ps(horizon - 1), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ps(3)));
        assert_eq!(q.pop().unwrap().1, 0);
        // Pushing near the popped time after the window re-centers.
        q.push(Time::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // After draining the near lane the far event surfaces, and the
        // window re-centers on it so follow-up pushes are near again.
        assert_eq!(q.pop().unwrap(), (Time::from_ps(10 * horizon), -1));
        q.push(Time::from_ps(10 * horizon + 5), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    /// The slab recycles slots: a long-running push/pop steady state must
    /// not grow storage without bound.
    #[test]
    fn slab_recycles_slots_in_steady_state() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(Time::from_ps(i * 7), i);
            q.push(Time::from_ps(i * 7 + 3), i);
            let _ = q.pop();
            let _ = q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.slab.slots.len() <= 8,
            "steady state leaked {} slab slots",
            q.slab.slots.len()
        );
    }

    #[test]
    fn slab_insert_take_get_roundtrip() {
        let mut slab = EventSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(*slab.get(a), "a");
        assert_eq!(slab.take(a), "a");
        assert_eq!(slab.len(), 1);
        let c = slab.insert("c");
        assert_eq!(c, a, "freed slot must be recycled");
        assert_eq!(*slab.get(b), "b");
        slab.clear();
        assert!(slab.is_empty());
    }
}
