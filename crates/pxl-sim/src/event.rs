//! A deterministic discrete-event queue.
//!
//! The accelerator and CPU models are predominantly cycle-driven, but the
//! surrounding system (memory responses, steal round trips, host/accelerator
//! interface transactions) is naturally event-driven — the same split the
//! paper uses when embedding a cycle-based RTL simulator inside gem5's
//! event-driven core. [`EventQueue`] orders arbitrary payloads by timestamp
//! with FIFO tie-breaking so simulation is deterministic regardless of
//! insertion order at equal times.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An entry in the queue: a timestamp, a monotone sequence number for
/// deterministic tie-breaking, and the payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    when: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and break timestamp ties by insertion order (lower seq first).
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of events carrying payloads of type `T`.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// making simulations reproducible.
///
/// # Examples
///
/// ```
/// use pxl_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "late");
/// q.push(Time::from_ns(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, Time::from_ns(1));
/// assert_eq!(e, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` at absolute time `when`.
    pub fn push(&mut self, when: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { when, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.when, e.payload))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.when)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Returns every pending event in the exact order `pop` would yield
    /// them (time order, insertion order at equal times), without
    /// consuming the queue.
    ///
    /// Snapshot/restore uses this: re-pushing the returned sequence into a
    /// fresh queue reproduces the pop order exactly, because fresh
    /// sequence numbers assigned in this order preserve every tie-break.
    pub fn ordered(&self) -> Vec<(Time, &T)> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by(|a, b| a.when.cmp(&b.when).then_with(|| a.seq.cmp(&b.seq)));
        entries.into_iter().map(|e| (e.when, &e.payload)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), 3);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(7), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ps(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ordered_matches_pop_order_and_preserves_ties() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(9), 'c');
        q.push(Time::from_ps(4), 'a');
        q.push(Time::from_ps(4), 'b');
        let snap: Vec<(Time, char)> = q.ordered().into_iter().map(|(t, &p)| (t, p)).collect();
        // Rebuilding from the snapshot must pop identically to the original.
        let mut rebuilt = EventQueue::new();
        for &(t, p) in &snap {
            rebuilt.push(t, p);
        }
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(snap, a);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), 'a');
        q.push(Time::from_ps(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(Time::from_ps(1), 'c');
        q.push(Time::from_ps(50), 'd');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'd');
        assert!(q.pop().is_none());
    }
}
