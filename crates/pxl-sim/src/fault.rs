//! Deterministic fault injection: seeded, replayable fault schedules.
//!
//! A [`FaultPlan`] is a declarative, serializable-by-value description of
//! the faults to arm against one simulation: transient PE stalls, permanent
//! PE death, dropped or duplicated messages on the task- and
//! argument-networks, and P-Store slot corruption. Plans are plain data
//! (they derive `Clone`/`PartialEq`) so they can live inside an engine
//! configuration and be compared across runs.
//!
//! A [`FaultScheduler`] is the runtime side: it owns a [`XorShift64`]
//! seeded from the plan, tracks per-spec budgets, and answers two
//! questions deterministically:
//!
//! * [`FaultScheduler::timed`] — at which simulated times do the
//!   *time-armed* faults (death, stall, corruption) fire?
//! * [`FaultScheduler::on_send`] — should this network message be
//!   delivered, dropped, or duplicated? Probabilistic faults consume the
//!   scheduler's RNG in message order, so two runs of the same seed and
//!   workload fault the exact same messages.
//!
//! Determinism is the whole point: the same `(plan, workload)` pair must
//! replay byte-identically, which is what makes fault regressions
//! debuggable at all.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::fault::{FaultPlan, FaultScheduler, NetClass, SendVerdict};
//! use pxl_sim::Time;
//!
//! let plan = FaultPlan::new(42)
//!     .kill_pe(3, Time::from_us(10))
//!     .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1000, 2);
//! let mut sched = FaultScheduler::new(&plan);
//! assert_eq!(sched.timed(), vec![(Time::from_us(10), 0)]);
//! // per_mille = 1000 drops every matching message until the budget of 2
//! // is exhausted.
//! assert!(matches!(
//!     sched.on_send(NetClass::Arg, Time::from_us(1)),
//!     SendVerdict::Drop { .. }
//! ));
//! assert!(matches!(
//!     sched.on_send(NetClass::Arg, Time::from_us(2)),
//!     SendVerdict::Drop { .. }
//! ));
//! assert_eq!(
//!     sched.on_send(NetClass::Arg, Time::from_us(3)),
//!     SendVerdict::Deliver
//! );
//! ```

use crate::json::JsonValue;
use crate::rng::XorShift64;
use crate::time::Time;

/// Which on-chip network a message fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetClass {
    /// The task network: ready tasks routed between tiles.
    Task,
    /// The argument network: argument messages toward P-Stores and the
    /// host interface.
    Arg,
}

impl NetClass {
    /// Short stable label for logs and JSONL records.
    pub fn label(self) -> &'static str {
        match self {
            NetClass::Task => "task_net",
            NetClass::Arg => "arg_net",
        }
    }
}

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PE stops dispatching tasks for `cycles` accelerator cycles,
    /// then resumes (a transient hang: clock glitch, voltage droop).
    PeStall {
        /// The stalled PE (flat index).
        pe: usize,
        /// Stall length in accelerator cycles.
        cycles: u64,
    },
    /// The PE permanently stops dispatching tasks (fail-stop at task
    /// granularity: an in-flight task commits, nothing new starts).
    PeDeath {
        /// The dead PE (flat index).
        pe: usize,
    },
    /// Messages on `net` inside the window are dropped with probability
    /// `per_mille`/1000 each, up to `max` total (0 = unlimited).
    NetDrop {
        /// Which network loses messages.
        net: NetClass,
        /// Per-message drop probability in 1/1000 units (1000 = always).
        per_mille: u16,
        /// Budget of messages to drop; 0 means no budget limit.
        max: u32,
    },
    /// Messages on `net` inside the window are duplicated with probability
    /// `per_mille`/1000 each, up to `max` total (0 = unlimited).
    NetDup {
        /// Which network duplicates messages.
        net: NetClass,
        /// Per-message duplication probability in 1/1000 units.
        per_mille: u16,
        /// Budget of messages to duplicate; 0 means no budget limit.
        max: u32,
    },
    /// XORs `mask` into every argument word of one live entry of the
    /// tile's P-Store (the lowest live index), modeling a multi-bit upset
    /// that the store's ECC scrubber detects and repairs on next access.
    PStoreCorrupt {
        /// The tile whose P-Store is hit.
        tile: usize,
        /// Bit-flip mask applied to the entry's argument words.
        mask: u64,
    },
}

/// A fault plus the simulated-time window it is armed in.
///
/// Time-armed faults (`PeStall`, `PeDeath`, `PStoreCorrupt`) fire once at
/// `from`; message faults (`NetDrop`, `NetDup`) are active for every send
/// in `[from, until]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Start of the arming window (fire time for one-shot faults).
    pub from: Time,
    /// End of the arming window (inclusive; ignored by one-shot faults).
    pub until: Time,
}

/// A seeded, replayable schedule of faults.
///
/// Construct with [`FaultPlan::new`] and the builder methods; hand the
/// plan to an engine configuration (or `SimulationBuilder::with_faults`)
/// to arm it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the scheduler's probabilistic decisions.
    pub seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a raw spec.
    pub fn with_spec(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Permanently kills `pe` at time `at`.
    pub fn kill_pe(self, pe: usize, at: Time) -> Self {
        self.with_spec(FaultSpec {
            kind: FaultKind::PeDeath { pe },
            from: at,
            until: at,
        })
    }

    /// Stalls `pe` for `cycles` accelerator cycles starting at `at`.
    pub fn stall_pe(self, pe: usize, at: Time, cycles: u64) -> Self {
        self.with_spec(FaultSpec {
            kind: FaultKind::PeStall { pe, cycles },
            from: at,
            until: at,
        })
    }

    /// Drops messages on `net` in `[from, until]` with probability
    /// `per_mille`/1000, at most `max` of them (0 = unlimited).
    pub fn drop_messages(
        self,
        net: NetClass,
        from: Time,
        until: Time,
        per_mille: u16,
        max: u32,
    ) -> Self {
        self.with_spec(FaultSpec {
            kind: FaultKind::NetDrop {
                net,
                per_mille,
                max,
            },
            from,
            until,
        })
    }

    /// Duplicates messages on `net` in `[from, until]` with probability
    /// `per_mille`/1000, at most `max` of them (0 = unlimited).
    pub fn duplicate_messages(
        self,
        net: NetClass,
        from: Time,
        until: Time,
        per_mille: u16,
        max: u32,
    ) -> Self {
        self.with_spec(FaultSpec {
            kind: FaultKind::NetDup {
                net,
                per_mille,
                max,
            },
            from,
            until,
        })
    }

    /// Corrupts one live entry of tile `tile`'s P-Store at time `at` by
    /// XORing `mask` into its argument words.
    pub fn corrupt_pstore(self, tile: usize, at: Time, mask: u64) -> Self {
        self.with_spec(FaultSpec {
            kind: FaultKind::PStoreCorrupt { tile, mask },
            from: at,
            until: at,
        })
    }

    /// The armed fault specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Whether the plan arms no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The plan as a JSON value (see [`FaultPlan::from_json_value`]).
    pub fn to_json_value(&self) -> JsonValue {
        let specs = self
            .specs
            .iter()
            .map(|s| {
                let mut members = Vec::new();
                let kind = |k: &str| JsonValue::Str(k.to_owned());
                match s.kind {
                    FaultKind::PeStall { pe, cycles } => {
                        members.push(("kind".to_owned(), kind("pe_stall")));
                        members.push(("pe".to_owned(), JsonValue::num_u64(pe as u64)));
                        members.push(("cycles".to_owned(), JsonValue::num_u64(cycles)));
                    }
                    FaultKind::PeDeath { pe } => {
                        members.push(("kind".to_owned(), kind("pe_death")));
                        members.push(("pe".to_owned(), JsonValue::num_u64(pe as u64)));
                    }
                    FaultKind::NetDrop {
                        net,
                        per_mille,
                        max,
                    } => {
                        members.push(("kind".to_owned(), kind("net_drop")));
                        members.push(("net".to_owned(), kind(net.label())));
                        members
                            .push(("per_mille".to_owned(), JsonValue::num_u64(per_mille as u64)));
                        members.push(("max".to_owned(), JsonValue::num_u64(max as u64)));
                    }
                    FaultKind::NetDup {
                        net,
                        per_mille,
                        max,
                    } => {
                        members.push(("kind".to_owned(), kind("net_dup")));
                        members.push(("net".to_owned(), kind(net.label())));
                        members
                            .push(("per_mille".to_owned(), JsonValue::num_u64(per_mille as u64)));
                        members.push(("max".to_owned(), JsonValue::num_u64(max as u64)));
                    }
                    FaultKind::PStoreCorrupt { tile, mask } => {
                        members.push(("kind".to_owned(), kind("pstore_corrupt")));
                        members.push(("tile".to_owned(), JsonValue::num_u64(tile as u64)));
                        members.push(("mask".to_owned(), JsonValue::num_u64(mask)));
                    }
                }
                members.push(("from_ps".to_owned(), JsonValue::num_u64(s.from.as_ps())));
                members.push(("until_ps".to_owned(), JsonValue::num_u64(s.until.as_ps())));
                JsonValue::Object(members)
            })
            .collect();
        JsonValue::Object(vec![
            ("seed".to_owned(), JsonValue::num_u64(self.seed)),
            ("specs".to_owned(), JsonValue::Array(specs)),
        ])
    }

    /// The plan rendered as one canonical JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Rebuilds a plan from [`FaultPlan::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json_value(value: &JsonValue) -> Result<FaultPlan, String> {
        let seed = value
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("fault plan: missing seed")?;
        let specs = value
            .get("specs")
            .and_then(JsonValue::as_array)
            .ok_or("fault plan: missing specs array")?;
        let mut plan = FaultPlan::new(seed);
        for (i, spec) in specs.iter().enumerate() {
            let field = |key: &str| {
                spec.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("fault spec {i}: missing field {key}"))
            };
            let net = || -> Result<NetClass, String> {
                match spec.get("net").and_then(JsonValue::as_str) {
                    Some("task_net") => Ok(NetClass::Task),
                    Some("arg_net") => Ok(NetClass::Arg),
                    other => Err(format!("fault spec {i}: bad net {other:?}")),
                }
            };
            let kind = match spec.get("kind").and_then(JsonValue::as_str) {
                Some("pe_stall") => FaultKind::PeStall {
                    pe: field("pe")? as usize,
                    cycles: field("cycles")?,
                },
                Some("pe_death") => FaultKind::PeDeath {
                    pe: field("pe")? as usize,
                },
                Some("net_drop") => FaultKind::NetDrop {
                    net: net()?,
                    per_mille: field("per_mille")? as u16,
                    max: field("max")? as u32,
                },
                Some("net_dup") => FaultKind::NetDup {
                    net: net()?,
                    per_mille: field("per_mille")? as u16,
                    max: field("max")? as u32,
                },
                Some("pstore_corrupt") => FaultKind::PStoreCorrupt {
                    tile: field("tile")? as usize,
                    mask: field("mask")?,
                },
                other => return Err(format!("fault spec {i}: unknown kind {other:?}")),
            };
            plan = plan.with_spec(FaultSpec {
                kind,
                from: Time::from_ps(field("from_ps")?),
                until: Time::from_ps(field("until_ps")?),
            });
        }
        Ok(plan)
    }

    /// Parses [`FaultPlan::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("fault plan: {e}"))?;
        FaultPlan::from_json_value(&value)
    }

    /// Checks the plan against an accelerator geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first spec that references a PE or
    /// tile outside the geometry, or uses a probability above 1000.
    pub fn validate(&self, num_pes: usize, tiles: usize) -> Result<(), String> {
        for (i, spec) in self.specs.iter().enumerate() {
            match spec.kind {
                FaultKind::PeStall { pe, .. } | FaultKind::PeDeath { pe } => {
                    if pe >= num_pes {
                        return Err(format!(
                            "fault spec {i} targets PE {pe} but the accelerator has {num_pes} PEs"
                        ));
                    }
                }
                FaultKind::PStoreCorrupt { tile, .. } => {
                    if tile >= tiles {
                        return Err(format!(
                            "fault spec {i} targets tile {tile} but the accelerator has {tiles} tiles"
                        ));
                    }
                }
                FaultKind::NetDrop { per_mille, .. } | FaultKind::NetDup { per_mille, .. } => {
                    if per_mille > 1000 {
                        return Err(format!("fault spec {i} has per_mille {per_mille} > 1000"));
                    }
                }
            }
            if spec.until < spec.from {
                return Err(format!("fault spec {i} has an empty window"));
            }
        }
        Ok(())
    }
}

/// What the scheduler decided for one network send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// The message crosses the network untouched.
    Deliver,
    /// The message is lost; `spec` indexes the plan's responsible spec.
    Drop {
        /// Index of the deciding spec in [`FaultPlan::specs`].
        spec: usize,
    },
    /// The message is delivered twice; `spec` indexes the responsible
    /// spec. The receiver is expected to discard the duplicate (sequence
    /// numbers in hardware).
    Duplicate {
        /// Index of the deciding spec in [`FaultPlan::specs`].
        spec: usize,
    },
}

/// Runtime state of one armed [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultScheduler {
    rng: XorShift64,
    specs: Vec<FaultSpec>,
    /// Remaining budget per spec (`u32::MAX` when the spec is unlimited).
    remaining: Vec<u32>,
}

impl FaultScheduler {
    /// Arms `plan`: seeds the RNG and resets every spec's budget.
    pub fn new(plan: &FaultPlan) -> Self {
        let remaining = plan
            .specs
            .iter()
            .map(|s| match s.kind {
                FaultKind::NetDrop { max, .. } | FaultKind::NetDup { max, .. } => {
                    if max == 0 {
                        u32::MAX
                    } else {
                        max
                    }
                }
                _ => 1,
            })
            .collect();
        FaultScheduler {
            rng: XorShift64::new(plan.seed),
            specs: plan.specs.clone(),
            remaining,
        }
    }

    /// The one-shot faults (death, stall, corruption) as `(fire time, spec
    /// index)` pairs, sorted by time then index so an engine can push them
    /// into its event queue deterministically.
    pub fn timed(&self) -> Vec<(Time, usize)> {
        let mut out: Vec<(Time, usize)> = self
            .specs
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(
                    s.kind,
                    FaultKind::PeStall { .. }
                        | FaultKind::PeDeath { .. }
                        | FaultKind::PStoreCorrupt { .. }
                )
            })
            .map(|(i, s)| (s.from, i))
            .collect();
        out.sort();
        out
    }

    /// The spec at `idx`.
    pub fn spec(&self, idx: usize) -> &FaultSpec {
        &self.specs[idx]
    }

    /// The scheduler's position: the RNG state and the remaining budget of
    /// every spec. Together with the plan this reconstructs the scheduler
    /// exactly (see [`FaultScheduler::load_state`]).
    pub fn save_state(&self) -> (u64, Vec<u32>) {
        (self.rng.state(), self.remaining.clone())
    }

    /// Restores a position captured by [`FaultScheduler::save_state`] into
    /// a scheduler freshly armed from the same plan.
    ///
    /// # Errors
    ///
    /// Returns a message if `remaining` does not match the plan's spec
    /// count.
    pub fn load_state(&mut self, rng_state: u64, remaining: Vec<u32>) -> Result<(), String> {
        if remaining.len() != self.specs.len() {
            return Err(format!(
                "fault scheduler: {} budgets for {} specs",
                remaining.len(),
                self.specs.len()
            ));
        }
        self.rng = XorShift64::new(rng_state);
        self.remaining = remaining;
        Ok(())
    }

    /// Decides the fate of one message sent on `net` at time `now`.
    ///
    /// Scans specs in plan order; the first drop/dup spec whose window,
    /// budget and coin-flip all hit decides. The RNG advances once per
    /// matching in-window spec with budget, whether or not it fires, so the
    /// decision stream depends only on the message order.
    pub fn on_send(&mut self, net: NetClass, now: Time) -> SendVerdict {
        for i in 0..self.specs.len() {
            let s = self.specs[i];
            let (spec_net, per_mille, dup) = match s.kind {
                FaultKind::NetDrop { net, per_mille, .. } => (net, per_mille, false),
                FaultKind::NetDup { net, per_mille, .. } => (net, per_mille, true),
                _ => continue,
            };
            if spec_net != net || now < s.from || now > s.until || self.remaining[i] == 0 {
                continue;
            }
            if self.rng.next_in_range(1000) < per_mille as u64 {
                self.remaining[i] -= 1;
                return if dup {
                    SendVerdict::Duplicate { spec: i }
                } else {
                    SendVerdict::Drop { spec: i }
                };
            }
        }
        SendVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate_specs() {
        let plan = FaultPlan::new(7)
            .kill_pe(1, Time::from_us(5))
            .stall_pe(2, Time::from_us(1), 500)
            .corrupt_pstore(0, Time::from_us(2), 0xFF)
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 10, 3);
        assert_eq!(plan.specs().len(), 4);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn validation_checks_geometry_and_probability() {
        let plan = FaultPlan::new(1).kill_pe(8, Time::ZERO);
        assert!(plan.validate(8, 2).is_err());
        assert!(plan.validate(9, 2).is_ok());
        let plan = FaultPlan::new(1).corrupt_pstore(2, Time::ZERO, 1);
        assert!(plan.validate(8, 2).is_err());
        let plan = FaultPlan::new(1).drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1001, 0);
        assert!(plan.validate(8, 2).is_err());
        let plan = FaultPlan::new(1).with_spec(FaultSpec {
            kind: FaultKind::PeDeath { pe: 0 },
            from: Time::from_us(2),
            until: Time::from_us(1),
        });
        assert!(plan.validate(8, 2).is_err());
    }

    #[test]
    fn timed_faults_sorted_by_fire_time() {
        let plan = FaultPlan::new(1)
            .kill_pe(0, Time::from_us(9))
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1, 0)
            .stall_pe(1, Time::from_us(3), 10);
        let sched = FaultScheduler::new(&plan);
        assert_eq!(
            sched.timed(),
            vec![(Time::from_us(3), 2), (Time::from_us(9), 0)]
        );
    }

    #[test]
    fn send_verdicts_replay_identically() {
        let plan = FaultPlan::new(99)
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 250, 0)
            .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 250, 0);
        let mut a = FaultScheduler::new(&plan);
        let mut b = FaultScheduler::new(&plan);
        for i in 0..500u64 {
            let net = if i % 2 == 0 {
                NetClass::Arg
            } else {
                NetClass::Task
            };
            assert_eq!(
                a.on_send(net, Time::from_ps(i)),
                b.on_send(net, Time::from_ps(i))
            );
        }
    }

    #[test]
    fn budget_and_window_bound_message_faults() {
        let plan = FaultPlan::new(3).drop_messages(
            NetClass::Arg,
            Time::from_us(1),
            Time::from_us(2),
            1000,
            1,
        );
        let mut s = FaultScheduler::new(&plan);
        // Outside the window: delivered.
        assert_eq!(s.on_send(NetClass::Arg, Time::ZERO), SendVerdict::Deliver);
        // Wrong network: delivered.
        assert_eq!(
            s.on_send(NetClass::Task, Time::from_us(1)),
            SendVerdict::Deliver
        );
        // In window: dropped, consuming the whole budget.
        assert_eq!(
            s.on_send(NetClass::Arg, Time::from_us(1)),
            SendVerdict::Drop { spec: 0 }
        );
        assert_eq!(
            s.on_send(NetClass::Arg, Time::from_us(2)),
            SendVerdict::Deliver
        );
    }

    #[test]
    fn scheduler_state_resumes_the_decision_stream() {
        let plan = FaultPlan::new(99)
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 250, 5)
            .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 250, 0);
        let mut full = FaultScheduler::new(&plan);
        let mut half = FaultScheduler::new(&plan);
        for i in 0..100u64 {
            half.on_send(NetClass::Arg, Time::from_ps(i));
        }
        let (rng, remaining) = half.save_state();
        let mut resumed = FaultScheduler::new(&plan);
        resumed.load_state(rng, remaining).unwrap();
        for i in 0..100u64 {
            full.on_send(NetClass::Arg, Time::from_ps(i));
        }
        for i in 100..300u64 {
            assert_eq!(
                full.on_send(NetClass::Arg, Time::from_ps(i)),
                resumed.on_send(NetClass::Arg, Time::from_ps(i)),
                "message {i} diverged after restore"
            );
        }
        assert!(resumed.load_state(1, vec![0]).is_err(), "bad budget length");
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new(0xD1E)
            .kill_pe(1, Time::from_us(5))
            .stall_pe(2, Time::from_us(1), 500)
            .corrupt_pstore(0, Time::from_us(2), 0xFF)
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 10, 3)
            .duplicate_messages(NetClass::Arg, Time::from_ps(7), Time::from_us(9), 1000, 0);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // Canonical rendering is stable across a round trip.
        assert_eq!(back.to_json(), json);
        // Time::MAX (u64::MAX ps, beyond 2^53) survives exactly.
        assert_eq!(back.specs()[3].until, Time::MAX);
    }

    #[test]
    fn json_errors_name_the_problem() {
        assert!(FaultPlan::from_json("{}").unwrap_err().contains("seed"));
        assert!(FaultPlan::from_json("{\"seed\":1}")
            .unwrap_err()
            .contains("specs"));
        assert!(
            FaultPlan::from_json("{\"seed\":1,\"specs\":[{\"kind\":\"nope\"}]}")
                .unwrap_err()
                .contains("unknown kind")
        );
        assert!(
            FaultPlan::from_json("{\"seed\":1,\"specs\":[{\"kind\":\"pe_death\"}]}")
                .unwrap_err()
                .contains("missing field pe")
        );
        assert!(FaultPlan::from_json(
            "{\"seed\":1,\"specs\":[{\"kind\":\"net_drop\",\"net\":\"bus\",\"per_mille\":1,\"max\":0,\"from_ps\":0,\"until_ps\":1}]}"
        )
        .unwrap_err()
        .contains("bad net"));
    }

    #[test]
    fn net_labels_are_stable() {
        assert_eq!(NetClass::Task.label(), "task_net");
        assert_eq!(NetClass::Arg.label(), "arg_net");
    }
}
