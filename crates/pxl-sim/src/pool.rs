//! Shared worker pools for running independent simulation jobs in parallel.
//!
//! Two shapes live here:
//!
//! * [`parallel_map`] / [`parallel_map_with`] — a *scoped* fan-out used by
//!   the benchmark harness (`pxl-bench`) and the design-space explorer
//!   (`pxl-dse`): jobs are plain `FnOnce` closures, results come back in
//!   input order, and no threads outlive a call.
//! * [`WorkerPool`] — a *persistent* pool for long-running services
//!   (`pxl-serve`): worker threads stay alive across submissions, jobs are
//!   `'static` closures fed through a queue, and [`WorkerPool::shutdown`]
//!   drains every already-submitted job before joining the workers.
//!
//! In both cases determinism of the simulations themselves is untouched:
//! parallelism only reorders *wall-clock* execution, never simulated
//! behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Runs independent jobs on worker threads (one per available core) and
/// returns results in input order.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    parallel_map_with(jobs, available_workers())
}

/// Number of worker threads [`parallel_map`] uses: one per available core
/// (falling back to 4 when parallelism cannot be queried).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs independent jobs on at most `threads` worker threads and returns
/// results in input order. `threads` is clamped to at least one and to the
/// number of jobs.
pub fn parallel_map_with<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    // Jobs are FnOnce, so workers claim indices and take their job out of a
    // shared slot vector rather than sharing an iterator of closures.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job claimed once");
                *results[i].lock().expect("result slot poisoned") = Some(job());
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("result slot poisoned")
                .expect("job completed")
        })
        .collect()
}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool: a fixed set of threads consuming jobs from a
/// shared queue.
///
/// Unlike [`parallel_map`], workers survive between submissions, so a
/// long-running service can keep feeding work without paying thread spawn
/// costs or blocking the submitting thread. Results travel through whatever
/// channel the job closure captures — the pool itself is fire-and-forget.
///
/// # Examples
///
/// ```
/// use pxl_sim::pool::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..4u64 {
///     let tx = tx.clone();
///     pool.submit(move || tx.send(i * i).unwrap());
/// }
/// pool.shutdown(); // drains all four jobs, then joins the workers
/// let mut squares: Vec<u64> = rx.try_iter().collect();
/// squares.sort();
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub struct WorkerPool {
    sender: Option<mpsc::Sender<PoolJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<PoolJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("pxl-pool-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, so workers
                        // run jobs concurrently.
                        let job = receiver.lock().expect("pool queue poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            // All senders gone and the queue is drained.
                            Err(mpsc::RecvError) => break,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues one job. Jobs run in submission order per worker pickup;
    /// with more than one worker, completion order is unspecified.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool is shut down")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Stops accepting jobs, lets the workers drain everything already
    /// queued, and joins them. Dropping the pool does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Dropping the sender disconnects the channel; workers keep
        // receiving queued jobs until it reports empty-and-disconnected.
        self.sender.take();
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i: usize| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_map(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_threaded_cases() {
        let none: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(parallel_map(none).is_empty());
        let jobs: Vec<_> = (0..5u64).map(|i| move || i + 1).collect();
        assert_eq!(parallel_map_with(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_count_is_clamped() {
        // More threads than jobs must not deadlock or drop results.
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        assert_eq!(parallel_map_with(jobs, 64), vec![0, 1, 2]);
        assert!(available_workers() >= 1);
    }

    #[test]
    fn worker_pool_drains_on_shutdown() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..64u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        pool.shutdown();
        let mut got: Vec<u64> = rx.try_iter().collect();
        got.sort();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_pool_single_worker_preserves_order() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        pool.shutdown();
        // One worker consumes the queue strictly in submission order.
        assert_eq!(
            rx.try_iter().collect::<Vec<_>>(),
            (0..16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u8).unwrap());
        pool.shutdown();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![7]);
    }
}
