//! A shared scoped worker pool for running independent simulation jobs in
//! parallel.
//!
//! Both the benchmark harness (`pxl-bench`) and the design-space explorer
//! (`pxl-dse`) fan whole simulations out across host cores; this module is
//! the one implementation they share. Jobs are plain `FnOnce` closures,
//! results come back in input order, and the pool is scoped — no threads
//! outlive a call — so determinism of the simulations themselves is
//! untouched: parallelism only reorders *wall-clock* execution, never
//! simulated behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs independent jobs on worker threads (one per available core) and
/// returns results in input order.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    parallel_map_with(jobs, available_workers())
}

/// Number of worker threads [`parallel_map`] uses: one per available core
/// (falling back to 4 when parallelism cannot be queried).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs independent jobs on at most `threads` worker threads and returns
/// results in input order. `threads` is clamped to at least one and to the
/// number of jobs.
pub fn parallel_map_with<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    // Jobs are FnOnce, so workers claim indices and take their job out of a
    // shared slot vector rather than sharing an iterator of closures.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job claimed once");
                *results[i].lock().expect("result slot poisoned") = Some(job());
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("result slot poisoned")
                .expect("job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i: usize| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_map(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_threaded_cases() {
        let none: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(parallel_map(none).is_empty());
        let jobs: Vec<_> = (0..5u64).map(|i| move || i + 1).collect();
        assert_eq!(parallel_map_with(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_count_is_clamped() {
        // More threads than jobs must not deadlock or drop results.
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        assert_eq!(parallel_map_with(jobs, 64), vec![0, 1, 2]);
        assert!(available_workers() >= 1);
    }
}
