//! Platform configuration: the simulated SoC's parameters.
//!
//! [`PlatformConfig::micro2018`] reproduces Table III of the paper —
//! the future integrated CPU–FPGA SoC used for the simulation study:
//!
//! | Component | Parameter |
//! |---|---|
//! | CPU | ARM-like, eight-core, four-issue OOO, 32-entry IQ, 96-entry ROB, 1 GHz |
//! | CPU L1 | 32 KB I/D, 2-way, 64 B lines, 1-cycle hit, next-line prefetcher |
//! | Accel logic | in FPGA fabric, 200 MHz |
//! | Accel L1 | 32 KB, 2-way, 64 B lines, 400 MHz, 1-cycle hit, next-line prefetcher |
//! | L2 | 2 MB, 8-way, 1 GHz, 10-cycle hit, inclusive, shared |
//! | Coherence | MOESI snooping |
//! | DRAM | 64-bit DDR3-1600, 12.8 GB/s peak |

use crate::time::Clock;

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use pxl_sim::config::CacheParams;
///
/// let l1 = CacheParams::accel_l1_32k();
/// assert_eq!(l1.num_sets(), 32 * 1024 / (2 * 64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles of the cache's own clock domain.
    pub hit_latency_cycles: u64,
    /// Whether a next-line prefetcher is attached.
    pub next_line_prefetch: bool,
    /// Clock domain the cache runs in.
    pub clock: Clock,
}

impl CacheParams {
    /// The accelerator tile L1 from Table III: 32 KB, 2-way, 64 B lines,
    /// 400 MHz, 1-cycle hit, next-line prefetcher.
    pub fn accel_l1_32k() -> Self {
        CacheParams {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: true,
            clock: Clock::mhz400("accel_l1"),
        }
    }

    /// The CPU L1D from Table III: 32 KB, 2-way, 64 B lines, 1 GHz,
    /// 1-cycle hit, next-line prefetcher.
    pub fn cpu_l1_32k() -> Self {
        CacheParams {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
            next_line_prefetch: true,
            clock: Clock::ghz1("cpu_l1"),
        }
    }

    /// The shared L2 from Table III: 2 MB, 8-way, 1 GHz, 10-cycle hit,
    /// inclusive.
    pub fn l2_2m() -> Self {
        CacheParams {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency_cycles: 10,
            next_line_prefetch: false,
            clock: Clock::ghz1("l2"),
        }
    }

    /// Returns a copy with a different total capacity (for the Fig. 9 cache
    /// size sweep).
    pub fn with_size(mut self, size_bytes: usize) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Number of sets implied by size, ways and line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two, which would not be realizable in hardware.
    pub fn num_sets(&self) -> usize {
        let denom = self.ways * self.line_bytes;
        assert!(
            denom > 0 && self.size_bytes.is_multiple_of(denom),
            "cache geometry must divide evenly"
        );
        let sets = self.size_bytes / denom;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

/// Main-memory timing: a fixed access latency plus a peak-bandwidth limit.
///
/// DDR3-1600 on a 64-bit channel peaks at 12.8 GB/s; the model serializes
/// line transfers behind a per-channel "next free time" so bandwidth-bound
/// benchmarks (spmvcrs, stencil2d, bfsqueue) saturate realistically.
#[derive(Debug, Clone, PartialEq)]
pub struct DramParams {
    /// Latency of an isolated access (row activation + CAS + transfer).
    pub access_latency_ns: u64,
    /// Peak bandwidth in bytes per second.
    pub peak_bw_bytes_per_sec: f64,
}

impl DramParams {
    /// 64-bit DDR3-1600 as in Table III: 12.8 GB/s peak, ~50 ns access.
    pub fn ddr3_1600() -> Self {
        DramParams {
            access_latency_ns: 50,
            peak_bw_bytes_per_sec: 12.8e9,
        }
    }

    /// Time in picoseconds to stream one cache line at peak bandwidth.
    pub fn line_transfer_ps(&self, line_bytes: usize) -> u64 {
        (line_bytes as f64 / self.peak_bw_bytes_per_sec * 1e12).round() as u64
    }
}

/// The full memory-system configuration shared by CPU and accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Per-tile accelerator L1 parameters.
    pub accel_l1: CacheParams,
    /// Per-core CPU L1D parameters.
    pub cpu_l1: CacheParams,
    /// Shared last-level cache parameters.
    pub l2: CacheParams,
    /// DRAM channel parameters.
    pub dram: DramParams,
}

impl MemoryConfig {
    /// The Table III memory system.
    pub fn micro2018() -> Self {
        MemoryConfig {
            accel_l1: CacheParams::accel_l1_32k(),
            cpu_l1: CacheParams::cpu_l1_32k(),
            l2: CacheParams::l2_2m(),
            dram: DramParams::ddr3_1600(),
        }
    }
}

/// Descriptive parameters of one out-of-order CPU core (Table III).
///
/// The timing model in `pxl-cpu` consumes `issue_width` (as an IPC ceiling)
/// and `mem_overlap`; IQ/ROB sizes are retained as part of the platform
/// description the harness prints for Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCoreParams {
    /// Maximum instructions issued per cycle.
    pub issue_width: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Core clock.
    pub clock: Clock,
    /// Fraction of a cache-miss stall the OOO window hides by overlapping
    /// with independent work (0 = fully exposed, 1 = fully hidden).
    pub mem_overlap: f64,
}

impl CpuCoreParams {
    /// The Table III core: four-issue, 32-entry IQ, 96-entry ROB, 1 GHz.
    pub fn micro2018() -> Self {
        CpuCoreParams {
            issue_width: 4,
            iq_entries: 32,
            rob_entries: 96,
            clock: Clock::ghz1("cpu"),
            mem_overlap: 0.4,
        }
    }
}

/// The complete simulated platform: clocks, cores, memory.
///
/// # Examples
///
/// ```
/// use pxl_sim::PlatformConfig;
///
/// let p = PlatformConfig::micro2018();
/// assert_eq!(p.num_cpu_cores, 8);
/// assert_eq!(p.accel_clock.freq_mhz().round() as u64, 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Number of general-purpose cores on the SoC.
    pub num_cpu_cores: usize,
    /// Parameters of each core.
    pub cpu_core: CpuCoreParams,
    /// Clock domain of the accelerator logic (FPGA fabric).
    pub accel_clock: Clock,
    /// Memory system configuration.
    pub memory: MemoryConfig,
}

impl PlatformConfig {
    /// The future integrated CPU–FPGA SoC of Table III.
    pub fn micro2018() -> Self {
        PlatformConfig {
            num_cpu_cores: 8,
            cpu_core: CpuCoreParams::micro2018(),
            accel_clock: Clock::mhz200("accel"),
            memory: MemoryConfig::micro2018(),
        }
    }

    /// Renders the configuration as the rows of the paper's Table III.
    pub fn table3_rows(&self) -> Vec<(String, String)> {
        let m = &self.memory;
        vec![
            ("Technology".into(), "28nm".into()),
            (
                "CPU".into(),
                format!(
                    "ARM ISA, {}-core, {}-issue, out-of-order, {} entries IQ, {} entries ROB, {:.0}MHz",
                    self.num_cpu_cores,
                    self.cpu_core.issue_width,
                    self.cpu_core.iq_entries,
                    self.cpu_core.rob_entries,
                    self.cpu_core.clock.freq_mhz()
                ),
            ),
            (
                "CPU L1 Cache".into(),
                format!(
                    "L1I/L1D: {}KB, {}-way, {}B line size, {}-cycle hit latency, next-line prefetcher",
                    m.cpu_l1.size_bytes / 1024,
                    m.cpu_l1.ways,
                    m.cpu_l1.line_bytes,
                    m.cpu_l1.hit_latency_cycles
                ),
            ),
            (
                "Accel logic".into(),
                format!("In FPGA fabric, {:.0}MHz", self.accel_clock.freq_mhz()),
            ),
            (
                "Accel L1 Cache".into(),
                format!(
                    "{}KB, {}-way, {}B line size, {:.0}MHz, {}-cycle hit latency, next-line prefetcher",
                    m.accel_l1.size_bytes / 1024,
                    m.accel_l1.ways,
                    m.accel_l1.line_bytes,
                    m.accel_l1.clock.freq_mhz(),
                    m.accel_l1.hit_latency_cycles
                ),
            ),
            (
                "L2 Cache".into(),
                format!(
                    "{}MB, {}-way, {:.0}MHz, {}-cycle hit latency, inclusive, shared between cores and accelerator",
                    m.l2.size_bytes / (1024 * 1024),
                    m.l2.ways,
                    m.l2.clock.freq_mhz(),
                    m.l2.hit_latency_cycles
                ),
            ),
            ("Coherence".into(), "MOESI snooping protocol".into()),
            (
                "DRAM".into(),
                format!(
                    "64-bit DDR3-1600, {:.1}GB/s peak bandwidth",
                    m.dram.peak_bw_bytes_per_sec / 1e9
                ),
            ),
        ]
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::micro2018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults_match_paper() {
        let p = PlatformConfig::micro2018();
        assert_eq!(p.num_cpu_cores, 8);
        assert_eq!(p.cpu_core.issue_width, 4);
        assert_eq!(p.cpu_core.iq_entries, 32);
        assert_eq!(p.cpu_core.rob_entries, 96);
        assert_eq!(p.memory.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(p.memory.l2.ways, 8);
        assert_eq!(p.memory.l2.hit_latency_cycles, 10);
        assert_eq!(p.memory.accel_l1.size_bytes, 32 * 1024);
        assert_eq!(p.memory.dram.peak_bw_bytes_per_sec, 12.8e9);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheParams::accel_l1_32k();
        assert_eq!(l1.num_sets(), 256);
        let l2 = CacheParams::l2_2m();
        assert_eq!(l2.num_sets(), 4096);
        let small = l1.clone().with_size(4 * 1024);
        assert_eq!(small.num_sets(), 32);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn bad_geometry_panics() {
        let mut c = CacheParams::accel_l1_32k();
        c.size_bytes = 1000; // not divisible by way*line
        let _ = c.num_sets();
    }

    #[test]
    fn dram_line_transfer_time() {
        let d = DramParams::ddr3_1600();
        // 64 bytes at 12.8 GB/s = 5 ns.
        assert_eq!(d.line_transfer_ps(64), 5_000);
    }

    #[test]
    fn table3_rows_render() {
        let p = PlatformConfig::micro2018();
        let rows = p.table3_rows();
        assert_eq!(rows.len(), 8);
        assert!(rows[1].1.contains("8-core"));
        assert!(rows[7].1.contains("12.8GB/s"));
    }
}
