//! Simulated time and clock domains.
//!
//! All components in the simulated SoC agree on a single global timebase
//! measured in picoseconds. Individual components run in their own clock
//! domain (the paper's platform has at least three: 200 MHz accelerator
//! logic, 400 MHz accelerator L1 caches, and a 1 GHz CPU/L2 domain), so a
//! [`Clock`] converts between domain-local cycle counts and global [`Time`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer picoseconds since the
/// start of simulation.
///
/// Picosecond resolution lets every clock period in the paper's Table III be
/// represented exactly (1 GHz = 1000 ps, 400 MHz = 2500 ps, 200 MHz =
/// 5000 ps) so multi-clock simulations stay cycle-accurate without rounding.
///
/// # Examples
///
/// ```
/// use pxl_sim::Time;
///
/// let a = Time::from_ns(3);
/// let b = a + Time::from_ps(500);
/// assert_eq!(b.as_ps(), 3_500);
/// assert!(b > a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; useful as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a picosecond count.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from a nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from a microsecond count.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Returns the number of whole picoseconds since time zero.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns `self - other`, or [`Time::ZERO`] if
    /// `other` is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A clock domain: a named periodic clock with an integer period in
/// picoseconds.
///
/// Components that tick (PEs, TMUs, caches) hold a `Clock` and express their
/// latencies in local cycles; the clock converts those to the global
/// timebase. Conversions from time to cycles round *up* to the next edge, the
/// behaviour of a synchronizer on a clock-domain crossing.
///
/// # Examples
///
/// ```
/// use pxl_sim::{Clock, Time};
///
/// let cpu = Clock::ghz1("cpu");
/// assert_eq!(cpu.period().as_ps(), 1_000);
/// // An event at 1.5 cpu cycles is visible at the 2nd edge.
/// assert_eq!(cpu.next_edge(Time::from_ps(1_500)), Time::from_ps(2_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clock {
    name: &'static str,
    period_ps: u64,
}

impl Clock {
    /// Creates a clock with the given name and period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn new(name: &'static str, period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be nonzero");
        Clock { name, period_ps }
    }

    /// A 1 GHz clock (1000 ps period): the paper's CPU and L2 domain.
    pub fn ghz1(name: &'static str) -> Self {
        Clock::new(name, 1_000)
    }

    /// A 400 MHz clock (2500 ps period): the paper's accelerator L1 domain.
    pub fn mhz400(name: &'static str) -> Self {
        Clock::new(name, 2_500)
    }

    /// A 200 MHz clock (5000 ps period): the paper's accelerator logic domain.
    pub fn mhz200(name: &'static str) -> Self {
        Clock::new(name, 5_000)
    }

    /// Returns the clock's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the clock period.
    pub fn period(&self) -> Time {
        Time::from_ps(self.period_ps)
    }

    /// Returns the clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        1e6 / self.period_ps as f64
    }

    /// Converts a cycle count in this domain to a duration.
    #[inline]
    pub fn cycles_to_time(&self, cycles: u64) -> Time {
        Time::from_ps(cycles * self.period_ps)
    }

    /// Converts a duration to a number of whole cycles in this domain,
    /// rounding down.
    #[inline]
    pub fn time_to_cycles(&self, t: Time) -> u64 {
        t.as_ps() / self.period_ps
    }

    /// Returns the first clock edge at or after `t`.
    #[inline]
    pub fn next_edge(&self, t: Time) -> Time {
        let rem = t.as_ps() % self.period_ps;
        if rem == 0 {
            t
        } else {
            Time::from_ps(t.as_ps() + (self.period_ps - rem))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ps(100);
        let b = Time::from_ps(250);
        assert_eq!(a + b, Time::from_ps(350));
        assert_eq!(b - a, Time::from_ps(150));
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(a.max(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_ps(350));
    }

    #[test]
    fn time_display_scales_units() {
        assert_eq!(Time::from_ps(5).to_string(), "5 ps");
        assert_eq!(Time::from_ps(1_500).to_string(), "1.500 ns");
        assert_eq!(Time::from_us(2).to_string(), "2.000 us");
        assert_eq!(Time::from_ps(3_000_000_000).to_string(), "3.000 ms");
    }

    #[test]
    fn clock_conversions_roundtrip() {
        let c = Clock::mhz200("accel");
        assert_eq!(c.cycles_to_time(7), Time::from_ps(35_000));
        assert_eq!(c.time_to_cycles(Time::from_ps(35_000)), 7);
        assert_eq!(c.time_to_cycles(Time::from_ps(34_999)), 6);
    }

    #[test]
    fn clock_next_edge_rounds_up() {
        let c = Clock::ghz1("cpu");
        assert_eq!(c.next_edge(Time::from_ps(0)), Time::ZERO);
        assert_eq!(c.next_edge(Time::from_ps(1)), Time::from_ps(1_000));
        assert_eq!(c.next_edge(Time::from_ps(1_000)), Time::from_ps(1_000));
        assert_eq!(c.next_edge(Time::from_ps(1_001)), Time::from_ps(2_000));
    }

    #[test]
    fn clock_frequencies_match_table3() {
        assert_eq!(Clock::ghz1("a").freq_mhz().round() as u64, 1_000);
        assert_eq!(Clock::mhz400("b").freq_mhz().round() as u64, 400);
        assert_eq!(Clock::mhz200("c").freq_mhz().round() as u64, 200);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_panics() {
        let _ = Clock::new("bad", 0);
    }
}
