//! A minimal hand-rolled property-testing harness.
//!
//! The repository builds in fully offline environments, so it cannot pull in
//! `proptest`. This module supplies the subset the test-suite needs: a
//! seedable input generator ([`Gen`]) built on [`XorShift64`] and a driver
//! ([`check`]) that runs a property across many deterministic seeds and, on
//! failure, reports which case (and thus which seed) broke so the run can be
//! replayed exactly with [`check_case`].
//!
//! # Examples
//!
//! ```
//! use pxl_sim::qcheck::{check, Gen};
//!
//! check(64, "reverse twice is identity", |g: &mut Gen| {
//!     let v = g.vec_u64(32, 1_000);
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(v, w);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::XorShift64;

/// Deterministic input generator handed to each property case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: XorShift64,
}

impl Gen {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: XorShift64::new(seed),
        }
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_in_range(hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.rng.next_in_range(den) < num
    }

    /// A vector of up to `max_len` values, each in `[0, max_val)`.
    pub fn vec_u64(&mut self, max_len: usize, max_val: u64) -> Vec<u64> {
        let len = self.usize_in(0, max_len + 1);
        (0..len).map(|_| self.rng.next_in_range(max_val)).collect()
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len())]
    }
}

/// Derives the deterministic seed for case `i` of a property run.
fn case_seed(i: usize) -> u64 {
    // Golden-ratio stride keeps neighbouring cases decorrelated; |1 avoids
    // the xorshift all-zero fixed point.
    (0x9E37_79B9_7F4A_7C15u64 ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)) | 1
}

/// Runs `prop` for `cases` deterministic seeds; any panic inside the
/// property fails the whole check with the offending case index.
///
/// # Panics
///
/// Panics (re-raising the property's message) when a case fails.
pub fn check<F>(cases: usize, name: &str, mut prop: F)
where
    F: FnMut(&mut Gen),
{
    for i in 0..cases {
        let mut g = Gen::new(case_seed(i));
        if let Err(cause) = catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {i}/{cases} \
                 (replay with qcheck::check_case({i}, ...)): {msg}"
            );
        }
    }
}

/// Replays exactly one case of a [`check`] run, for debugging a reported
/// failure.
pub fn check_case<F>(case: usize, mut prop: F)
where
    F: FnMut(&mut Gen),
{
    let mut g = Gen::new(case_seed(case));
    prop(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check(8, "collect", |g| first.push(g.u64()));
        let mut second = Vec::new();
        check(8, "collect", |g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
        // All distinct seeds in practice.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn generators_respect_bounds() {
        check(64, "bounds", |g| {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
            let u = g.usize_in(0, 5);
            assert!(u < 5);
            let vec = g.vec_u64(16, 100);
            assert!(vec.len() <= 16);
            assert!(vec.iter().all(|&x| x < 100));
            let item = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&item));
        });
    }

    #[test]
    fn failure_names_the_case() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(16, "always fails", |_g| panic!("boom"));
        }));
        let err = outcome.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always fails"), "{msg}");
        assert!(msg.contains("case 0/16"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn replay_matches_original_case() {
        let mut seen = Vec::new();
        check(4, "collect", |g| seen.push(g.u64()));
        let mut replayed = 0;
        check_case(2, |g| replayed = g.u64());
        assert_eq!(replayed, seen[2]);
    }
}
