//! Deterministic pseudo-random sources used by the simulator.
//!
//! Two generators are provided:
//!
//! * [`Lfsr16`] — a 16-bit Fibonacci linear feedback shift register, the
//!   structure the paper's task-management unit (TMU) uses for random victim
//!   selection during work stealing ("It uses a linear feedback shift
//!   register (LFSR) to pick a random PE as the victim", Section III-A).
//! * [`XorShift64`] — a fast 64-bit xorshift generator used for workload
//!   generation and anywhere statistical quality matters more than hardware
//!   fidelity.
//!
//! Both are fully deterministic given their seed, which is what makes
//! simulations reproducible cycle-for-cycle.

/// A 16-bit Fibonacci LFSR with taps at bits 16, 15, 13 and 4
/// (polynomial x^16 + x^15 + x^13 + x^4 + 1), a maximal-length
/// configuration producing a period of 2^16 - 1.
///
/// This mirrors the hardware victim-selection logic in the FlexArch TMU: a
/// thief PE clocks the LFSR and reduces the output modulo the number of
/// stealable targets.
///
/// # Examples
///
/// ```
/// use pxl_sim::Lfsr16;
///
/// let mut lfsr = Lfsr16::new(0xACE1);
/// let v = lfsr.next_in_range(8);
/// assert!(v < 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR with the given seed.
    ///
    /// A zero seed would lock the register in the all-zero state, so it is
    /// mapped to the conventional non-zero value `0xACE1`.
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances the register one step and returns the new state.
    #[inline]
    pub fn step(&mut self) -> u16 {
        let s = self.state;
        let bit = (s ^ (s >> 1) ^ (s >> 3) ^ (s >> 12)) & 1;
        self.state = (s >> 1) | (bit << 15);
        self.state
    }

    /// Returns the current state without advancing.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Advances the register and reduces the state into `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn next_in_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "range must be nonempty");
        self.step() as usize % n
    }
}

/// A 64-bit xorshift* generator (Marsaglia's xorshift with a multiplicative
/// finalizer).
///
/// Used for synthetic workload generation: input arrays, sparse matrix
/// structure, UTS tree shapes. Deterministic and seedable so every experiment
/// in the harness is reproducible.
///
/// # Examples
///
/// ```
/// use pxl_sim::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant since xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns the next value reduced into `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn next_in_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be nonempty");
        self.next_u64() % n
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives an independent child generator, for splitting one seed across
    /// many components (e.g. one RNG per PE).
    pub fn split(&mut self) -> XorShift64 {
        XorShift64::new(self.next_u64() | 1)
    }

    /// Returns the current internal state without advancing.
    ///
    /// The state is never zero, so feeding it back through
    /// [`XorShift64::new`] reconstructs the generator exactly — the hook
    /// snapshot/restore uses to checkpoint RNG streams mid-run.
    pub fn state(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_zero_seed_is_remapped() {
        let a = Lfsr16::new(0);
        assert_ne!(a.state(), 0);
    }

    #[test]
    fn lfsr_never_reaches_zero_and_has_full_period() {
        let mut lfsr = Lfsr16::new(1);
        let start = lfsr.state();
        let mut period = 0u32;
        loop {
            let v = lfsr.step();
            assert_ne!(v, 0, "LFSR must never produce the all-zero state");
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 65_535, "period exceeded 2^16-1");
        }
        assert_eq!(period, 65_535, "taps must be maximal-length");
    }

    #[test]
    fn lfsr_range_is_respected() {
        let mut lfsr = Lfsr16::new(0xBEEF);
        for _ in 0..1000 {
            assert!(lfsr.next_in_range(7) < 7);
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_f64_in_unit_interval() {
        let mut r = XorShift64::new(99);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn xorshift_split_diverges_from_parent() {
        let mut parent = XorShift64::new(5);
        let mut child = parent.split();
        // The streams should not be identical.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn xorshift_rough_uniformity() {
        let mut r = XorShift64::new(123);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.next_in_range(10) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n / 10;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < expected as u64 / 10,
                "bucket {b} too far from {expected}"
            );
        }
    }
}
