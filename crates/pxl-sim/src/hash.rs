//! Stable, dependency-free content hashing (64-bit FNV-1a).
//!
//! The design-space explorer addresses cached simulation results by a hash
//! of their full configuration key, so the hash must be **stable across
//! runs, platforms and Rust versions** — unlike `std::hash`, whose output
//! is explicitly unspecified and randomized. FNV-1a is tiny, fast on the
//! short canonical key strings we feed it, and has well-known test vectors.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use pxl_sim::hash::{fnv64, Fnv64};
///
/// let mut h = Fnv64::new();
/// h.write(b"foo");
/// h.write(b"bar");
/// assert_eq!(h.finish(), fnv64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a fresh hash at the offset basis.
    pub const fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    /// Absorbs an integer in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The hash of everything written so far.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// A `std::hash::Hasher` for integer-keyed hot-path maps (functional-memory
/// pages, DRAM bandwidth epochs): one multiply plus a fold in place of the
/// default SipHash, which dominates a `HashMap` probe for small keys.
/// Deterministic (no per-process seed), which simulation reproducibility
/// wants anyway; not DoS-hardened, which simulator-internal maps don't need.
/// Byte-stream input falls back to FNV-1a so non-integer keys still hash
/// sensibly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mix64Hasher(u64);

/// `BuildHasher` plumbing for [`Mix64Hasher`]:
/// `HashMap<u64, V, Mix64Build>`.
pub type Mix64Build = std::hash::BuildHasherDefault<Mix64Hasher>;

impl std::hash::Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV64_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV64_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiplicative hash with a fold so both the low bits
        // (hashbrown's bucket index) and high bits (its control tag) mix.
        let h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Formats a hash as the fixed-width lower-hex content address used in
/// cache files (16 hex digits).
pub fn content_address(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), FNV64_OFFSET);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"design");
        h.write(b"-");
        h.write(b"point");
        assert_eq!(h.finish(), fnv64(b"design-point"));
    }

    #[test]
    fn write_u64_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn content_addresses_are_fixed_width() {
        assert_eq!(content_address(0), "0000000000000000");
        assert_eq!(content_address(u64::MAX), "ffffffffffffffff");
        assert_eq!(content_address(fnv64(b"x")).len(), 16);
    }
}
