//! Bounded structured event tracing with deterministic ordering and JSONL
//! export.
//!
//! A [`Tracer`] records [`TraceEvent`]s stamped with simulated time. Tracing
//! is off by default ([`Tracer::disabled`]) and costs one branch per emit
//! site; a bounded tracer ([`Tracer::bounded`]) keeps at most `capacity`
//! records and counts the rest as dropped, so traces of long runs cannot
//! exhaust host memory.
//!
//! Determinism: records carry a `(t_ps, seq)` pair. `seq` is the emission
//! order within one tracer; [`Tracer::absorb`] renumbers the absorbed
//! records to continue the local numbering, and [`Tracer::finish`] stably
//! sorts by time and renumbers once more, so two identical runs produce
//! byte-identical [`Tracer::to_jsonl`] output.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::{Time, TraceEvent, Tracer};
//!
//! let mut t = Tracer::bounded(16);
//! t.emit(
//!     Time::from_ps(500),
//!     TraceEvent::Spawn {
//!         unit: 0,
//!         ty: 1,
//!         parent: 0,
//!         child: 1,
//!     },
//! );
//! t.emit(
//!     Time::from_ps(100),
//!     TraceEvent::StealGrant { thief: 1, victim: 0 },
//! );
//! t.finish();
//! assert_eq!(t.records()[0].at, Time::from_ps(100));
//! assert!(t.to_jsonl().starts_with("{\"t_ps\":100,\"seq\":0,"));
//! ```

use crate::json;
use crate::time::Time;

/// One structured simulator event.
///
/// `unit` is a flat PE/core index across the whole accelerator or CPU;
/// `ty` is the task-type id; `port` is the memory port of the issuing unit;
/// `level` is the cache level (1 = L1, 2 = L2). `task`, `parent`, `child`
/// and `from` are run-unique task instance ids stamped by the engine at
/// spawn time; together they let a profiler reconstruct the causal
/// spawn/join DAG from the event stream alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task began executing on a processing element.
    TaskDispatch { unit: u32, ty: u8, task: u64 },
    /// A task finished executing; `busy_ps` is its modeled run length.
    TaskComplete {
        unit: u32,
        ty: u8,
        busy_ps: u64,
        task: u64,
    },
    /// A task spawned a child task (`parent` → `child` edge of the DAG).
    Spawn {
        unit: u32,
        ty: u8,
        parent: u64,
        child: u64,
    },
    /// A task-management unit sent a steal request to a victim.
    StealRequest { thief: u32, victim: u32 },
    /// A steal request found work and the task migrated.
    StealGrant { thief: u32, victim: u32 },
    /// A steal request found the victim's queue empty.
    StealFail { thief: u32, victim: u32 },
    /// A P-Store entry was allocated for a continuation.
    PStoreAlloc { tile: u32, occupancy: u32 },
    /// An argument joined a pending continuation in the P-Store; `task` is
    /// the joined successor's instance id, `from` the sender's (`from` →
    /// `task` edge of the DAG).
    PStoreJoin {
        tile: u32,
        slot: u8,
        task: u64,
        from: u64,
    },
    /// A continuation became ready and its P-Store entry was freed.
    PStoreDealloc { tile: u32, occupancy: u32 },
    /// A memory access hit in the given cache level.
    CacheHit { port: u32, level: u8 },
    /// A memory access missed in the given cache level.
    CacheMiss { port: u32, level: u8 },
    /// A cache line was evicted from the given level.
    CacheEvict { port: u32, level: u8 },
    /// A DRAM bandwidth epoch filled up and an access spilled to a later
    /// epoch.
    DramSaturated { epoch: u64, committed_ps: u64 },
    /// A planned fault fired; `spec` indexes the fault plan, `unit` is the
    /// affected PE/tile/sender.
    FaultInjected { spec: u32, unit: u32 },
    /// A previously injected fault was fully masked by the recovery
    /// machinery (retry, rescue, repair, or stall expiry).
    FaultRecovered { spec: u32, unit: u32 },
    /// A fault exhausted its recovery budget and was given up on.
    FaultUnrecovered { spec: u32, unit: u32 },
    /// The quiescence watchdog declared the run stalled; `unit` is the
    /// unit that last made forward progress, `idle_ps` how long ago.
    WatchdogStall { unit: u32, idle_ps: u64 },
    /// A message crossed the inter-chip link of a multi-chip cluster.
    /// `class` tags the traffic type (0 = steal request, 1 = steal reply,
    /// 2 = argument, 3 = routed task); `wait_ps` is how long the message
    /// queued behind the directed link's bounded bandwidth before
    /// departing.
    LinkXfer {
        src_chip: u32,
        dst_chip: u32,
        class: u8,
        wait_ps: u64,
    },
}

impl TraceEvent {
    /// Short stable name used as the JSONL `"kind"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TaskDispatch { .. } => "task_dispatch",
            TraceEvent::TaskComplete { .. } => "task_complete",
            TraceEvent::Spawn { .. } => "spawn",
            TraceEvent::StealRequest { .. } => "steal_request",
            TraceEvent::StealGrant { .. } => "steal_grant",
            TraceEvent::StealFail { .. } => "steal_fail",
            TraceEvent::PStoreAlloc { .. } => "pstore_alloc",
            TraceEvent::PStoreJoin { .. } => "pstore_join",
            TraceEvent::PStoreDealloc { .. } => "pstore_dealloc",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::DramSaturated { .. } => "dram_saturated",
            TraceEvent::FaultInjected { .. } => "fault.injected",
            TraceEvent::FaultRecovered { .. } => "fault.recovered",
            TraceEvent::FaultUnrecovered { .. } => "fault.unrecovered",
            TraceEvent::WatchdogStall { .. } => "watchdog.stall",
            TraceEvent::LinkXfer { .. } => "link_xfer",
        }
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::TaskDispatch { unit, ty, task } => {
                vec![("unit", unit as u64), ("ty", ty as u64), ("task", task)]
            }
            TraceEvent::TaskComplete {
                unit,
                ty,
                busy_ps,
                task,
            } => {
                vec![
                    ("unit", unit as u64),
                    ("ty", ty as u64),
                    ("busy_ps", busy_ps),
                    ("task", task),
                ]
            }
            TraceEvent::Spawn {
                unit,
                ty,
                parent,
                child,
            } => {
                vec![
                    ("unit", unit as u64),
                    ("ty", ty as u64),
                    ("parent", parent),
                    ("child", child),
                ]
            }
            TraceEvent::StealRequest { thief, victim }
            | TraceEvent::StealGrant { thief, victim }
            | TraceEvent::StealFail { thief, victim } => {
                vec![("thief", thief as u64), ("victim", victim as u64)]
            }
            TraceEvent::PStoreAlloc { tile, occupancy }
            | TraceEvent::PStoreDealloc { tile, occupancy } => {
                vec![("tile", tile as u64), ("occupancy", occupancy as u64)]
            }
            TraceEvent::PStoreJoin {
                tile,
                slot,
                task,
                from,
            } => {
                vec![
                    ("tile", tile as u64),
                    ("slot", slot as u64),
                    ("task", task),
                    ("from", from),
                ]
            }
            TraceEvent::CacheHit { port, level }
            | TraceEvent::CacheMiss { port, level }
            | TraceEvent::CacheEvict { port, level } => {
                vec![("port", port as u64), ("level", level as u64)]
            }
            TraceEvent::DramSaturated {
                epoch,
                committed_ps,
            } => vec![("epoch", epoch), ("committed_ps", committed_ps)],
            TraceEvent::FaultInjected { spec, unit }
            | TraceEvent::FaultRecovered { spec, unit }
            | TraceEvent::FaultUnrecovered { spec, unit } => {
                vec![("spec", spec as u64), ("unit", unit as u64)]
            }
            TraceEvent::WatchdogStall { unit, idle_ps } => {
                vec![("unit", unit as u64), ("idle_ps", idle_ps)]
            }
            TraceEvent::LinkXfer {
                src_chip,
                dst_chip,
                class,
                wait_ps,
            } => {
                vec![
                    ("src_chip", src_chip as u64),
                    ("dst_chip", dst_chip as u64),
                    ("class", class as u64),
                    ("wait_ps", wait_ps),
                ]
            }
        }
    }
}

impl TraceEvent {
    /// Rebuilds an event from its JSONL `kind` and field map (the inverse
    /// of [`TraceEvent::kind`] + `fields`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown kind or missing field.
    pub fn from_kind_fields(
        kind: &str,
        field: &dyn Fn(&str) -> Option<u64>,
    ) -> Result<TraceEvent, String> {
        let get = |key: &str| field(key).ok_or_else(|| format!("trace {kind:?}: missing {key}"));
        Ok(match kind {
            "task_dispatch" => TraceEvent::TaskDispatch {
                unit: get("unit")? as u32,
                ty: get("ty")? as u8,
                task: get("task")?,
            },
            "task_complete" => TraceEvent::TaskComplete {
                unit: get("unit")? as u32,
                ty: get("ty")? as u8,
                busy_ps: get("busy_ps")?,
                task: get("task")?,
            },
            "spawn" => TraceEvent::Spawn {
                unit: get("unit")? as u32,
                ty: get("ty")? as u8,
                parent: get("parent")?,
                child: get("child")?,
            },
            "steal_request" => TraceEvent::StealRequest {
                thief: get("thief")? as u32,
                victim: get("victim")? as u32,
            },
            "steal_grant" => TraceEvent::StealGrant {
                thief: get("thief")? as u32,
                victim: get("victim")? as u32,
            },
            "steal_fail" => TraceEvent::StealFail {
                thief: get("thief")? as u32,
                victim: get("victim")? as u32,
            },
            "pstore_alloc" => TraceEvent::PStoreAlloc {
                tile: get("tile")? as u32,
                occupancy: get("occupancy")? as u32,
            },
            "pstore_join" => TraceEvent::PStoreJoin {
                tile: get("tile")? as u32,
                slot: get("slot")? as u8,
                task: get("task")?,
                from: get("from")?,
            },
            "pstore_dealloc" => TraceEvent::PStoreDealloc {
                tile: get("tile")? as u32,
                occupancy: get("occupancy")? as u32,
            },
            "cache_hit" => TraceEvent::CacheHit {
                port: get("port")? as u32,
                level: get("level")? as u8,
            },
            "cache_miss" => TraceEvent::CacheMiss {
                port: get("port")? as u32,
                level: get("level")? as u8,
            },
            "cache_evict" => TraceEvent::CacheEvict {
                port: get("port")? as u32,
                level: get("level")? as u8,
            },
            "dram_saturated" => TraceEvent::DramSaturated {
                epoch: get("epoch")?,
                committed_ps: get("committed_ps")?,
            },
            "fault.injected" => TraceEvent::FaultInjected {
                spec: get("spec")? as u32,
                unit: get("unit")? as u32,
            },
            "fault.recovered" => TraceEvent::FaultRecovered {
                spec: get("spec")? as u32,
                unit: get("unit")? as u32,
            },
            "fault.unrecovered" => TraceEvent::FaultUnrecovered {
                spec: get("spec")? as u32,
                unit: get("unit")? as u32,
            },
            "watchdog.stall" => TraceEvent::WatchdogStall {
                unit: get("unit")? as u32,
                idle_ps: get("idle_ps")?,
            },
            "link_xfer" => TraceEvent::LinkXfer {
                src_chip: get("src_chip")? as u32,
                dst_chip: get("dst_chip")? as u32,
                class: get("class")? as u8,
                wait_ps: get("wait_ps")?,
            },
            other => return Err(format!("trace: unknown kind {other:?}")),
        })
    }
}

/// One recorded event with its timestamp and sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Time,
    /// Deterministic tiebreak for events at the same timestamp.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::write_u64_fields(&mut out, &[("t_ps", self.at.as_ps()), ("seq", self.seq)]);
        out.push_str(",\"kind\":");
        json::write_string(&mut out, self.event.kind());
        let fields = self.event.fields();
        if !fields.is_empty() {
            out.push(',');
            json::write_u64_fields(&mut out, &fields);
        }
        out.push('}');
        out
    }

    /// Rebuilds a record from a parsed [`TraceRecord::to_json`] object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json_value(value: &json::JsonValue) -> Result<TraceRecord, String> {
        let num = |key: &str| value.get(key).and_then(json::JsonValue::as_u64);
        let at = num("t_ps").ok_or("trace record: missing t_ps")?;
        let seq = num("seq").ok_or("trace record: missing seq")?;
        let kind = value
            .get("kind")
            .and_then(json::JsonValue::as_str)
            .ok_or("trace record: missing kind")?;
        let event = TraceEvent::from_kind_fields(kind, &num)?;
        Ok(TraceRecord {
            at: Time::from_ps(at),
            seq,
            event,
        })
    }
}

/// A bounded, optionally-disabled event trace buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tracer {
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
    next_seq: u64,
}

impl Tracer {
    /// A tracer that records nothing (the default for all engines).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer that keeps at most `capacity` records and counts the
    /// overflow as dropped. `capacity == 0` is equivalent to
    /// [`Tracer::disabled`].
    pub fn bounded(capacity: usize) -> Self {
        Tracer {
            capacity,
            ..Tracer::default()
        }
    }

    /// Whether emits will be recorded (or at least counted as dropped).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event at simulated time `at`.
    #[inline]
    pub fn emit(&mut self, at: Time, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(TraceRecord { at, seq, event });
    }

    /// Moves every record of `other` into this tracer, renumbering them to
    /// continue the local sequence. The capacity of `self` still bounds the
    /// total; overflow counts as dropped.
    pub fn absorb(&mut self, other: Tracer) {
        self.dropped += other.dropped;
        if self.capacity == 0 {
            self.dropped += other.records.len() as u64;
            return;
        }
        for r in other.records {
            if self.records.len() >= self.capacity {
                self.dropped += 1;
                continue;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.records.push(TraceRecord { seq, ..r });
        }
    }

    /// Establishes the final deterministic order: stable-sorts by timestamp
    /// (emission order breaks ties) and renumbers `seq` from zero. Engines
    /// call this once before returning a result.
    pub fn finish(&mut self) {
        self.records.sort_by_key(|r| r.at);
        for (i, r) in self.records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        self.next_seq = self.records.len() as u64;
    }

    /// The recorded events.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of events that did not fit in the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as JSONL: one JSON object per line, trailing
    /// newline after each, deterministic given [`Tracer::finish`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Serializes the complete tracer state — capacity, drop count,
    /// sequence cursor and every buffered record — for snapshot/restore.
    pub fn state_to_json_value(&self) -> json::JsonValue {
        let records = self
            .records
            .iter()
            .map(|r| {
                let mut members = vec![
                    ("t_ps".to_owned(), json::JsonValue::num_u64(r.at.as_ps())),
                    ("seq".to_owned(), json::JsonValue::num_u64(r.seq)),
                    (
                        "kind".to_owned(),
                        json::JsonValue::Str(r.event.kind().to_owned()),
                    ),
                ];
                for (k, v) in r.event.fields() {
                    members.push((k.to_owned(), json::JsonValue::num_u64(v)));
                }
                json::JsonValue::Object(members)
            })
            .collect();
        json::JsonValue::Object(vec![
            (
                "capacity".to_owned(),
                json::JsonValue::num_u64(self.capacity as u64),
            ),
            ("dropped".to_owned(), json::JsonValue::num_u64(self.dropped)),
            (
                "next_seq".to_owned(),
                json::JsonValue::num_u64(self.next_seq),
            ),
            ("records".to_owned(), json::JsonValue::Array(records)),
        ])
    }

    /// Rebuilds a tracer from [`Tracer::state_to_json_value`] output. The
    /// round trip is exact, so a restored run keeps emitting with the same
    /// capacity bound, drop count and sequence numbering as the original.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn state_from_json_value(value: &json::JsonValue) -> Result<Tracer, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(json::JsonValue::as_u64)
                .ok_or_else(|| format!("tracer state: missing {key}"))
        };
        let records = value
            .get("records")
            .and_then(json::JsonValue::as_array)
            .ok_or("tracer state: missing records array")?
            .iter()
            .map(TraceRecord::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Tracer {
            capacity: num("capacity")? as usize,
            records,
            dropped: num("dropped")?,
            next_seq: num("next_seq")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn(unit: u32) -> TraceEvent {
        TraceEvent::Spawn {
            unit,
            ty: 0,
            parent: 0,
            child: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(Time::from_ps(1), spawn(0));
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0, "disabled is free, not dropping");
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Tracer::bounded(2);
        for i in 0..5 {
            t.emit(Time::from_ps(i), spawn(0));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn finish_orders_by_time_then_emission() {
        let mut t = Tracer::bounded(8);
        t.emit(Time::from_ps(50), spawn(1));
        t.emit(Time::from_ps(10), spawn(2));
        t.emit(Time::from_ps(10), spawn(3));
        t.finish();
        let units: Vec<u32> = t
            .records()
            .iter()
            .map(|r| match r.event {
                TraceEvent::Spawn { unit, .. } => unit,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(units, [2, 3, 1]);
        assert_eq!(
            t.records().iter().map(|r| r.seq).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn absorb_renumbers_and_respects_capacity() {
        let mut a = Tracer::bounded(3);
        a.emit(Time::from_ps(5), spawn(0));
        let mut b = Tracer::bounded(8);
        b.emit(Time::from_ps(1), spawn(1));
        b.emit(Time::from_ps(2), spawn(2));
        b.emit(Time::from_ps(3), spawn(3));
        a.absorb(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.dropped(), 1);
        a.finish();
        assert_eq!(a.records()[0].at, Time::from_ps(1));
    }

    #[test]
    fn state_round_trip_is_exact_for_every_kind() {
        let events = [
            TraceEvent::TaskDispatch {
                unit: 1,
                ty: 2,
                task: 3,
            },
            TraceEvent::TaskComplete {
                unit: 1,
                ty: 2,
                busy_ps: 500,
                task: 3,
            },
            spawn(4),
            TraceEvent::StealRequest {
                thief: 1,
                victim: 2,
            },
            TraceEvent::StealGrant {
                thief: 1,
                victim: 2,
            },
            TraceEvent::StealFail {
                thief: 1,
                victim: 2,
            },
            TraceEvent::PStoreAlloc {
                tile: 0,
                occupancy: 3,
            },
            TraceEvent::PStoreJoin {
                tile: 0,
                slot: 1,
                task: 9,
                from: 8,
            },
            TraceEvent::PStoreDealloc {
                tile: 0,
                occupancy: 2,
            },
            TraceEvent::CacheHit { port: 0, level: 1 },
            TraceEvent::CacheMiss { port: 0, level: 2 },
            TraceEvent::CacheEvict { port: 0, level: 1 },
            TraceEvent::DramSaturated {
                epoch: 3,
                committed_ps: 99_000,
            },
            TraceEvent::FaultInjected { spec: 0, unit: 1 },
            TraceEvent::FaultRecovered { spec: 0, unit: 1 },
            TraceEvent::FaultUnrecovered { spec: 0, unit: 1 },
            TraceEvent::WatchdogStall {
                unit: 1,
                idle_ps: 77,
            },
            TraceEvent::LinkXfer {
                src_chip: 0,
                dst_chip: 1,
                class: 3,
                wait_ps: 640,
            },
        ];
        let mut t = Tracer::bounded(64);
        for (i, e) in events.iter().enumerate() {
            t.emit(Time::from_ps(i as u64 * 10), *e);
        }
        t.emit(Time::from_ps(1), spawn(0));
        let back = Tracer::state_from_json_value(&t.state_to_json_value()).unwrap();
        assert_eq!(back, t);
        // Continued emission behaves identically in both tracers.
        let mut a = t.clone();
        let mut b = back;
        a.emit(Time::from_ps(5), spawn(9));
        b.emit(Time::from_ps(5), spawn(9));
        a.finish();
        b.finish();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn state_parse_errors_name_the_problem() {
        use crate::json::JsonValue;
        let v = JsonValue::parse("{\"capacity\":4,\"dropped\":0,\"next_seq\":0}").unwrap();
        assert!(Tracer::state_from_json_value(&v)
            .unwrap_err()
            .contains("records"));
        let v = JsonValue::parse(
            "{\"capacity\":4,\"dropped\":0,\"next_seq\":0,\
             \"records\":[{\"t_ps\":1,\"seq\":0,\"kind\":\"nope\"}]}",
        )
        .unwrap();
        assert!(Tracer::state_from_json_value(&v)
            .unwrap_err()
            .contains("unknown kind"));
    }

    #[test]
    fn jsonl_lines_match_schema() {
        let mut t = Tracer::bounded(4);
        t.emit(
            Time::from_ps(100),
            TraceEvent::StealGrant {
                thief: 2,
                victim: 0,
            },
        );
        t.emit(
            Time::from_ps(200),
            TraceEvent::DramSaturated {
                epoch: 3,
                committed_ps: 99_000,
            },
        );
        t.finish();
        let text = t.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ps\":100,\"seq\":0,\"kind\":\"steal_grant\",\"thief\":2,\"victim\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"t_ps\":200,\"seq\":1,\"kind\":\"dram_saturated\",\"epoch\":3,\"committed_ps\":99000}"
        );
    }
}
