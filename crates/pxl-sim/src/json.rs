//! Minimal JSON support for metric/trace export and the wire protocols.
//!
//! The simulator runs in fully offline environments with no registry access,
//! so it cannot depend on `serde`. Two halves live here:
//!
//! * **Writing** — [`write_string`] / [`write_u64_fields`] append escaped
//!   fragments to a `String`, guaranteeing deterministic output (no maps
//!   with randomized iteration order, no float formatting ambiguity).
//! * **Reading** — [`JsonValue`] is a small recursive-descent parser over
//!   the full JSON grammar. Numbers keep their *raw source text* (see
//!   [`JsonValue::Num`]), so `parse(render(v)) == v` is exact for `u64`s
//!   beyond 2^53 and for shortest-round-trip `f64`s alike — the property
//!   the result cache, the `RunSpec` API and the job-server protocol all
//!   rely on for byte-identical round trips.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"name":"uts","pes":[4,8],"ok":true}"#).unwrap();
//! assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("uts"));
//! assert_eq!(v.get("pes").unwrap().as_array().unwrap().len(), 2);
//! assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
//! // Rendering is deterministic and round-trips byte-identically.
//! assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
//! ```

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends comma-separated `"name":value` pairs to `out` (no braces).
pub fn write_u64_fields(out: &mut String, fields: &[(&str, u64)]) {
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Objects keep their members in *source order* (`Vec`, not a map), so a
/// parse → render cycle is deterministic and byte-preserving for canonical
/// input. Numbers are kept as raw text; use the `as_u64`/`as_i64`/`as_f64`
/// accessors to interpret them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (e.g. `"-12.5e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the problem and its byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// A number value from a `u64`.
    pub fn num_u64(n: u64) -> JsonValue {
        JsonValue::Num(n.to_string())
    }

    /// A number value from an `f64`, written with Rust's shortest
    /// round-trip `Display` (so re-parsing is bit-exact).
    pub fn num_f64(x: f64) -> JsonValue {
        JsonValue::Num(x.to_string())
    }

    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if it parses exactly as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, if it parses exactly as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Appends the value's canonical rendering (no whitespace, members in
    /// stored order, numbers as their raw tokens) to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(raw) => out.push_str(raw),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value's canonical rendering as a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| JsonError {
                message: format!("object key: {}", e.message),
                ..e
            })?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writers; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_owned();
        Ok(JsonValue::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn fields_join_with_commas() {
        let mut s = String::new();
        write_u64_fields(&mut s, &[("a", 1), ("b", 2)]);
        assert_eq!(s, "\"a\":1,\"b\":2");
    }

    #[test]
    fn values_parse_and_round_trip() {
        let text = r#"{"s":"x\n\"y\"","n":-12.5e3,"big":18446744073709551615,"a":[1,null,true,false],"o":{"inner":{}}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-12500.0));
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert!(v.get("a").unwrap().as_array().unwrap()[1].is_null());
        // Byte-identical re-render (input is already canonical).
        assert_eq!(v.to_json(), text);
        // And a second parse agrees.
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn numbers_keep_raw_text_exactly() {
        // u64 beyond 2^53 and a shortest-round-trip f64 both survive.
        for raw in ["9007199254740993", "0.1", "-2.5e-7", "0"] {
            let v = JsonValue::parse(raw).unwrap();
            assert_eq!(v.to_json(), raw);
        }
        assert_eq!(
            JsonValue::num_f64(0.012345678901234567).as_f64().unwrap(),
            0.012345678901234567
        );
        assert_eq!(JsonValue::num_u64(u64::MAX).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn whitespace_and_nesting_are_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.to_json(), r#"{"a":[1,2],"b":{}}"#);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = JsonValue::parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
        // get() returns the first member with the key.
        assert_eq!(v.get("z").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn malformed_documents_report_offsets() {
        for (text, expect) in [
            ("", "unexpected end of input"),
            ("{", "object key"),
            ("{\"a\":}", "unexpected character"),
            ("[1,]", "unexpected character"),
            ("[1 2]", "expected ',' or ']'"),
            ("{\"a\":1 \"b\":2}", "expected ',' or '}'"),
            ("\"abc", "unterminated string"),
            ("12.", "expected digits after '.'"),
            ("1e", "expected digits in exponent"),
            ("truth", "expected 'true'"),
            ("{} {}", "trailing characters"),
            ("\"\\q\"", "bad escape"),
            ("\"\\u12\"", "truncated \\u escape"),
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(
                err.message.contains(expect),
                "{text:?}: got {:?}, wanted {expect:?}",
                err.message
            );
            assert!(err.offset <= text.len());
        }
    }

    #[test]
    fn writer_output_is_parseable() {
        // Everything write_string emits must be readable back.
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{2} unicode\u{1F600}";
        let mut out = String::new();
        write_string(&mut out, nasty);
        let v = JsonValue::parse(&out).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }
}
