//! Minimal JSON writing helpers for metric and trace export.
//!
//! The simulator runs in fully offline environments with no registry access,
//! so it cannot depend on `serde`. The export surface is small — flat objects
//! of strings and integers — and these helpers cover exactly that while
//! guaranteeing deterministic output (no maps with randomized iteration
//! order, no float formatting ambiguity).

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends comma-separated `"name":value` pairs to `out` (no braces).
pub fn write_u64_fields(out: &mut String, fields: &[(&str, u64)]) {
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn fields_join_with_commas() {
        let mut s = String::new();
        write_u64_fields(&mut s, &[("a", 1), ("b", 2)]);
        assert_eq!(s, "\"a\":1,\"b\":2");
    }
}
