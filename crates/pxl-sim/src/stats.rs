//! Simulation statistics: named counters and histograms.
//!
//! Every hardware component in the simulator (PEs, TMUs, P-Stores, caches,
//! networks) reports what happened during a run through a [`Stats`] registry:
//! how many tasks were executed, how many steals were attempted and how many
//! succeeded, cache hits and misses, network messages, peak queue occupancy.
//! The benchmark harness reads these to build the paper's tables.

use std::collections::BTreeMap;
use std::fmt;

/// A registry of named statistics for one simulation run.
///
/// Counter and gauge names are free-form dotted strings
/// (`"tile0.pe1.tasks_executed"`). `BTreeMap` keeps the report ordering
/// stable across runs, which matters for golden-output tests.
///
/// # Examples
///
/// ```
/// use pxl_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.incr("pe0.tasks");
/// stats.add("pe0.cycles", 41);
/// stats.max("pe0.queue_peak", 3);
/// stats.max("pe0.queue_peak", 2);
/// assert_eq!(stats.get("pe0.tasks"), 1);
/// assert_eq!(stats.get("pe0.cycles"), 41);
/// assert_eq!(stats.get("pe0.queue_peak"), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Raises counter `name` to `value` if `value` exceeds its current value
    /// (a high-water-mark gauge).
    pub fn max(&mut self, name: &str, value: u64) {
        let e = self.counters.entry(name.to_owned()).or_insert(0);
        if value > *e {
            *e = value;
        }
    }

    /// Returns the value of counter `name`, or zero if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sums every counter whose name ends with `suffix`; convenient for
    /// aggregating per-PE counters (`".steals_ok"`) across a whole
    /// accelerator.
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Returns the maximum over every counter whose name ends with `suffix`.
    pub fn max_suffix(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// Records `value` in histogram `name`, creating it if absent.
    pub fn sample(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Returns histogram `name` if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one: counters are summed,
    /// histograms are combined.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "{k} = {h}")?;
        }
        Ok(())
    }
}

/// A streaming histogram: count, sum, min, max and mean of recorded samples.
///
/// Used for quantities like per-steal latency or task run length where a
/// distribution summary is more useful than a bare counter.
///
/// # Examples
///
/// ```
/// use pxl_sim::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(10);
/// h.record(30);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), 20.0);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(30));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Mean of recorded samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combines another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(0),
            self.max.unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("a");
        s.incr("a");
        s.add("a", 3);
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn max_is_high_water_mark() {
        let mut s = Stats::new();
        s.max("peak", 5);
        s.max("peak", 3);
        s.max("peak", 9);
        assert_eq!(s.get("peak"), 9);
    }

    #[test]
    fn suffix_aggregation() {
        let mut s = Stats::new();
        s.add("pe0.steals", 2);
        s.add("pe1.steals", 3);
        s.add("pe1.tasks", 100);
        assert_eq!(s.sum_suffix(".steals"), 5);
        assert_eq!(s.max_suffix(".steals"), 3);
        assert_eq!(s.sum_suffix(".nothing"), 0);
        assert_eq!(s.max_suffix(".nothing"), 0);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.sample("h", 10);
        let mut b = Stats::new();
        b.add("x", 2);
        b.add("y", 7);
        b.sample("h", 20);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [4, 8, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), Some(4));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    fn histogram_merge_empty_cases() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut c = Histogram::new();
        c.record(5);
        a.merge(&c);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(5));
    }

    #[test]
    fn display_is_stable_and_nonempty() {
        let mut s = Stats::new();
        s.add("b", 2);
        s.add("a", 1);
        let text = s.to_string();
        let a_pos = text.find("a = 1").unwrap();
        let b_pos = text.find("b = 2").unwrap();
        assert!(a_pos < b_pos, "counters must print in name order");
    }
}
