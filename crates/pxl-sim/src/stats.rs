//! Backwards-compatible names for the typed metrics registry.
//!
//! The original simulator exposed a string-keyed `Stats` map here. It has
//! been replaced by the typed registry in [`crate::metrics`]; this module
//! keeps the old paths (`pxl_sim::stats::Stats`, `pxl_sim::Stats`) alive as
//! aliases so downstream code and older examples keep compiling.

pub use crate::metrics::{Histogram, Metrics};

/// The legacy name of [`Metrics`]. The string-keyed API (`incr`, `add`,
/// `max`, `get`, `sample`, ...) is preserved on the typed registry.
pub type Stats = Metrics;
