//! Versioned, checksummed snapshot envelopes for engine checkpoint/restore.
//!
//! A [`Snapshot`] wraps one engine's complete serialized state (the
//! `payload`, an arbitrary [`JsonValue`] tree the engine itself builds) in
//! an envelope carrying a format version, the engine kind, and an FNV-1a
//! checksum of the canonical payload text:
//!
//! ```json
//! {"snapshot_version":1,"engine":"flex","checksum":"9cf9109812c7fc2a","payload":{...}}
//! ```
//!
//! The envelope is what makes restore *safe* rather than merely possible:
//! [`Snapshot::from_json`] rejects a blob written by a different snapshot
//! format version ([`SnapshotError::VersionMismatch`]) or corrupted in
//! transit or on disk ([`SnapshotError::ChecksumMismatch`]) before any
//! engine ever sees the payload, and [`Snapshot::expect_engine`] rejects a
//! payload aimed at a different engine kind. The determinism contract —
//! a run restored from any epoch-boundary snapshot is byte-identical to an
//! uninterrupted run — is the engines' job; this module guarantees they
//! only ever restore bytes that round-tripped intact.
//!
//! The free functions ([`obj`], [`num`], [`get_u64`], ...) are the small
//! shared vocabulary engines use to build and pick apart payloads without
//! repeating `JsonValue` plumbing.

use std::fmt;

use crate::hash;
use crate::json::JsonValue;

/// Version stamp written into every envelope. Bump when the payload
/// schema of any engine changes incompatibly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot blob was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob was written by a different snapshot format version.
    VersionMismatch {
        /// The version found in the envelope.
        found: u64,
    },
    /// The payload does not hash to the checksum in the envelope.
    ChecksumMismatch {
        /// The checksum the envelope claims.
        claimed: String,
        /// The checksum the payload actually hashes to.
        actual: String,
    },
    /// The payload belongs to a different engine kind.
    EngineMismatch {
        /// The engine kind doing the restore.
        expected: String,
        /// The engine kind in the envelope.
        found: String,
    },
    /// The blob is not a well-formed envelope, or a payload field is
    /// missing or has the wrong type.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found } => write!(
                f,
                "snapshot version {found} is not the supported version {SNAPSHOT_VERSION}"
            ),
            SnapshotError::ChecksumMismatch { claimed, actual } => write!(
                f,
                "snapshot checksum mismatch: envelope claims {claimed}, payload hashes to {actual}"
            ),
            SnapshotError::EngineMismatch { expected, found } => write!(
                f,
                "snapshot was taken from engine {found:?}, cannot restore into {expected:?}"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Builds a [`SnapshotError::Malformed`] from anything displayable.
pub fn malformed(msg: impl fmt::Display) -> SnapshotError {
    SnapshotError::Malformed(msg.to_string())
}

/// A complete engine state at an epoch boundary, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The engine kind that produced the payload (`"flex"`, `"lite"`,
    /// `"central"`, `"cpu"`).
    pub engine: String,
    /// The engine-defined state tree.
    pub payload: JsonValue,
}

impl Snapshot {
    /// Wraps `payload` for engine kind `engine`.
    pub fn new(engine: impl Into<String>, payload: JsonValue) -> Snapshot {
        Snapshot {
            engine: engine.into(),
            payload,
        }
    }

    /// The FNV-1a 64 checksum of the canonical payload text, as 16
    /// lower-case hex digits.
    pub fn checksum(&self) -> String {
        hash::content_address(hash::fnv64(self.payload.to_json().as_bytes()))
    }

    /// Renders the sealed envelope as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            (
                "snapshot_version".to_owned(),
                JsonValue::num_u64(SNAPSHOT_VERSION as u64),
            ),
            ("engine".to_owned(), JsonValue::Str(self.engine.clone())),
            ("checksum".to_owned(), JsonValue::Str(self.checksum())),
            ("payload".to_owned(), self.payload.clone()),
        ])
        .to_json()
    }

    /// Parses and verifies an envelope produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionMismatch`] for a foreign format version,
    /// [`SnapshotError::ChecksumMismatch`] when the payload does not hash
    /// to the envelope's checksum, [`SnapshotError::Malformed`] for
    /// anything that does not parse as an envelope.
    pub fn from_json(text: &str) -> Result<Snapshot, SnapshotError> {
        let value = JsonValue::parse(text).map_err(malformed)?;
        let version = get_u64(&value, "snapshot_version")?;
        if version != SNAPSHOT_VERSION as u64 {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let engine = get_str(&value, "engine")?.to_owned();
        let claimed = get_str(&value, "checksum")?.to_owned();
        let payload = value
            .get("payload")
            .cloned()
            .ok_or_else(|| malformed("missing payload"))?;
        let snap = Snapshot { engine, payload };
        let actual = snap.checksum();
        if actual != claimed {
            return Err(SnapshotError::ChecksumMismatch { claimed, actual });
        }
        Ok(snap)
    }

    /// Checks that the payload was taken from engine kind `kind`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::EngineMismatch`] otherwise.
    pub fn expect_engine(&self, kind: &str) -> Result<(), SnapshotError> {
        if self.engine == kind {
            Ok(())
        } else {
            Err(SnapshotError::EngineMismatch {
                expected: kind.to_owned(),
                found: self.engine.clone(),
            })
        }
    }
}

/// An object from `(key, value)` pairs, in the given order.
pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// A `u64` rendered exactly (raw decimal token, no f64 round trip).
pub fn num(value: u64) -> JsonValue {
    JsonValue::num_u64(value)
}

/// An array of exact `u64`s.
pub fn arr_u64(values: impl IntoIterator<Item = u64>) -> JsonValue {
    JsonValue::Array(values.into_iter().map(JsonValue::num_u64).collect())
}

/// Member `key` of `value`.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing key.
pub fn get<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SnapshotError> {
    value
        .get(key)
        .ok_or_else(|| malformed(format!("missing field {key:?}")))
}

/// Member `key` of `value` as an exact `u64`.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing or mistyped key.
pub fn get_u64(value: &JsonValue, key: &str) -> Result<u64, SnapshotError> {
    get(value, key)?
        .as_u64()
        .ok_or_else(|| malformed(format!("field {key:?} is not a u64")))
}

/// Member `key` of `value` as a string slice.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing or mistyped key.
pub fn get_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, SnapshotError> {
    get(value, key)?
        .as_str()
        .ok_or_else(|| malformed(format!("field {key:?} is not a string")))
}

/// Member `key` of `value` as an array slice.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing or mistyped key.
pub fn get_arr<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], SnapshotError> {
    get(value, key)?
        .as_array()
        .ok_or_else(|| malformed(format!("field {key:?} is not an array")))
}

/// Member `key` of `value` as a vector of exact `u64`s.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing or mistyped key.
pub fn get_u64s(value: &JsonValue, key: &str) -> Result<Vec<u64>, SnapshotError> {
    get_arr(value, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| malformed(format!("array {key:?} holds a non-u64")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> JsonValue {
        obj(vec![
            ("now_ps", num(12_345)),
            ("deque", arr_u64([1, u64::MAX, 3])),
            ("name", JsonValue::Str("pe0".to_owned())),
        ])
    }

    #[test]
    fn seal_and_reopen_round_trips_exactly() {
        let snap = Snapshot::new("flex", payload());
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text, "re-sealing is byte-stable");
        assert!(back.expect_engine("flex").is_ok());
        assert_eq!(
            back.expect_engine("cpu"),
            Err(SnapshotError::EngineMismatch {
                expected: "cpu".to_owned(),
                found: "flex".to_owned(),
            })
        );
        // u64::MAX (beyond f64 precision) survives the round trip exactly.
        assert_eq!(get_u64s(&back.payload, "deque").unwrap()[1], u64::MAX);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let text = Snapshot::new("flex", payload())
            .to_json()
            .replace("\"snapshot_version\":1", "\"snapshot_version\":999");
        let err = Snapshot::from_json(&text).unwrap_err();
        assert_eq!(err, SnapshotError::VersionMismatch { found: 999 });
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn corrupted_payload_is_rejected_by_checksum() {
        let text = Snapshot::new("flex", payload()).to_json();
        // Flip one digit inside the payload without touching the envelope.
        let corrupted = text.replace("12345", "12346");
        assert_ne!(corrupted, text);
        let err = Snapshot::from_json(&corrupted).unwrap_err();
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn malformed_envelopes_name_the_problem() {
        assert!(matches!(
            Snapshot::from_json("not json").unwrap_err(),
            SnapshotError::Malformed(_)
        ));
        assert!(Snapshot::from_json("{}")
            .unwrap_err()
            .to_string()
            .contains("snapshot_version"));
        let no_payload = "{\"snapshot_version\":1,\"engine\":\"flex\",\"checksum\":\"00\"}";
        assert!(Snapshot::from_json(no_payload)
            .unwrap_err()
            .to_string()
            .contains("payload"));
    }

    #[test]
    fn helper_errors_are_malformed() {
        let v = payload();
        assert!(get_u64(&v, "nope").is_err());
        assert!(get_u64(&v, "name").is_err());
        assert!(get_str(&v, "now_ps").is_err());
        assert!(get_arr(&v, "now_ps").is_err());
        let bad = obj(vec![("xs", JsonValue::Array(vec![JsonValue::Bool(true)]))]);
        assert!(get_u64s(&bad, "xs").is_err());
    }
}
