//! Typed metrics registry: counters, gauges and histograms under dotted
//! component paths.
//!
//! Every hardware component in the simulator (PEs, TMUs, P-Stores, caches,
//! networks) reports what happened during a run through a [`Metrics`]
//! registry: how many tasks were executed, how many steals were attempted and
//! how many succeeded, cache hits and misses, peak queue occupancy. The
//! benchmark harness reads these to build the paper's tables and to emit the
//! machine-readable `bench_results.jsonl`.
//!
//! The registry is *typed*: each metric is a [`MetricKind::Counter`]
//! (monotonic sum), [`MetricKind::Gauge`] (high-water mark) or
//! [`MetricKind::Histogram`] (streaming distribution summary). Hot paths
//! register once and then update through copy-sized handles
//! ([`CounterId`]/[`GaugeId`]/[`HistogramId`]) that index straight into a
//! slot vector, skipping the string hashing a map lookup would cost per
//! event. The string-keyed convenience API ([`Metrics::incr`],
//! [`Metrics::max`], [`Metrics::sample`], ...) remains for cold paths and
//! registers metrics lazily with the kind implied by the call.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::{MetricKind, Metrics};
//!
//! let mut m = Metrics::new();
//! let tasks = m.register_counter("pe0.tasks");
//! let peak = m.register_gauge("pe0.queue_peak");
//! m.inc(tasks);
//! m.add_to(tasks, 4);
//! m.raise(peak, 3);
//! m.raise(peak, 2);
//! assert_eq!(m.get("pe0.tasks"), 5);
//! assert_eq!(m.get("pe0.queue_peak"), 3);
//! assert_eq!(m.kind("pe0.queue_peak"), Some(MetricKind::Gauge));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::json;

/// What a metric measures, which decides how [`Metrics::merge`] combines it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count; merged by summing.
    Counter,
    /// High-water mark (peak occupancy and the like); merged by maximum.
    Gauge,
    /// Streaming distribution summary; merged by combining samples.
    Histogram,
}

impl MetricKind {
    /// Lower-case name used in reports and JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Handle to a registered counter; update with [`Metrics::inc`] /
/// [`Metrics::add_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge; update with [`Metrics::raise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram; update with [`Metrics::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    name: String,
    kind: MetricKind,
    value: u64,
    histo: Histogram,
}

/// A registry of typed, named metrics for one simulation run.
///
/// Metric names are free-form dotted component paths
/// (`"tile0.pe1.tasks_executed"`). Reports and exports iterate in name
/// order, which keeps golden-output tests stable across runs.
///
/// # Examples
///
/// ```
/// use pxl_sim::Metrics;
///
/// let mut m = Metrics::new();
/// m.incr("pe0.tasks");
/// m.add("pe0.cycles", 41);
/// m.max("pe0.queue_peak", 3);
/// m.max("pe0.queue_peak", 2);
/// assert_eq!(m.get("pe0.tasks"), 1);
/// assert_eq!(m.get("pe0.cycles"), 41);
/// assert_eq!(m.get("pe0.queue_peak"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    slots: Vec<Slot>,
    index: BTreeMap<String, u32>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn register(&mut self, name: &str, kind: MetricKind) -> u32 {
        if let Some(&id) = self.index.get(name) {
            let have = self.slots[id as usize].kind;
            assert!(
                have == kind,
                "metric '{name}' already registered as {} (requested {})",
                have.as_str(),
                kind.as_str()
            );
            return id;
        }
        let id = self.slots.len() as u32;
        self.slots.push(Slot {
            name: name.to_owned(),
            kind,
            value: 0,
            histo: Histogram::new(),
        });
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Registers (or looks up) counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        CounterId(self.register(name, MetricKind::Counter))
    }

    /// Registers (or looks up) gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn register_gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(self.register(name, MetricKind::Gauge))
    }

    /// Registers (or looks up) histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn register_histogram(&mut self, name: &str) -> HistogramId {
        HistogramId(self.register(name, MetricKind::Histogram))
    }

    /// Increments a registered counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.slots[id.0 as usize].value += 1;
    }

    /// Adds `delta` to a registered counter.
    #[inline]
    pub fn add_to(&mut self, id: CounterId, delta: u64) {
        self.slots[id.0 as usize].value += delta;
    }

    /// Raises a registered gauge to `value` if it exceeds the current peak.
    #[inline]
    pub fn raise(&mut self, id: GaugeId, value: u64) {
        let slot = &mut self.slots[id.0 as usize];
        if value > slot.value {
            slot.value = value;
        }
    }

    /// Records one sample in a registered histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.slots[id.0 as usize].histo.record(value);
    }

    /// Increments counter `name` by one, registering it if absent.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`, registering it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        let id = self.register(name, MetricKind::Counter);
        self.slots[id as usize].value += delta;
    }

    /// Raises gauge `name` to `value` if `value` exceeds its current value
    /// (a high-water mark), registering it if absent.
    pub fn max(&mut self, name: &str, value: u64) {
        let id = self.register(name, MetricKind::Gauge);
        let slot = &mut self.slots[id as usize];
        if value > slot.value {
            slot.value = value;
        }
    }

    /// Records `value` in histogram `name`, registering it if absent.
    pub fn sample(&mut self, name: &str, value: u64) {
        let id = self.register(name, MetricKind::Histogram);
        self.slots[id as usize].histo.record(value);
    }

    /// Returns the value of counter or gauge `name`, or zero if it was never
    /// touched (histograms report zero; use [`Metrics::histogram`]).
    pub fn get(&self, name: &str) -> u64 {
        match self.index.get(name) {
            Some(&id) => {
                let slot = &self.slots[id as usize];
                match slot.kind {
                    MetricKind::Histogram => 0,
                    _ => slot.value,
                }
            }
            None => 0,
        }
    }

    /// Returns the kind of metric `name`, if registered.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        self.index.get(name).map(|&id| self.slots[id as usize].kind)
    }

    /// Sums every counter or gauge whose name ends with `suffix`; convenient
    /// for aggregating per-PE counters (`".steals_ok"`) across a whole
    /// accelerator.
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.scalars()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Returns the maximum over every counter or gauge whose name ends with
    /// `suffix`.
    pub fn max_suffix(&self, suffix: &str) -> u64 {
        self.scalars()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .max()
            .unwrap_or(0)
    }

    /// Returns histogram `name` if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        let &id = self.index.get(name)?;
        let slot = &self.slots[id as usize];
        if slot.kind == MetricKind::Histogram && slot.histo.count() > 0 {
            Some(&slot.histo)
        } else {
            None
        }
    }

    fn scalars(&self) -> impl Iterator<Item = (&str, u64)> {
        self.index.iter().filter_map(|(k, &id)| {
            let slot = &self.slots[id as usize];
            match slot.kind {
                MetricKind::Histogram => None,
                _ => Some((k.as_str(), slot.value)),
            }
        })
    }

    /// Iterates over all counters and gauges in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.scalars()
    }

    /// Iterates over every metric in name order as
    /// `(name, kind, scalar value, histogram)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricKind, u64, &Histogram)> {
        self.index.iter().map(|(k, &id)| {
            let slot = &self.slots[id as usize];
            (k.as_str(), slot.kind, slot.value, &slot.histo)
        })
    }

    /// Merges another registry into this one: counters are summed, gauges
    /// take the maximum, histograms are combined. Metrics only present in
    /// `other` are registered with their kind.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, kind, value, histo) in other.iter() {
            let id = self.register(name, kind) as usize;
            match kind {
                MetricKind::Counter => self.slots[id].value += value,
                MetricKind::Gauge => {
                    if value > self.slots[id].value {
                        self.slots[id].value = value;
                    }
                }
                MetricKind::Histogram => self.slots[id].histo.merge(histo),
            }
        }
    }

    /// Renders the registry as one deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{...}}}`.
    ///
    /// Keys appear in name order so two identical runs export byte-identical
    /// JSON.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histos = Vec::new();
        for (name, kind, value, histo) in self.iter() {
            match kind {
                MetricKind::Counter => counters.push((name, value)),
                MetricKind::Gauge => gauges.push((name, value)),
                MetricKind::Histogram => histos.push((name, histo)),
            }
        }
        let mut out = String::from("{\"counters\":{");
        json::write_u64_fields(&mut out, &counters);
        out.push_str("},\"gauges\":{");
        json::write_u64_fields(&mut out, &gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in histos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push(':');
            out.push_str(&h.to_json());
        }
        out.push_str("}}");
        out
    }

    /// Rebuilds a registry from [`Metrics::to_json`] output.
    ///
    /// The round trip is exact: counters and gauges recover their values,
    /// histograms their `(count, sum, min, max)` summary (an exported
    /// zero-count histogram comes back empty). Snapshot/restore merges the
    /// result into a freshly registered registry, which reproduces the
    /// original values because fresh slots are all zero.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(text: &str) -> Result<Metrics, String> {
        let value = json::JsonValue::parse(text).map_err(|e| format!("metrics: {e}"))?;
        let section = |key: &str| {
            value
                .get(key)
                .and_then(json::JsonValue::as_object)
                .ok_or_else(|| format!("metrics: missing object {key:?}"))
        };
        let mut m = Metrics::new();
        for (name, v) in section("counters")? {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("metrics: counter {name:?} is not a u64"))?;
            m.add(name, v);
        }
        for (name, v) in section("gauges")? {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("metrics: gauge {name:?} is not a u64"))?;
            m.max(name, v);
        }
        for (name, h) in section("histograms")? {
            let field = |key: &str| {
                h.get(key)
                    .and_then(json::JsonValue::as_u64)
                    .ok_or_else(|| format!("metrics: histogram {name:?} missing {key}"))
            };
            let count = field("count")?;
            let id = m.register(name, MetricKind::Histogram);
            m.slots[id as usize].histo = Histogram {
                count,
                sum: field("sum")?,
                min: (count > 0).then(|| field("min")).transpose()?,
                max: (count > 0).then(|| field("max")).transpose()?,
            };
        }
        Ok(m)
    }
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Registration order is irrelevant; compare logical content.
        self.index.len() == other.index.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for Metrics {}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, kind, value, histo) in self.iter() {
            match kind {
                MetricKind::Histogram => writeln!(f, "{name} = {histo}")?,
                _ => writeln!(f, "{name} = {value}")?,
            }
        }
        Ok(())
    }
}

/// A streaming histogram: count, sum, min, max and mean of recorded samples.
///
/// Used for quantities like per-steal latency or task run length where a
/// distribution summary is more useful than a bare counter.
///
/// # Examples
///
/// ```
/// use pxl_sim::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(10);
/// h.record(30);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), 20.0);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(30));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Mean of recorded samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combines another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Renders the summary as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            self.count,
            self.sum,
            self.min.unwrap_or(0),
            self.max.unwrap_or(0)
        )
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(0),
            self.max.unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON, "mean of empty is 0");
        assert_eq!(h.to_json(), "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0}");
    }

    #[test]
    fn single_sample_histogram_is_degenerate() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42);
        assert_eq!((h.min(), h.max()), (Some(42), Some(42)));
        assert!((h.mean() - 42.0).abs() < f64::EPSILON);
        // Zero is a real sample, distinct from "no samples".
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!((z.min(), z.max()), (Some(0), Some(0)));
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn all_equal_histogram_collapses_to_one_value() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(7);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 7000);
        assert_eq!((h.min(), h.max()), (Some(7), Some(7)));
        assert!((h.mean() - 7.0).abs() < f64::EPSILON);
        // Merging an empty histogram changes nothing, either way around.
        let before = h.to_json();
        h.merge(&Histogram::new());
        assert_eq!(h.to_json(), before);
        let mut e = Histogram::new();
        e.merge(&h);
        assert_eq!(e.to_json(), before);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = Metrics::new();
        s.incr("a");
        s.incr("a");
        s.add("a", 3);
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn max_is_high_water_mark() {
        let mut s = Metrics::new();
        s.max("peak", 5);
        s.max("peak", 3);
        s.max("peak", 9);
        assert_eq!(s.get("peak"), 9);
        assert_eq!(s.kind("peak"), Some(MetricKind::Gauge));
    }

    #[test]
    fn typed_handles_update_slots() {
        let mut m = Metrics::new();
        let c = m.register_counter("pe0.tasks");
        let g = m.register_gauge("pe0.peak");
        let h = m.register_histogram("pe0.latency");
        m.inc(c);
        m.add_to(c, 9);
        m.raise(g, 7);
        m.raise(g, 2);
        m.observe(h, 100);
        assert_eq!(m.get("pe0.tasks"), 10);
        assert_eq!(m.get("pe0.peak"), 7);
        assert_eq!(m.histogram("pe0.latency").unwrap().count(), 1);
        // Re-registration returns the same slot.
        let c2 = m.register_counter("pe0.tasks");
        m.inc(c2);
        assert_eq!(m.get("pe0.tasks"), 11);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut m = Metrics::new();
        m.register_counter("x");
        m.register_gauge("x");
    }

    #[test]
    fn suffix_aggregation() {
        let mut s = Metrics::new();
        s.add("pe0.steals", 2);
        s.add("pe1.steals", 3);
        s.add("pe1.tasks", 100);
        assert_eq!(s.sum_suffix(".steals"), 5);
        assert_eq!(s.max_suffix(".steals"), 3);
        assert_eq!(s.sum_suffix(".nothing"), 0);
        assert_eq!(s.max_suffix(".nothing"), 0);
    }

    #[test]
    fn merge_respects_kinds() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.max("peak", 9);
        a.sample("h", 10);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 7);
        b.max("peak", 4);
        b.sample("h", 20);
        a.merge(&b);
        assert_eq!(a.get("x"), 3, "counters sum");
        assert_eq!(a.get("y"), 7, "new counters appear");
        assert_eq!(a.get("peak"), 9, "gauges take the max");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [4, 8, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), Some(4));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    fn histogram_merge_empty_cases() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut c = Histogram::new();
        c.record(5);
        a.merge(&c);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(5));
    }

    #[test]
    fn display_is_stable_and_nonempty() {
        let mut s = Metrics::new();
        s.add("b", 2);
        s.add("a", 1);
        let text = s.to_string();
        let a_pos = text.find("a = 1").unwrap();
        let b_pos = text.find("b = 2").unwrap();
        assert!(a_pos < b_pos, "counters must print in name order");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut m = Metrics::new();
        m.add("pe0.tasks", 42);
        m.max("pe0.peak", 7);
        m.sample("lat", 5);
        m.sample("lat", 15);
        m.register_histogram("empty");
        let back = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json(), m.to_json());
        assert!(back.histogram("empty").is_none());
        // Merging the restored registry into a freshly registered (all-zero)
        // one reproduces the original exactly — the restore path.
        let mut fresh = Metrics::new();
        fresh.add("pe0.tasks", 0);
        fresh.max("pe0.peak", 0);
        fresh.register_histogram("lat");
        fresh.register_histogram("empty");
        fresh.merge(&back);
        assert_eq!(fresh.to_json(), m.to_json());
    }

    #[test]
    fn from_json_names_the_problem() {
        assert!(Metrics::from_json("{}").unwrap_err().contains("counters"));
        assert!(
            Metrics::from_json("{\"counters\":{\"x\":true},\"gauges\":{},\"histograms\":{}}")
                .unwrap_err()
                .contains("not a u64")
        );
        assert!(Metrics::from_json(
            "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":1}}}"
        )
        .unwrap_err()
        .contains("missing sum"));
    }

    #[test]
    fn equality_ignores_registration_order() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.max("p", 2);
        let mut b = Metrics::new();
        b.max("p", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.add("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn json_export_is_deterministic() {
        let mut m = Metrics::new();
        m.add("b.count", 2);
        m.add("a.count", 1);
        m.max("a.peak", 7);
        m.sample("lat", 5);
        m.sample("lat", 15);
        let j = m.to_json();
        assert_eq!(
            j,
            "{\"counters\":{\"a.count\":1,\"b.count\":2},\
             \"gauges\":{\"a.peak\":7},\
             \"histograms\":{\"lat\":{\"count\":2,\"sum\":20,\"min\":5,\"max\":15}}}"
        );
        assert_eq!(j, m.clone().to_json(), "export is pure");
    }
}
