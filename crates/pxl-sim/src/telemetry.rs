//! Deterministic in-run telemetry: windowed counter deltas and gauges.
//!
//! A [`TelemetrySampler`] snapshots a [`Metrics`] registry at fixed
//! simulated-time epochs. Each epoch boundary produces one
//! [`TelemetrySample`] holding the counter *deltas* accumulated over the
//! window (with an integer events-per-simulated-second rate) plus a set of
//! instantaneous gauges the engine wires in (queue depths, occupancies).
//! End-of-run totals stay in the registry; the sampler is how a run's
//! *evolution* becomes visible.
//!
//! Determinism: sampling is driven purely by simulated time — the engine
//! ticks the sampler from its event loop, so two same-seed runs produce
//! byte-identical [`Timeline::to_jsonl`] output, and rates are computed in
//! integer arithmetic (no float formatting ambiguity). The complete
//! sampler state serializes for snapshot/restore (the same contract as
//! [`crate::trace::Tracer`]), so a checkpointed run's timeline matches an
//! uninterrupted one exactly.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::{Metrics, TelemetrySampler, Time};
//!
//! let mut m = Metrics::new();
//! m.register_counter("accel.tasks");
//! let mut t = TelemetrySampler::new(Time::from_ps(1_000));
//! m.add("accel.tasks", 5);
//! // The engine ticks the sampler whenever simulated time crosses an
//! // epoch boundary.
//! assert!(t.due(Time::from_ps(1_500)));
//! t.tick(Time::from_ps(1_500), &m, &[("ready", 2)]);
//! let timeline = t.take_timeline();
//! assert_eq!(timeline.len(), 1);
//! assert!(timeline.to_jsonl().contains("\"accel.tasks\":[5,"));
//! ```

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::metrics::{MetricKind, Metrics};
use crate::time::Time;

/// One counter's movement over a sample window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Registry name of the counter.
    pub name: String,
    /// Increase over the window (counters are monotone).
    pub delta: u64,
    /// `delta` scaled to events per simulated second (integer, saturating;
    /// zero for a zero-width window).
    pub rate: u64,
}

/// One windowed snapshot of the registry plus engine gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Simulated time of the window's right edge.
    pub at: Time,
    /// Width of the window (the final flush window may be partial).
    pub window: Time,
    /// Instantaneous gauges in the order the engine wired them.
    pub gauges: Vec<(String, u64)>,
    /// Counters that moved during the window, in registry (name) order.
    pub counters: Vec<CounterDelta>,
}

/// `delta` scaled to events per simulated second, saturating at `u64::MAX`.
/// Zero-width windows rate as 0 (no time passed, no meaningful rate).
pub fn rate_per_sec(delta: u64, window_ps: u64) -> u64 {
    if window_ps == 0 {
        return 0;
    }
    let scaled = delta as u128 * 1_000_000_000_000u128 / window_ps as u128;
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

impl TelemetrySample {
    /// Renders the sample as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::write_u64_fields(
            &mut out,
            &[
                ("epoch", self.epoch),
                ("t_ps", self.at.as_ps()),
                ("window_ps", self.window.as_ps()),
            ],
        );
        out.push_str(",\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, &c.name);
            out.push_str(&format!(":[{},{}]", c.delta, c.rate));
        }
        out.push_str("}}");
        out
    }

    /// Rebuilds a sample from a parsed [`TelemetrySample::to_json`] object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json_value(value: &JsonValue) -> Result<TelemetrySample, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("telemetry sample: missing {key}"))
        };
        let gauges = value
            .get("gauges")
            .and_then(JsonValue::as_object)
            .ok_or("telemetry sample: missing gauges object")?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("telemetry sample: gauge {k:?} is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let counters = value
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or("telemetry sample: missing counters object")?
            .iter()
            .map(|(k, v)| {
                let pair: Vec<u64> = v
                    .as_array()
                    .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                    .unwrap_or_default();
                match pair[..] {
                    [delta, rate] => Ok(CounterDelta {
                        name: k.clone(),
                        delta,
                        rate,
                    }),
                    _ => Err(format!(
                        "telemetry sample: counter {k:?} is not a [delta,rate] pair"
                    )),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TelemetrySample {
            epoch: num("epoch")?,
            at: Time::from_ps(num("t_ps")?),
            window: Time::from_ps(num("window_ps")?),
            gauges,
            counters,
        })
    }
}

/// An ordered sequence of [`TelemetrySample`]s — the exported timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    samples: Vec<TelemetrySample>,
}

impl Timeline {
    /// A timeline from already-ordered samples.
    pub fn new(samples: Vec<TelemetrySample>) -> Self {
        Timeline { samples }
    }

    /// The samples in epoch order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the timeline holds no samples (telemetry off or never due).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the timeline as JSONL: one JSON object per line, trailing
    /// newline after each, byte-deterministic for a deterministic run.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

/// Samples a [`Metrics`] registry at fixed simulated-time epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySampler {
    /// Epoch width in simulated time.
    every: Time,
    /// Right edge of the next window (the next boundary to sample at).
    next_at: Time,
    /// Epoch index the next sample will carry.
    epoch: u64,
    /// Left edge of the current window.
    window_start: Time,
    /// Counter values at the previous boundary, for delta computation.
    last: BTreeMap<String, u64>,
    samples: Vec<TelemetrySample>,
}

impl TelemetrySampler {
    /// A sampler that fires every `every` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero (zero means "telemetry off"; engines hold
    /// an `Option<TelemetrySampler>` instead).
    pub fn new(every: Time) -> Self {
        assert!(every > Time::ZERO, "telemetry epoch must be non-zero");
        TelemetrySampler {
            every,
            next_at: every,
            epoch: 0,
            window_start: Time::ZERO,
            last: BTreeMap::new(),
            samples: Vec::new(),
        }
    }

    /// The configured epoch width.
    pub fn every(&self) -> Time {
        self.every
    }

    /// Whether simulated time `now` has reached the next epoch boundary.
    #[inline]
    pub fn due(&self, now: Time) -> bool {
        now >= self.next_at
    }

    /// Samples of the timeline so far.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Records one sample per epoch boundary at or before `now`. Gauges are
    /// the engine's instantaneous state; when `now` skipped several
    /// boundaries, each catch-up sample repeats them (the engine state did
    /// not change in between — no events fired).
    pub fn tick(&mut self, now: Time, metrics: &Metrics, gauges: &[(&str, u64)]) {
        while now >= self.next_at {
            let boundary = self.next_at;
            self.record(boundary, metrics, gauges);
            self.next_at += self.every;
            self.epoch += 1;
        }
    }

    /// Closes the final (possibly partial) window at run end, guaranteeing
    /// at least one sample even for runs shorter than one epoch. A no-op
    /// when a sample already landed at exactly `at`.
    pub fn flush(&mut self, at: Time, metrics: &Metrics, gauges: &[(&str, u64)]) {
        if self.samples.last().is_some_and(|s| s.at == at) {
            return;
        }
        self.record(at, metrics, gauges);
        self.epoch += 1;
    }

    fn record(&mut self, at: Time, metrics: &Metrics, gauges: &[(&str, u64)]) {
        let window = at - self.window_start;
        let mut counters = Vec::new();
        for (name, kind, value, _) in metrics.iter() {
            if kind != MetricKind::Counter {
                continue;
            }
            let prev = self.last.get(name).copied().unwrap_or(0);
            let delta = value.saturating_sub(prev);
            if delta > 0 {
                counters.push(CounterDelta {
                    name: name.to_owned(),
                    delta,
                    rate: rate_per_sec(delta, window.as_ps()),
                });
            }
            if value != prev {
                self.last.insert(name.to_owned(), value);
            }
        }
        self.samples.push(TelemetrySample {
            epoch: self.epoch,
            at,
            window,
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            counters,
        });
        self.window_start = at;
    }

    /// Moves the accumulated samples out as a [`Timeline`] (the sampler
    /// keeps its cursor state but starts an empty buffer).
    pub fn take_timeline(&mut self) -> Timeline {
        Timeline::new(std::mem::take(&mut self.samples))
    }

    /// Serializes the complete sampler state — cursor, last-seen counter
    /// values and every buffered sample — for snapshot/restore.
    pub fn state_to_json_value(&self) -> JsonValue {
        let last = self
            .last
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::num_u64(*v)))
            .collect();
        let samples = self
            .samples
            .iter()
            .map(|s| JsonValue::parse(&s.to_json()).expect("samples emit valid JSON"))
            .collect();
        JsonValue::Object(vec![
            (
                "every_ps".to_owned(),
                JsonValue::num_u64(self.every.as_ps()),
            ),
            (
                "next_at_ps".to_owned(),
                JsonValue::num_u64(self.next_at.as_ps()),
            ),
            ("epoch".to_owned(), JsonValue::num_u64(self.epoch)),
            (
                "window_start_ps".to_owned(),
                JsonValue::num_u64(self.window_start.as_ps()),
            ),
            ("last".to_owned(), JsonValue::Object(last)),
            ("samples".to_owned(), JsonValue::Array(samples)),
        ])
    }

    /// Rebuilds a sampler from [`TelemetrySampler::state_to_json_value`]
    /// output. The round trip is exact, so a restored run keeps sampling
    /// with the same cursor, deltas and epoch numbering as the original.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn state_from_json_value(value: &JsonValue) -> Result<TelemetrySampler, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("telemetry state: missing {key}"))
        };
        let every = Time::from_ps(num("every_ps")?);
        if every == Time::ZERO {
            return Err("telemetry state: zero epoch width".to_owned());
        }
        let last = value
            .get("last")
            .and_then(JsonValue::as_object)
            .ok_or("telemetry state: missing last object")?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("telemetry state: last {k:?} is not a u64"))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let samples = value
            .get("samples")
            .and_then(JsonValue::as_array)
            .ok_or("telemetry state: missing samples array")?
            .iter()
            .map(TelemetrySample::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TelemetrySampler {
            every,
            next_at: Time::from_ps(num("next_at_ps")?),
            epoch: num("epoch")?,
            window_start: Time::from_ps(num("window_start_ps")?),
            last,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(tasks: u64, steals: u64) -> Metrics {
        let mut m = Metrics::new();
        m.register_counter("accel.tasks");
        m.register_counter("accel.steal_hits");
        m.register_gauge("accel.queue_peak");
        m.add("accel.tasks", tasks);
        m.add("accel.steal_hits", steals);
        m.max("accel.queue_peak", 7);
        m
    }

    #[test]
    fn deltas_and_rates_are_windowed() {
        let mut m = metrics_with(10, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000));
        t.tick(Time::from_ps(1_000), &m, &[("ready", 3)]);
        m.add("accel.tasks", 5);
        t.tick(Time::from_ps(2_000), &m, &[("ready", 1)]);

        let s = t.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].epoch, 0);
        assert_eq!(s[0].window, Time::from_ps(1_000));
        assert_eq!(s[0].counters.len(), 1, "zero deltas are omitted");
        assert_eq!(s[0].counters[0].name, "accel.tasks");
        assert_eq!(s[0].counters[0].delta, 10);
        // 10 events over 1000 ps = 10^10 events per simulated second.
        assert_eq!(s[0].counters[0].rate, 10_000_000_000);
        assert_eq!(s[1].counters[0].delta, 5);
        assert_eq!(s[1].gauges, vec![("ready".to_owned(), 1)]);
    }

    #[test]
    fn gauges_are_not_sampled_as_counters() {
        let m = metrics_with(1, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(100));
        t.tick(Time::from_ps(100), &m, &[]);
        assert!(t.samples()[0]
            .counters
            .iter()
            .all(|c| c.name != "accel.queue_peak"));
    }

    #[test]
    fn skipped_boundaries_catch_up_one_sample_each() {
        let m = metrics_with(4, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000));
        t.tick(Time::from_ps(3_500), &m, &[("ready", 2)]);
        let s = t.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().map(|x| x.epoch).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(s[0].counters[0].delta, 4);
        assert!(s[1].counters.is_empty(), "no movement in skipped windows");
        assert!(!t.due(Time::from_ps(3_999)));
        assert!(t.due(Time::from_ps(4_000)));
    }

    #[test]
    fn flush_closes_a_partial_window_exactly_once() {
        let mut m = metrics_with(2, 1);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000));
        t.tick(Time::from_ps(1_000), &m, &[]);
        m.add("accel.tasks", 3);
        t.flush(Time::from_ps(1_250), &m, &[("ready", 0)]);
        t.flush(Time::from_ps(1_250), &m, &[("ready", 0)]);
        let s = t.samples();
        assert_eq!(s.len(), 2, "second flush at the same edge is a no-op");
        assert_eq!(s[1].window, Time::from_ps(250));
        assert_eq!(s[1].counters[0].delta, 3);
    }

    #[test]
    fn flush_guarantees_a_sample_for_short_runs() {
        let m = metrics_with(1, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000_000));
        t.flush(Time::from_ps(42), &m, &[]);
        assert_eq!(t.samples().len(), 1);
        assert_eq!(t.samples()[0].window, Time::from_ps(42));
    }

    #[test]
    fn zero_width_windows_have_zero_rates() {
        let m = metrics_with(9, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000));
        t.flush(Time::ZERO, &m, &[]);
        assert_eq!(t.samples()[0].counters[0].rate, 0);
    }

    #[test]
    fn rates_saturate_instead_of_overflowing() {
        assert_eq!(rate_per_sec(u64::MAX, 1), u64::MAX);
        assert_eq!(rate_per_sec(0, 1), 0);
    }

    #[test]
    fn jsonl_lines_match_schema() {
        let m = metrics_with(10, 0);
        let mut t = TelemetrySampler::new(Time::from_ps(1_000));
        t.tick(Time::from_ps(1_000), &m, &[("events", 4), ("ready", 2)]);
        let line = t.take_timeline().to_jsonl();
        assert_eq!(
            line,
            "{\"epoch\":0,\"t_ps\":1000,\"window_ps\":1000,\
             \"gauges\":{\"events\":4,\"ready\":2},\
             \"counters\":{\"accel.tasks\":[10,10000000000]}}\n"
        );
    }

    #[test]
    fn state_round_trip_is_exact_and_continues_identically() {
        let mut m = metrics_with(6, 2);
        let mut t = TelemetrySampler::new(Time::from_ps(500));
        t.tick(Time::from_ps(1_100), &m, &[("ready", 1)]);
        let back = TelemetrySampler::state_from_json_value(&t.state_to_json_value()).unwrap();
        assert_eq!(back, t);
        // Continued sampling behaves identically in both samplers.
        m.add("accel.steal_hits", 4);
        let mut a = t.clone();
        let mut b = back;
        a.tick(Time::from_ps(2_000), &m, &[("ready", 0)]);
        b.tick(Time::from_ps(2_000), &m, &[("ready", 0)]);
        assert_eq!(a, b);
        assert_eq!(a.take_timeline().to_jsonl(), b.take_timeline().to_jsonl());
    }

    #[test]
    fn state_parse_errors_name_the_problem() {
        let v = JsonValue::parse(
            "{\"every_ps\":10,\"next_at_ps\":10,\"epoch\":0,\"window_start_ps\":0,\"last\":{}}",
        )
        .unwrap();
        assert!(TelemetrySampler::state_from_json_value(&v)
            .unwrap_err()
            .contains("samples"));
        let v = JsonValue::parse(
            "{\"every_ps\":0,\"next_at_ps\":0,\"epoch\":0,\"window_start_ps\":0,\
             \"last\":{},\"samples\":[]}",
        )
        .unwrap();
        assert!(TelemetrySampler::state_from_json_value(&v)
            .unwrap_err()
            .contains("zero epoch"));
    }
}
