//! Discrete-event simulation kernel for the ParallelXL framework.
//!
//! The paper evaluates ParallelXL by embedding a cycle-based RTL simulator
//! (Verilator) inside the event-based gem5 simulator. This crate provides the
//! analogous substrate in Rust: a picosecond-resolution notion of [`Time`],
//! [`Clock`] domains for the multi-clock SoC of the paper's Table III
//! (accelerator logic at 200 MHz, accelerator L1s at 400 MHz, CPU and L2 at
//! 1 GHz), an [`event::EventQueue`] for event-driven components, deterministic
//! random sources ([`rng::XorShift64`] and the 16-bit [`rng::Lfsr16`] used by
//! the task-management unit for victim selection), a typed [`metrics`]
//! registry for the counters, gauges and histograms every component reports,
//! and a bounded structured event [`trace`] with deterministic JSONL export.
//!
//! # Examples
//!
//! ```
//! use pxl_sim::{Clock, Time};
//!
//! let accel = Clock::new("accel", 5_000); // 200 MHz -> 5 ns period
//! let t = accel.cycles_to_time(10);
//! assert_eq!(t, Time::from_ps(50_000));
//! assert_eq!(accel.time_to_cycles(t), 10);
//! ```

pub mod config;
pub mod event;
pub mod fault;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod qcheck;
pub mod rng;
pub mod snapshot;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use config::{MemoryConfig, PlatformConfig};
pub use event::{EventQueue, EventSlab};
pub use fault::{FaultKind, FaultPlan, FaultScheduler, FaultSpec, NetClass, SendVerdict};
pub use hash::{fnv64, Fnv64};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricKind, Metrics};
pub use pool::parallel_map;
pub use rng::{Lfsr16, XorShift64};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use telemetry::{rate_per_sec, CounterDelta, TelemetrySample, TelemetrySampler, Timeline};
pub use time::{Clock, Time};
pub use trace::{TraceEvent, TraceRecord, Tracer};
