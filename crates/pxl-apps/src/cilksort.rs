//! `cilksort` — parallel merge sort with parallel merging (Cilk apps, FJ).
//!
//! Recursively sorts halves in parallel, then merges them *in parallel*:
//! the merge splits the larger sorted run at its midpoint, binary-searches
//! the split value in the other run, and forks the two sub-merges
//! (Akl & Santoro's algorithm, as in the Cilk-5 distribution). Below a
//! grain size it falls back to a serial quicksort for leaves and a serial
//! merge for small runs.
//!
//! This is the one benchmark the paper could **not** express on LiteArch:
//! "we were able to implement parallel-for versions of nw, quicksort,
//! queens and knapsack, but not cilksort, due to the complexity and
//! irregularity of its dynamic task graph" (Section V-A) — so
//! [`Benchmark::lite`] returns `None`.

use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Sort `[lo,hi)` into buffer `dest`.
const CS_SORT: TaskTypeId = TaskTypeId(0);
/// Successor of two half-sorts: launch the parallel merge.
const CS_MERGE: TaskTypeId = TaskTypeId(1);
/// Merge two sorted runs into the destination buffer.
const CS_MRANGE: TaskTypeId = TaskTypeId(2);
/// Join of two sub-merges (sums merged-element counts).
const CS_MJOIN: TaskTypeId = TaskTypeId(3);

/// Leaf sorts below this size run serial quicksort.
const SORT_GRAIN: u64 = 512;
/// Merges below this total size run serially.
const MERGE_GRAIN: u64 = 1024;

#[derive(Debug, Clone, Copy)]
struct Layout {
    /// Buffer 0: the data array.
    x: u64,
    /// Buffer 1: the temporary array.
    y: u64,
}

impl Layout {
    fn buf(&self, which: u64) -> u64 {
        if which == 0 {
            self.x
        } else {
            self.y
        }
    }
}

/// The cilksort benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Cilksort {
    n: u64,
    seed: u64,
}

impl Cilksort {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 1 << 10,
            Scale::Small => 1 << 13,
            Scale::Paper => 1 << 17,
        };
        Cilksort { n, seed: 0xC11C }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let x = alloc.alloc_array(self.n, 4);
        let y = alloc.alloc_array(self.n, 4);
        Layout { x, y }
    }

    fn gen_input(&self) -> Vec<u32> {
        let mut rng = InputRng::new(self.seed);
        (0..self.n).map(|_| rng.next_u64() as u32).collect()
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        mem.write_u32_slice(l.x, &self.gen_input());
        l
    }
}

impl Benchmark for Cilksort {
    fn meta(&self) -> Meta {
        Meta {
            name: "cilksort",
            source: "Cilk apps",
            approach: "FJ",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Medium",
        }
    }

    fn profile(&self) -> ExecProfile {
        // Streaming merges pipeline at multiple elements per cycle out of
        // scratchpads in HLS; the CPU also does well with predictable
        // sequential accesses.
        ExecProfile::new(8.0, 2.5)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        Instance {
            worker: Box::new(CilksortWorker { layout }),
            // Sort the whole array into buffer 0 (in place).
            root: Task::new(CS_SORT, Continuation::host(0), &[0, self.n, 0]),
            footprint_bytes: 8 * self.n,
        }
    }

    fn lite(&self, _mem: &mut Memory) -> Option<LiteInstance> {
        None // Not expressible as homogeneous parallel-for rounds (Section V-A).
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let got = mem.read_u32_slice(l.x, self.n as usize);
        let mut want = self.gen_input();
        want.sort_unstable();
        if got != want {
            let bad = got.iter().zip(&want).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "cilksort: element {bad} = {}, want {}",
                got[bad], want[bad]
            ));
        }
        if result != self.n {
            return Err(format!(
                "cilksort: merged {result} elements, want {}",
                self.n
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct CilksortWorker {
    layout: Layout,
}

impl CilksortWorker {
    /// Serial leaf sort of `X[lo,hi)` written into `dest`.
    fn leaf_sort(&self, ctx: &mut dyn TaskContext, lo: u64, hi: u64, dest: u64) {
        let l = self.layout;
        let len = hi - lo;
        ctx.dma_read(l.x + 4 * lo, len * 4);
        let mem = ctx.mem();
        let mut seg = mem.read_u32_slice(l.x + 4 * lo, len as usize);
        seg.sort_unstable();
        mem.write_u32_slice(l.buf(dest) + 4 * lo, &seg);
        // ~2 ops per comparison, n log n comparisons.
        let logn = 64 - len.leading_zeros() as u64;
        ctx.compute(2 * len * logn.max(1));
        ctx.dma_write(l.buf(dest) + 4 * lo, len * 4);
    }

    /// Serial merge of src[a_lo,a_hi) and src[b_lo,b_hi) into dst at d_lo.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware task message fields
    fn serial_merge(
        &self,
        ctx: &mut dyn TaskContext,
        src: u64,
        a_lo: u64,
        a_hi: u64,
        b_lo: u64,
        b_hi: u64,
        d_lo: u64,
    ) -> u64 {
        let l = self.layout;
        let total = (a_hi - a_lo) + (b_hi - b_lo);
        ctx.dma_read(l.buf(src) + 4 * a_lo, (a_hi - a_lo) * 4);
        ctx.dma_read(l.buf(src) + 4 * b_lo, (b_hi - b_lo) * 4);
        let dst = 1 - src;
        let mem = ctx.mem();
        let a = mem.read_u32_slice(l.buf(src) + 4 * a_lo, (a_hi - a_lo) as usize);
        let b = mem.read_u32_slice(l.buf(src) + 4 * b_lo, (b_hi - b_lo) as usize);
        let mut out = Vec::with_capacity(total as usize);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        mem.write_u32_slice(l.buf(dst) + 4 * d_lo, &out);
        ctx.compute(2 * total);
        ctx.dma_write(l.buf(dst) + 4 * d_lo, total * 4);
        total
    }
}

impl Worker for CilksortWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let l = self.layout;
        match task.ty {
            CS_SORT => {
                let (lo, hi, dest) = (task.args[0], task.args[1], task.args[2]);
                if hi - lo <= SORT_GRAIN {
                    self.leaf_sort(ctx, lo, hi, dest);
                    ctx.send_arg(task.k, hi - lo);
                } else {
                    let mid = lo + (hi - lo) / 2;
                    // Children sort into the opposite buffer; the successor
                    // merges them back into `dest`.
                    let kk = ctx.make_successor_with(
                        CS_MERGE,
                        task.k,
                        2,
                        &[(2, lo), (3, mid), (4, hi), (5, dest)],
                    );
                    ctx.spawn(Task::new(CS_SORT, kk.with_slot(1), &[mid, hi, 1 - dest]));
                    ctx.spawn(Task::new(CS_SORT, kk.with_slot(0), &[lo, mid, 1 - dest]));
                }
            }
            CS_MERGE => {
                let (lo, mid, hi, dest) = (task.args[2], task.args[3], task.args[4], task.args[5]);
                let src = 1 - dest;
                ctx.compute(2);
                ctx.spawn(Task::new(CS_MRANGE, task.k, &[lo, mid, mid, hi, lo, src]));
            }
            CS_MRANGE => {
                let (a_lo, a_hi, b_lo, b_hi, d_lo, src) = (
                    task.args[0],
                    task.args[1],
                    task.args[2],
                    task.args[3],
                    task.args[4],
                    task.args[5],
                );
                let total = (a_hi - a_lo) + (b_hi - b_lo);
                if total <= MERGE_GRAIN {
                    let merged = self.serial_merge(ctx, src, a_lo, a_hi, b_lo, b_hi, d_lo);
                    ctx.send_arg(task.k, merged);
                } else {
                    // Split the larger run at its midpoint, binary-search
                    // the other run.
                    let (a_len, b_len) = (a_hi - a_lo, b_hi - b_lo);
                    let (ma, mb);
                    if a_len >= b_len {
                        ma = a_lo + a_len / 2;
                        let v = ctx.read_u32(l.buf(src) + 4 * ma);
                        mb = lower_bound(ctx, l.buf(src), b_lo, b_hi, v);
                    } else {
                        mb = b_lo + b_len / 2;
                        let v = ctx.read_u32(l.buf(src) + 4 * mb);
                        ma = lower_bound(ctx, l.buf(src), a_lo, a_hi, v);
                    }
                    let kk = ctx.make_successor(CS_MJOIN, task.k, 2);
                    let left = (ma - a_lo) + (mb - b_lo);
                    ctx.spawn(Task::new(
                        CS_MRANGE,
                        kk.with_slot(1),
                        &[ma, a_hi, mb, b_hi, d_lo + left, src],
                    ));
                    ctx.spawn(Task::new(
                        CS_MRANGE,
                        kk.with_slot(0),
                        &[a_lo, ma, b_lo, mb, d_lo, src],
                    ));
                }
            }
            CS_MJOIN => {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0] + task.args[1]);
            }
            other => panic!("cilksort: unexpected task type {other}"),
        }
    }
}

/// Binary search: first index in `[lo, hi)` whose value is `>= v`.
fn lower_bound(ctx: &mut dyn TaskContext, base: u64, mut lo: u64, mut hi: u64, v: u32) -> u64 {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let x = ctx.read_u32(base + 4 * mid);
        ctx.compute(2);
        if x < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_sorts() {
        let bench = Cilksort::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_sorts() {
        let bench = Cilksort::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        // Parallel merging generates plenty of tasks.
        assert!(out.metrics.get("accel.tasks") > 4);
    }

    #[test]
    fn already_sorted_input_still_works() {
        let bench = Cilksort::new(Scale::Tiny);
        let l = bench.layout();
        let mut exec = SerialExecutor::new();
        let sorted: Vec<u32> = (0..bench.n as u32).collect();
        exec.mem_mut().write_u32_slice(l.x, &sorted);
        let mut worker = CilksortWorker { layout: l };
        let result = exec
            .run(
                &mut worker,
                Task::new(CS_SORT, Continuation::host(0), &[0, bench.n, 0]),
            )
            .unwrap();
        assert_eq!(result, bench.n);
        assert_eq!(exec.memory().read_u32_slice(l.x, bench.n as usize), sorted);
    }

    #[test]
    fn lower_bound_agrees_with_std() {
        let mut exec = SerialExecutor::new();
        let data: Vec<u32> = vec![1, 3, 3, 5, 9, 9, 9, 12];
        exec.mem_mut().write_u32_slice(0x100, &data);
        for v in [0u32, 1, 2, 3, 4, 9, 12, 13] {
            let got = lower_bound(&mut exec, 0x100, 0, data.len() as u64, v);
            let want = data.partition_point(|&x| x < v) as u64;
            assert_eq!(got, want, "lower_bound({v})");
        }
    }
}
