//! `queens` — the N-queens problem (Cilk apps, FJ).
//!
//! Counts all placements of N queens on an N x N board. The solution-space
//! search forks on candidate column positions; below a depth cutoff each
//! task explores its subtree serially (standard Cilk apps granularity
//! control). Board state travels entirely in task arguments as bitmasks —
//! the benchmark's memory intensity is "Low" (Table II).
//!
//! The paper's PE-level customization note applies here: "in queens, each
//! PE is designed to check multiple candidate locations on a chessboard in
//! parallel" (Section V-D2) — captured by the high accelerator
//! ops-per-cycle in [`Benchmark::profile`].
//!
//! The LiteArch variant is level-synchronous: round *r* holds all partial
//! boards with *r* queens placed; each task expands one board, appending
//! children to the next-round list, until the depth cutoff, after which
//! tasks count serially.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};

/// Explore a candidate range of one row (forks).
const Q_SEARCH: TaskTypeId = TaskTypeId(0);
/// Sum join.
const Q_SUM: TaskTypeId = TaskTypeId(1);
/// LiteArch: expand-or-count one board.
const Q_LITE: TaskTypeId = TaskTypeId(2);

/// Known solution counts for checking.
const SOLUTIONS: [(u32, u64); 6] = [
    (6, 4),
    (8, 92),
    (10, 724),
    (11, 2_680),
    (12, 14_200),
    (13, 73_712),
];

#[derive(Debug, Clone, Copy)]
struct Layout {
    /// LiteArch next-round board list: count word + 4-word board records.
    next_list: u64,
}

/// The N-queens benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Queens {
    n: u32,
    /// Rows below this depth are explored serially within one task.
    cutoff: u32,
}

impl Queens {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (n, cutoff) = match scale {
            Scale::Tiny => (8, 3),
            Scale::Small => (10, 4),
            Scale::Paper => (12, 4),
        };
        Queens { n, cutoff }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        // Generously sized frontier list for the Lite variant.
        let next_list = alloc.alloc_array(1 + 4 * 600_000, 8);
        Layout { next_list }
    }

    /// Host-side golden count.
    fn golden(&self) -> u64 {
        fn count(n: u32, cols: u64, d1: u64, d2: u64, row: u32) -> u64 {
            if row == n {
                return 1;
            }
            let mut total = 0;
            for c in 0..n {
                if free(n, cols, d1, d2, row, c) {
                    let (nc, nd1, nd2) = place(cols, d1, d2, row, c);
                    total += count(n, nc, nd1, nd2, row + 1);
                }
            }
            total
        }
        count(self.n, 0, 0, 0, 0)
    }
}

/// Whether column `c` in `row` is attacked.
#[inline]
fn free(n: u32, cols: u64, d1: u64, d2: u64, row: u32, c: u32) -> bool {
    let _ = n;
    cols & (1 << c) == 0 && d1 & (1 << (row + c)) == 0 && d2 & (1 << (row + 31 - c)) == 0
}

/// Masks after placing a queen at (row, c).
#[inline]
fn place(cols: u64, d1: u64, d2: u64, row: u32, c: u32) -> (u64, u64, u64) {
    (cols | 1 << c, d1 | 1 << (row + c), d2 | 1 << (row + 31 - c))
}

/// Serial subtree count; returns (solutions, explored nodes) so the caller
/// can charge compute proportional to the actual search effort.
fn serial_count(n: u32, cols: u64, d1: u64, d2: u64, row: u32) -> (u64, u64) {
    if row == n {
        return (1, 1);
    }
    let mut total = 0;
    let mut nodes = 1;
    for c in 0..n {
        if free(n, cols, d1, d2, row, c) {
            let (nc, nd1, nd2) = place(cols, d1, d2, row, c);
            let (t, k) = serial_count(n, nc, nd1, nd2, row + 1);
            total += t;
            nodes += k;
        }
    }
    (total, nodes)
}

impl Benchmark for Queens {
    fn meta(&self) -> Meta {
        Meta {
            name: "queens",
            source: "Cilk apps",
            approach: "FJ",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Low",
        }
    }

    fn profile(&self) -> ExecProfile {
        // The HLS worker checks all candidate columns of a row in parallel
        // (bitmask logic unrolls completely); the CPU checks them serially
        // with good branch prediction.
        ExecProfile::new(8.0, 2.0)
    }

    fn flex(&self, _mem: &mut Memory) -> Instance {
        Instance {
            worker: Box::new(QueensWorker {
                n: self.n,
                cutoff: self.cutoff,
                layout: self.layout(),
            }),
            root: Task::new(
                Q_SEARCH,
                Continuation::host(0),
                &[0, 0, 0, 0, pack_range(0, 0, self.n)],
            ),
            footprint_bytes: 4096,
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.layout();
        mem.write_u64(layout.next_list, 0);
        Some(LiteInstance {
            worker: Box::new(QueensWorker {
                n: self.n,
                cutoff: self.cutoff,
                layout,
            }),
            driver: Box::new(QueensLiteDriver {
                layout,
                cutoff: self.cutoff,
            }),
            footprint_bytes: 4096,
        })
    }

    fn check(&self, _mem: &Memory, result: u64) -> Result<(), String> {
        let want = SOLUTIONS
            .iter()
            .find(|(n, _)| *n == self.n)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| self.golden());
        if result != want {
            return Err(format!("queens({}): counted {result}, want {want}", self.n));
        }
        Ok(())
    }
}

/// Packs (row, candidate range) into one argument word.
fn pack_range(row: u32, lo: u32, hi: u32) -> u64 {
    ((row as u64) << 32) | ((lo as u64) << 16) | hi as u64
}

fn unpack_range(w: u64) -> (u32, u32, u32) {
    (
        (w >> 32) as u32,
        ((w >> 16) & 0xFFFF) as u32,
        (w & 0xFFFF) as u32,
    )
}

#[derive(Debug, Clone)]
struct QueensWorker {
    n: u32,
    cutoff: u32,
    layout: Layout,
}

impl Worker for QueensWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let n = self.n;
        match task.ty {
            Q_SEARCH => {
                let (cols, d1, d2) = (task.args[0], task.args[1], task.args[2]);
                let (row, lo, hi) = unpack_range(task.args[4]);
                if row >= self.cutoff {
                    // Serial subtree exploration.
                    let (count, nodes) = serial_count(n, cols, d1, d2, row);
                    ctx.compute(4 * nodes);
                    ctx.send_arg(task.k, count);
                } else if hi - lo > 1 {
                    // Fork the candidate range in two.
                    ctx.compute(2);
                    let mid = lo + (hi - lo) / 2;
                    let kk = ctx.make_successor(Q_SUM, task.k, 2);
                    ctx.spawn(Task::new(
                        Q_SEARCH,
                        kk.with_slot(1),
                        &[cols, d1, d2, 0, pack_range(row, mid, hi)],
                    ));
                    ctx.spawn(Task::new(
                        Q_SEARCH,
                        kk.with_slot(0),
                        &[cols, d1, d2, 0, pack_range(row, lo, mid)],
                    ));
                } else {
                    // Single candidate: place if legal, descend one row.
                    ctx.compute(4);
                    let c = lo;
                    if free(n, cols, d1, d2, row, c) {
                        let (nc, nd1, nd2) = place(cols, d1, d2, row, c);
                        if row + 1 == n {
                            ctx.send_arg(task.k, 1);
                        } else {
                            ctx.spawn(Task::new(
                                Q_SEARCH,
                                task.k,
                                &[nc, nd1, nd2, 0, pack_range(row + 1, 0, n)],
                            ));
                        }
                    } else {
                        ctx.send_arg(task.k, 0);
                    }
                }
            }
            Q_SUM => {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0] + task.args[1]);
            }
            Q_LITE => {
                let (cols, d1, d2) = (task.args[0], task.args[1], task.args[2]);
                let row = task.args[4] as u32;
                if row >= self.cutoff {
                    let (count, nodes) = serial_count(n, cols, d1, d2, row);
                    ctx.compute(4 * nodes);
                    ctx.send_arg(task.k, count);
                } else {
                    // Expand one level, appending legal children to the
                    // shared next-round list.
                    ctx.compute(4 * n as u64);
                    let list = self.layout.next_list;
                    ctx.amo(list);
                    let mem = ctx.mem();
                    let mut count = mem.read_u64(list);
                    for c in 0..n {
                        if free(n, cols, d1, d2, row, c) {
                            let (nc, nd1, nd2) = place(cols, d1, d2, row, c);
                            let rec = list + 8 + 32 * count;
                            mem.write_u64(rec, nc);
                            mem.write_u64(rec + 8, nd1);
                            mem.write_u64(rec + 16, nd2);
                            mem.write_u64(rec + 24, (row + 1) as u64);
                            count += 1;
                        }
                    }
                    mem.write_u64(list, count);
                    ctx.store(list + 8, 32);
                }
            }
            other => panic!("queens: unexpected task type {other}"),
        }
    }
}

/// Level-synchronous LiteArch driver. A pure function of `(mem, round)`:
/// round 0 starts from the empty board, every later round reads the
/// frontier the previous round's tasks appended to `next_list` in simulated
/// memory. Keeping the frontier in memory rather than driver fields is what
/// lets a checkpointed run resume mid-sequence with a freshly built driver
/// (the contract `docs/checkpoint.md` requires of LiteArch drivers).
#[derive(Debug)]
struct QueensLiteDriver {
    layout: Layout,
    cutoff: u32,
}

impl pxl_arch::LiteDriver for QueensLiteDriver {
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        let boards: Vec<(u64, u64, u64, u64)> = if round == 0 {
            vec![(0, 0, 0, 0)]
        } else {
            let list = self.layout.next_list;
            let count = mem.read_u64(list);
            let boards = (0..count)
                .map(|i| {
                    let rec = list + 8 + 32 * i;
                    (
                        mem.read_u64(rec),
                        mem.read_u64(rec + 8),
                        mem.read_u64(rec + 16),
                        mem.read_u64(rec + 24),
                    )
                })
                .collect();
            mem.write_u64(list, 0);
            boards
        };
        if boards.is_empty() || round as u32 > self.cutoff {
            return None;
        }
        Some(
            boards
                .iter()
                .map(|&(cols, d1, d2, row)| {
                    Task::new(Q_LITE, Continuation::host(0), &[cols, d1, d2, 0, row])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_counts_92_for_8_queens() {
        let bench = Queens::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        assert_eq!(result, 92);
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_counts() {
        let bench = Queens::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_rounds_count() {
        let bench = Queens::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn golden_matches_known_counts() {
        for (n, want) in [(6u32, 4u64), (8, 92)] {
            let q = Queens { n, cutoff: 2 };
            assert_eq!(q.golden(), want, "n={n}");
        }
    }
}
