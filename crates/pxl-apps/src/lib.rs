//! The ten benchmark algorithms of the paper's evaluation (Table II).
//!
//! | Name | From | PA | R/N | DP | MP | MI |
//! |------|------|----|-----|----|----|----|
//! | nw | In-house | CP | Yes | Yes | Regular | Medium |
//! | quicksort | In-house | FJ | Yes | Yes | Regular | Medium |
//! | cilksort | Cilk apps | FJ | Yes | Yes | Regular | Medium |
//! | queens | Cilk apps | FJ | Yes | Yes | Regular | Low |
//! | knapsack | Cilk apps | FJ | Yes | Yes | Regular | Low |
//! | uts | UTS | FJ | Yes | Yes | Regular | Low |
//! | bbgemm | MachSuite | PF | Yes | No | Regular | Medium |
//! | bfsqueue | MachSuite | PF | No | No | Irregular | High |
//! | spmvcrs | MachSuite | PF | No | No | Irregular | High |
//! | stencil2d | MachSuite | PF | No | No | Regular | High |
//!
//! (PA: parallelization approach — PF = parallel-for, FJ = fork-join,
//! CP = continuation passing. R/N: recursive/nested. DP: data-dependent
//! parallelism. MP: memory pattern. MI: memory intensity.)
//!
//! Every benchmark implements [`Benchmark`]: it lays out its input in
//! simulated memory, provides a [`pxl_model::Worker`] (the analogue of the
//! paper's C++ worker description) plus a root task for FlexArch and the
//! CPU baseline, optionally a LiteArch variant (a homogeneous-round
//! reformulation per Section V-A — all benchmarks except `cilksort`, whose
//! dynamic task graph the paper could not map to parallel-for), and a
//! golden-reference checker.
//!
//! # Examples
//!
//! ```
//! use pxl_apps::{suite, Benchmark};
//! use pxl_model::SerialExecutor;
//!
//! // Run the smallest config of every benchmark on the serial reference
//! // executor and validate its output.
//! for bench in suite(pxl_apps::Scale::Tiny) {
//!     let mut exec = SerialExecutor::new();
//!     let inst = bench.flex(exec.mem_mut());
//!     let mut worker = inst.worker;
//!     let result = exec.run(worker.as_mut(), inst.root).unwrap();
//!     bench.check(exec.memory(), result).unwrap();
//! }
//! ```

pub mod bbgemm;
pub mod bfsqueue;
pub mod cilksort;
pub mod common;
pub mod knapsack;
pub mod nw;
pub mod queens;
pub mod quicksort;
pub mod spmvcrs;
pub mod stencil2d;
pub mod util;
pub mod uts;

pub use common::{Benchmark, Instance, LiteInstance, Meta, Scale};

/// All ten benchmarks at the given scale, in the paper's Table II order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(nw::Nw::new(scale)),
        Box::new(quicksort::Quicksort::new(scale)),
        Box::new(cilksort::Cilksort::new(scale)),
        Box::new(queens::Queens::new(scale)),
        Box::new(knapsack::Knapsack::new(scale)),
        Box::new(uts::Uts::new(scale)),
        Box::new(bbgemm::Bbgemm::new(scale)),
        Box::new(bfsqueue::BfsQueue::new(scale)),
        Box::new(spmvcrs::SpmvCrs::new(scale)),
        Box::new(stencil2d::Stencil2d::new(scale)),
    ]
}

/// Looks a benchmark up by its Table II name.
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Benchmark>> {
    suite(scale).into_iter().find(|b| b.meta().name == name)
}
