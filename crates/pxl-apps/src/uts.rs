//! `uts` — Unbalanced Tree Search (UTS benchmark suite, FJ).
//!
//! Dynamically constructs and counts an unbalanced tree whose shape is
//! determined by per-node hashes (the original uses SHA-1; we use a
//! SplitMix64 mixer with the same role). A binomial tree: each non-root
//! node has `b` children with probability `q` (with `q*b < 1` the tree is
//! finite but its subtree sizes have enormous variance), while the root
//! fans out to `r` children. "The unbalanced nature of the tree stresses
//! the load balancing capability of the architecture" (Section V-A) — this
//! is the benchmark where hardware work stealing shines over the software
//! runtime (6.50x vs 3.91x at 8 PEs/cores in Table IV).
//!
//! The LiteArch variant expands the tree level by level; imbalance across
//! a level plus the per-round barrier limit its scaling, matching the
//! paper's Lite numbers tapering at 16-32 PEs.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::splitmix64;

/// Count a node's subtree (forks over children ranges).
const UTS_NODE: TaskTypeId = TaskTypeId(0);
/// Sum join.
const UTS_SUM: TaskTypeId = TaskTypeId(1);
/// LiteArch: expand one node into the next-round list.
const UTS_LITE: TaskTypeId = TaskTypeId(2);

/// Cost (abstract ops) of hashing one node — the UTS workload knob; the
/// original spends most of its time in SHA-1.
const HASH_OPS: u64 = 40;

#[derive(Debug, Clone, Copy)]
struct Layout {
    /// LiteArch next-round list: count word + (state, depth) records.
    next_list: u64,
}

/// Tree-shape parameters.
#[derive(Debug, Clone, Copy)]
struct Shape {
    /// Root fan-out.
    root_children: u64,
    /// Non-root branching factor when a node is internal.
    b: u64,
    /// Probability (as numerator over 2^16) that a node is internal.
    q_num: u64,
    /// Hard depth limit (safety bound).
    max_depth: u64,
}

impl Shape {
    /// Number of children of the node with hash `state` at `depth`.
    fn children(&self, state: u64, depth: u64) -> u64 {
        if depth >= self.max_depth {
            return 0;
        }
        if depth == 0 {
            return self.root_children;
        }
        let h = splitmix64(state ^ 0x7575);
        if (h & 0xFFFF) < self.q_num {
            self.b
        } else {
            0
        }
    }

    fn child_state(&self, state: u64, idx: u64) -> u64 {
        splitmix64(state.wrapping_mul(0x100_0193).wrapping_add(idx + 1))
    }
}

/// The UTS benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Uts {
    shape: Shape,
    root_state: u64,
    /// Subtrees below this depth are counted serially inside one task.
    cutoff: u64,
}

impl Uts {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (root_children, q_num, cutoff) = match scale {
            // q = q_num / 65536; with b = 8, E[children] = 8q < 1.
            Scale::Tiny => (32, 7_300, 3),
            Scale::Small => (256, 7_700, 4),
            Scale::Paper => (3_000, 8_000, 9),
        };
        Uts {
            shape: Shape {
                root_children,
                b: 8,
                q_num,
                max_depth: 60,
            },
            root_state: 0x57A7_2024,
            cutoff,
        }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let next_list = alloc.alloc_array(1 + 2 * 4_000_000, 8);
        Layout { next_list }
    }

    /// Host-side golden tree size (iterative to dodge deep recursion).
    fn golden(&self) -> u64 {
        let mut stack = vec![(self.root_state, 0u64)];
        let mut count = 0u64;
        while let Some((state, depth)) = stack.pop() {
            count += 1;
            let m = self.shape.children(state, depth);
            for i in 0..m {
                stack.push((self.shape.child_state(state, i), depth + 1));
            }
        }
        count
    }
}

/// Serial subtree count; returns nodes visited.
fn serial_count(shape: &Shape, state: u64, depth: u64) -> u64 {
    let mut stack = vec![(state, depth)];
    let mut count = 0u64;
    while let Some((s, d)) = stack.pop() {
        count += 1;
        let m = shape.children(s, d);
        for i in 0..m {
            stack.push((shape.child_state(s, i), d + 1));
        }
    }
    count
}

impl Benchmark for Uts {
    fn meta(&self) -> Meta {
        Meta {
            name: "uts",
            source: "UTS",
            approach: "FJ",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Low",
        }
    }

    fn profile(&self) -> ExecProfile {
        // The SHA-like hash datapath unrolls fully in HLS (eight rounds in
        // flight per cycle).
        ExecProfile::new(8.0, 2.0)
    }

    fn flex(&self, _mem: &mut Memory) -> Instance {
        Instance {
            worker: Box::new(UtsWorker {
                shape: self.shape,
                cutoff: self.cutoff,
                layout: self.layout(),
            }),
            // args: state, depth, child_lo, child_hi (0,0 = evaluate node).
            root: Task::new(UTS_NODE, Continuation::host(0), &[self.root_state, 0, 0, 0]),
            footprint_bytes: 4096,
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.layout();
        mem.write_u64(layout.next_list, 0);
        Some(LiteInstance {
            worker: Box::new(UtsWorker {
                shape: self.shape,
                cutoff: self.cutoff,
                layout,
            }),
            driver: Box::new(UtsLiteDriver {
                layout,
                frontier: vec![(self.root_state, 0)],
                cutoff: self.cutoff,
            }),
            footprint_bytes: 4096,
        })
    }

    fn check(&self, _mem: &Memory, result: u64) -> Result<(), String> {
        let want = self.golden();
        if result != want {
            return Err(format!("uts: counted {result} nodes, want {want}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct UtsWorker {
    shape: Shape,
    cutoff: u64,
    layout: Layout,
}

impl Worker for UtsWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let shape = self.shape;
        match task.ty {
            UTS_NODE => {
                let (state, depth) = (task.args[0], task.args[1]);
                let (lo, hi) = (task.args[2], task.args[3]);
                if hi > lo {
                    // A range-split task over this node's children.
                    if hi - lo > 2 {
                        ctx.compute(2);
                        let mid = lo + (hi - lo) / 2;
                        let kk = ctx.make_successor(UTS_SUM, task.k, 2);
                        ctx.spawn(Task::new(
                            UTS_NODE,
                            kk.with_slot(1),
                            &[state, depth, mid, hi],
                        ));
                        ctx.spawn(Task::new(
                            UTS_NODE,
                            kk.with_slot(0),
                            &[state, depth, lo, mid],
                        ));
                    } else if hi - lo == 2 {
                        ctx.compute(2);
                        let kk = ctx.make_successor(UTS_SUM, task.k, 2);
                        for (slot, i) in [(0u8, lo), (1u8, lo + 1)] {
                            ctx.spawn(Task::new(
                                UTS_NODE,
                                kk.with_slot(slot),
                                &[shape.child_state(state, i), depth + 1, 0, 0],
                            ));
                        }
                    } else {
                        ctx.compute(1);
                        ctx.spawn(Task::new(
                            UTS_NODE,
                            task.k,
                            &[shape.child_state(state, lo), depth + 1, 0, 0],
                        ));
                    }
                    return;
                }
                // Evaluate the node itself.
                ctx.compute(HASH_OPS);
                if depth >= self.cutoff {
                    let nodes = serial_count(&shape, state, depth);
                    ctx.compute(HASH_OPS * nodes);
                    ctx.send_arg(task.k, nodes);
                    return;
                }
                let m = shape.children(state, depth);
                if m == 0 {
                    ctx.send_arg(task.k, 1);
                } else {
                    // Count self + children: successor adds 1 via preset.
                    let kk = ctx.make_successor_with(UTS_SUM, task.k, 2, &[(2, 1)]);
                    let mid = m / 2;
                    ctx.spawn(Task::new(
                        UTS_NODE,
                        kk.with_slot(1),
                        &[state, depth, mid, m],
                    ));
                    ctx.spawn(Task::new(
                        UTS_NODE,
                        kk.with_slot(0),
                        &[state, depth, 0, mid],
                    ));
                }
            }
            UTS_SUM => {
                ctx.compute(1);
                // args[2] carries an optional preset "+1" for the node itself.
                ctx.send_arg(task.k, task.args[0] + task.args[1] + task.args[2]);
            }
            UTS_LITE => {
                let (state, depth) = (task.args[0], task.args[1]);
                ctx.compute(HASH_OPS);
                if depth >= self.cutoff {
                    let nodes = serial_count(&shape, state, depth);
                    ctx.compute(HASH_OPS * nodes);
                    ctx.send_arg(task.k, nodes);
                    return;
                }
                // Count self, expand children into the next round.
                ctx.send_arg(task.k, 1);
                let m = shape.children(state, depth);
                if m > 0 {
                    let list = self.layout.next_list;
                    ctx.amo(list);
                    let mem = ctx.mem();
                    let mut count = mem.read_u64(list);
                    for i in 0..m {
                        let rec = list + 8 + 16 * count;
                        mem.write_u64(rec, shape.child_state(state, i));
                        mem.write_u64(rec + 8, depth + 1);
                        count += 1;
                    }
                    mem.write_u64(list, count);
                    ctx.store(list + 8, 16);
                }
            }
            other => panic!("uts: unexpected task type {other}"),
        }
    }
}

/// Level-synchronous LiteArch driver.
#[derive(Debug)]
struct UtsLiteDriver {
    layout: Layout,
    frontier: Vec<(u64, u64)>,
    cutoff: u64,
}

impl pxl_arch::LiteDriver for UtsLiteDriver {
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        if round > 0 {
            let list = self.layout.next_list;
            let count = mem.read_u64(list);
            self.frontier = (0..count)
                .map(|i| {
                    let rec = list + 8 + 16 * i;
                    (mem.read_u64(rec), mem.read_u64(rec + 8))
                })
                .collect();
            mem.write_u64(list, 0);
        }
        if self.frontier.is_empty() || round as u64 > self.cutoff {
            return None;
        }
        Some(
            self.frontier
                .iter()
                .map(|&(state, depth)| Task::new(UTS_LITE, Continuation::host(0), &[state, depth]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn tree_is_nontrivial_and_finite() {
        let bench = Uts::new(Scale::Tiny);
        let n = bench.golden();
        assert!(n > 100, "tree too small: {n}");
        assert!(n < 5_000_000, "tree too large: {n}");
    }

    #[test]
    fn tree_is_unbalanced() {
        // Subtree sizes under the root must vary wildly — that is the point
        // of the benchmark.
        let bench = Uts::new(Scale::Tiny);
        let sizes: Vec<u64> = (0..bench.shape.root_children)
            .map(|i| {
                serial_count(
                    &bench.shape,
                    bench.shape.child_state(bench.root_state, i),
                    1,
                )
            })
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= 8 * min.max(1), "not unbalanced: min={min} max={max}");
    }

    #[test]
    fn serial_counts_tree() {
        let bench = Uts::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_counts_tree() {
        let bench = Uts::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        assert!(
            out.metrics.get("accel.steal_hits") > 0,
            "imbalance forces steals"
        );
    }

    #[test]
    fn lite_rounds_count_tree() {
        let bench = Uts::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }
}
