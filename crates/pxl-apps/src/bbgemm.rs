//! `bbgemm` — blocked matrix multiplication (MachSuite, PF).
//!
//! Dense `n x n` integer GEMM with 32x32 blocking for locality
//! (Lam/Rothberg/Wolf), parallelized with **two nested parallel-for loops**
//! over the block-row and block-column indices, exactly as in the paper
//! (Section V-A). Each leaf task runs the full k-loop for one output block:
//! it DMAs the A and B blocks into scratchpads and performs the
//! multiply-accumulate with a deeply unrolled HLS datapath.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::{pack2, unpack2, InputRng};

/// Outer parallel-for over block rows.
const GM_I: TaskTypeId = TaskTypeId(0);
/// Inner parallel-for over block columns of one block row.
const GM_J: TaskTypeId = TaskTypeId(1);
/// Join (sums completed-block counts).
const GM_SUM: TaskTypeId = TaskTypeId(2);
/// LiteArch / leaf: compute one output block.
const GM_BLOCK: TaskTypeId = TaskTypeId(3);

/// Block edge (the paper uses 32).
const BLOCK: u64 = 32;

#[derive(Debug, Clone, Copy)]
struct Layout {
    a: u64,
    b: u64,
    c: u64,
    n: u64,
}

impl Layout {
    fn grid(&self) -> u64 {
        self.n / BLOCK
    }
    fn a_at(&self, i: u64, j: u64) -> u64 {
        self.a + 4 * (i * self.n + j)
    }
    fn b_at(&self, i: u64, j: u64) -> u64 {
        self.b + 4 * (i * self.n + j)
    }
    fn c_at(&self, i: u64, j: u64) -> u64 {
        self.c + 4 * (i * self.n + j)
    }
}

/// The blocked GEMM benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Bbgemm {
    n: u64,
    seed: u64,
}

impl Bbgemm {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 64,
            Scale::Small => 128,
            Scale::Paper => 256,
        };
        Bbgemm { n, seed: 0x6E66 }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let a = alloc.alloc_array(self.n * self.n, 4);
        let b = alloc.alloc_array(self.n * self.n, 4);
        let c = alloc.alloc_array(self.n * self.n, 4);
        Layout { a, b, c, n: self.n }
    }

    fn gen_inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let mut rng = InputRng::new(self.seed);
        let n2 = (self.n * self.n) as usize;
        let a: Vec<u32> = (0..n2).map(|_| rng.next_in(100) as u32).collect();
        let b: Vec<u32> = (0..n2).map(|_| rng.next_in(100) as u32).collect();
        (a, b)
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        let (a, b) = self.gen_inputs();
        mem.write_u32_slice(l.a, &a);
        mem.write_u32_slice(l.b, &b);
        l
    }

    fn footprint(&self) -> u64 {
        3 * 4 * self.n * self.n
    }

    fn golden(&self) -> Vec<u32> {
        let (a, b) = self.gen_inputs();
        let n = self.n as usize;
        let mut c = vec![0u32; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
                }
            }
        }
        c
    }
}

impl Benchmark for Bbgemm {
    fn meta(&self) -> Meta {
        Meta {
            name: "bbgemm",
            source: "MachSuite",
            approach: "PF",
            recursive_nested: true,
            data_dependent: false,
            mem_pattern: "Regular",
            mem_intensity: "Medium",
        }
    }

    fn profile(&self) -> ExecProfile {
        // A fully unrolled MAC array sustains many multiply-accumulates per
        // cycle out of block scratchpads; NEON gives the CPU 4-wide MACs.
        ExecProfile::new(16.0, 4.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        let g = layout.grid();
        Instance {
            worker: Box::new(BbgemmWorker { layout }),
            root: Task::new(GM_I, Continuation::host(0), &[0, g]),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        let g = layout.grid();
        Some(LiteInstance {
            worker: Box::new(BbgemmWorker { layout }),
            driver: Box::new(
                move |_mem: &mut Memory, round: usize| -> Option<RoundTasks> {
                    (round == 0).then(|| {
                        (0..g * g)
                            .map(|bij| {
                                Task::new(
                                    GM_BLOCK,
                                    Continuation::host(0),
                                    &[pack2((bij / g) as u32, (bij % g) as u32)],
                                )
                            })
                            .collect()
                    })
                },
            ),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let golden = self.golden();
        let got = mem.read_u32_slice(l.c, golden.len());
        if got != golden {
            let bad = got.iter().zip(&golden).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "bbgemm: C[{bad}] = {}, want {}",
                got[bad], golden[bad]
            ));
        }
        let blocks = l.grid() * l.grid();
        if result != blocks {
            return Err(format!("bbgemm: {result} blocks completed, want {blocks}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct BbgemmWorker {
    layout: Layout,
}

impl BbgemmWorker {
    /// Computes output block (bi, bj): full k-loop with scratchpad DMA.
    fn do_block(&self, ctx: &mut dyn TaskContext, bi: u64, bj: u64) {
        let l = self.layout;
        let g = l.grid();
        let n = l.n;
        // Accumulator scratchpad, computed functionally then written once.
        let mut acc = vec![0u32; (BLOCK * BLOCK) as usize];
        for bk in 0..g {
            // DMA A(bi,bk) and B(bk,bj) blocks into scratchpads, row by row
            // (each block row is contiguous in the source matrix).
            for r in 0..BLOCK {
                ctx.dma_read(l.a_at(bi * BLOCK + r, bk * BLOCK), BLOCK * 4);
                ctx.dma_read(l.b_at(bk * BLOCK + r, bj * BLOCK), BLOCK * 4);
            }
            ctx.compute(BLOCK * BLOCK * BLOCK);
            let mem = ctx.mem();
            for i in 0..BLOCK {
                for k in 0..BLOCK {
                    let aik = mem.read_u32(l.a_at(bi * BLOCK + i, bk * BLOCK + k));
                    for j in 0..BLOCK {
                        let bkj = mem.read_u32(l.b_at(bk * BLOCK + k, bj * BLOCK + j));
                        let idx = (i * BLOCK + j) as usize;
                        acc[idx] = acc[idx].wrapping_add(aik.wrapping_mul(bkj));
                    }
                }
            }
        }
        let mem = ctx.mem();
        for i in 0..BLOCK {
            mem.write_u32_slice(
                l.c_at(bi * BLOCK + i, bj * BLOCK),
                &acc[(i * BLOCK) as usize..((i + 1) * BLOCK) as usize],
            );
        }
        for r in 0..BLOCK {
            ctx.dma_write(l.c_at(bi * BLOCK + r, bj * BLOCK), BLOCK * 4);
        }
        let _ = n;
    }
}

impl Worker for BbgemmWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let g = self.layout.grid();
        match task.ty {
            // Outer parallel-for over block rows.
            GM_I => {
                let (lo, hi) = (task.args[0], task.args[1]);
                if hi - lo > 1 {
                    ctx.compute(2);
                    let mid = lo + (hi - lo) / 2;
                    let kk = ctx.make_successor(GM_SUM, task.k, 2);
                    ctx.spawn(Task::new(GM_I, kk.with_slot(1), &[mid, hi]));
                    ctx.spawn(Task::new(GM_I, kk.with_slot(0), &[lo, mid]));
                } else {
                    // One block row: sequential composition into the nested
                    // inner parallel-for.
                    ctx.compute(1);
                    ctx.spawn(Task::new(GM_J, task.k, &[lo, 0, g]));
                }
            }
            // Inner parallel-for over block columns.
            GM_J => {
                let (bi, lo, hi) = (task.args[0], task.args[1], task.args[2]);
                if hi - lo > 1 {
                    ctx.compute(2);
                    let mid = lo + (hi - lo) / 2;
                    let kk = ctx.make_successor(GM_SUM, task.k, 2);
                    ctx.spawn(Task::new(GM_J, kk.with_slot(1), &[bi, mid, hi]));
                    ctx.spawn(Task::new(GM_J, kk.with_slot(0), &[bi, lo, mid]));
                } else {
                    self.do_block(ctx, bi, lo);
                    ctx.send_arg(task.k, 1);
                }
            }
            GM_SUM => {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0] + task.args[1]);
            }
            GM_BLOCK => {
                let (bi, bj) = unpack2(task.args[0]);
                self.do_block(ctx, bi as u64, bj as u64);
                ctx.send_arg(task.k, 1);
            }
            other => panic!("bbgemm: unexpected task type {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_multiplies() {
        let bench = Bbgemm::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_multiplies() {
        let bench = Bbgemm::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_multiplies() {
        let bench = Bbgemm::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        assert_eq!(
            out.metrics.get("lite.rounds"),
            1,
            "single data-parallel round"
        );
    }
}
