//! `knapsack` — 0-1 knapsack by branch and bound (Cilk apps, FJ).
//!
//! Items are pre-sorted by value density; each task decides whether to take
//! or skip the next item, pruning branches whose fractional upper bound
//! cannot beat the best solution found so far. The best-so-far value lives
//! in shared memory and is updated with atomics, so pruning quality — and
//! therefore the amount of work — is *data-dependent and schedule-
//! dependent*, the hallmark irregularity of branch and bound.
//!
//! The LiteArch variant is the paper's cautionary tale: it "uses a
//! different algorithm that sacrifices algorithmic efficiency in order to
//! map to parallel-for" (Section V-D1) — a level-synchronous expansion
//! whose pruning only sees the best value from *previous rounds*, so it
//! explores more nodes; it scales well but its absolute performance is much
//! lower, exactly the shape of Table IV and Fig. 7.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Branch on one item (forks take/skip).
const KS_NODE: TaskTypeId = TaskTypeId(0);
/// Max join.
const KS_MAX: TaskTypeId = TaskTypeId(1);
/// LiteArch: expand one node, appending children to the next-round list.
const KS_LITE: TaskTypeId = TaskTypeId(2);

#[derive(Debug, Clone, Copy)]
struct Layout {
    /// Item table: (weight u32, value u32) pairs, density-sorted.
    items: u64,
    /// Best-so-far value (shared, atomically updated).
    best: u64,
    /// LiteArch next-round list: count word + (idx, cap, value) records.
    next_list: u64,
}

/// The knapsack benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Knapsack {
    n_items: u32,
    capacity: u64,
    /// Items beyond this depth are solved serially inside a task.
    cutoff: u32,
    seed: u64,
}

impl Knapsack {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (n_items, capacity, cutoff) = match scale {
            Scale::Tiny => (14, 0, 5),
            Scale::Small => (20, 0, 8),
            Scale::Paper => (24, 0, 12),
        };
        let mut k = Knapsack {
            n_items,
            capacity,
            cutoff,
            seed: 0x6A95,
        };
        // Capacity at 45% of the total weight: large enough that many
        // subsets are feasible, small enough that the greedy prefix is not.
        let total: u64 = k.gen_items().iter().map(|(w, _)| w).sum();
        k.capacity = total * 45 / 100;
        k
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let items = alloc.alloc_array(self.n_items as u64, 8);
        let best = alloc.alloc(8, 64);
        let next_list = alloc.alloc_array(1 + 3 * 2_000_000, 8);
        Layout {
            items,
            best,
            next_list,
        }
    }

    /// Deterministic item set, sorted by value density (descending).
    fn gen_items(&self) -> Vec<(u64, u64)> {
        let mut rng = InputRng::new(self.seed);
        // Near-equal-density items: pruning hinges on the best-so-far value
        // rather than the density order, keeping the search tree bushy.
        let mut items: Vec<(u64, u64)> = (0..self.n_items)
            .map(|_| {
                let w = 20 + rng.next_in(100);
                (w, w + rng.next_in(3))
            })
            .collect();
        items.sort_by(|a, b| (b.1 * a.0).cmp(&(a.1 * b.0)));
        items
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        for (i, (w, v)) in self.gen_items().into_iter().enumerate() {
            mem.write_u32(l.items + 8 * i as u64, w as u32);
            mem.write_u32(l.items + 8 * i as u64 + 4, v as u32);
        }
        mem.write_u64(l.best, 0);
        mem.write_u64(l.next_list, 0);
        l
    }

    /// Exact DP solution for checking.
    fn golden(&self) -> u64 {
        let items = self.gen_items();
        let cap = self.capacity as usize;
        let mut dp = vec![0u64; cap + 1];
        for (w, v) in items {
            for c in (w as usize..=cap).rev() {
                dp[c] = dp[c].max(dp[c - w as usize] + v);
            }
        }
        dp[cap]
    }
}

/// Upper bound for the remaining items: current value plus everything that
/// is left, as in the Cilk-5 knapsack application. Deliberately loose — a
/// tight LP-relaxation bound prunes random instances almost instantly and
/// leaves no parallelism to study.
fn upper_bound(items: &[(u64, u64)], idx: usize, cap: u64, value: u64) -> u64 {
    let _ = cap;
    value + items[idx..].iter().map(|(_, v)| v).sum::<u64>()
}

/// Serial branch-and-bound of a subtree; returns (best value under this
/// node given `global_best` pruning, nodes explored).
fn serial_bb(
    items: &[(u64, u64)],
    idx: usize,
    cap: u64,
    value: u64,
    global_best: &mut u64,
) -> (u64, u64) {
    if value > *global_best {
        *global_best = value;
    }
    if idx == items.len() {
        return (value, 1);
    }
    if upper_bound(items, idx, cap, value) <= *global_best {
        return (value, 1);
    }
    let (w, v) = items[idx];
    let mut best = value;
    let mut nodes = 1;
    if w <= cap {
        let (b, k) = serial_bb(items, idx + 1, cap - w, value + v, global_best);
        best = best.max(b);
        nodes += k;
    }
    let (b, k) = serial_bb(items, idx + 1, cap, value, global_best);
    best = best.max(b);
    nodes += k;
    (best, nodes)
}

impl Benchmark for Knapsack {
    fn meta(&self) -> Meta {
        Meta {
            name: "knapsack",
            source: "Cilk apps",
            approach: "FJ",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Low",
        }
    }

    fn profile(&self) -> ExecProfile {
        ExecProfile::new(4.0, 2.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        Instance {
            worker: Box::new(KnapsackWorker {
                items: self.gen_items(),
                cutoff: self.cutoff,
                layout,
            }),
            root: Task::new(KS_NODE, Continuation::host(0), &[0, self.capacity, 0]),
            footprint_bytes: 8 * self.n_items as u64 + 64,
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        Some(LiteInstance {
            worker: Box::new(KnapsackWorker {
                items: self.gen_items(),
                cutoff: self.cutoff,
                layout,
            }),
            driver: Box::new(KsLiteDriver {
                layout,
                nodes: vec![(0, self.capacity, 0)],
            }),
            footprint_bytes: 8 * self.n_items as u64 + 64,
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let want = self.golden();
        let l = self.layout();
        let best = mem.read_u64(l.best);
        if best != want {
            return Err(format!("knapsack: shared best {best}, want {want}"));
        }
        // FlexArch/CPU return the optimum through the join tree; the Lite
        // variant reports only through the shared best word (result == 0).
        if result != 0 && result != want {
            return Err(format!("knapsack: best value {result}, want {want}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct KnapsackWorker {
    /// Item table cached in the worker's ROM/scratchpad (written once by the
    /// host; read-only during the search).
    items: Vec<(u64, u64)>,
    cutoff: u32,
    layout: Layout,
}

impl KnapsackWorker {
    /// Reads the shared best (timed) and publishes improvements (atomic max).
    fn update_best(&self, ctx: &mut dyn TaskContext, value: u64) {
        let best_addr = self.layout.best;
        let current = {
            let m = ctx.mem();
            m.read_u64(best_addr)
        };
        if value > current {
            ctx.amo(best_addr);
            let m = ctx.mem();
            if value > m.read_u64(best_addr) {
                m.write_u64(best_addr, value);
            }
        } else {
            ctx.load(best_addr, 8);
        }
    }
}

impl Worker for KnapsackWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let (idx, cap, value) = (task.args[0] as usize, task.args[1], task.args[2]);
        match task.ty {
            KS_NODE => {
                ctx.compute(6);
                self.update_best(ctx, value);
                let global = ctx.mem().read_u64(self.layout.best);
                if idx == self.items.len() || upper_bound(&self.items, idx, cap, value) <= global {
                    ctx.send_arg(task.k, value);
                    return;
                }
                if idx as u32 >= self.cutoff {
                    let mut best = global;
                    let (sub_best, nodes) = serial_bb(&self.items, idx, cap, value, &mut best);
                    ctx.compute(6 * nodes);
                    self.update_best(ctx, sub_best);
                    ctx.send_arg(task.k, sub_best);
                    return;
                }
                let (w, v) = self.items[idx];
                if w <= cap {
                    let kk = ctx.make_successor(KS_MAX, task.k, 2);
                    ctx.spawn(Task::new(
                        KS_NODE,
                        kk.with_slot(1),
                        &[idx as u64 + 1, cap, value],
                    ));
                    ctx.spawn(Task::new(
                        KS_NODE,
                        kk.with_slot(0),
                        &[idx as u64 + 1, cap - w, value + v],
                    ));
                } else {
                    // Item does not fit: sequential composition (skip).
                    ctx.spawn(Task::new(KS_NODE, task.k, &[idx as u64 + 1, cap, value]));
                }
            }
            KS_MAX => {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0].max(task.args[1]));
            }
            KS_LITE => {
                ctx.compute(6);
                self.update_best(ctx, value);
                // Pruning only sees the best published in earlier rounds —
                // the algorithmic inefficiency of the parallel-for mapping.
                let global = ctx.mem().read_u64(self.layout.best);
                if idx == self.items.len() || upper_bound(&self.items, idx, cap, value) <= global {
                    return;
                }
                if idx as u32 >= self.cutoff {
                    let mut best = global;
                    let (sub_best, nodes) = serial_bb(&self.items, idx, cap, value, &mut best);
                    ctx.compute(6 * nodes);
                    self.update_best(ctx, sub_best);
                    return;
                }
                let (w, v) = self.items[idx];
                let list = self.layout.next_list;
                ctx.amo(list);
                let mem = ctx.mem();
                let mut count = mem.read_u64(list);
                let push = |mem: &mut Memory, i: u64, c: u64, val: u64, count: &mut u64| {
                    let rec = list + 8 + 24 * *count;
                    mem.write_u64(rec, i);
                    mem.write_u64(rec + 8, c);
                    mem.write_u64(rec + 16, val);
                    *count += 1;
                };
                if w <= cap {
                    push(mem, idx as u64 + 1, cap - w, value + v, &mut count);
                }
                push(mem, idx as u64 + 1, cap, value, &mut count);
                mem.write_u64(list, count);
                ctx.store(list + 8, 24);
            }
            other => panic!("knapsack: unexpected task type {other}"),
        }
    }
}

/// Level-synchronous LiteArch driver.
#[derive(Debug)]
struct KsLiteDriver {
    layout: Layout,
    nodes: Vec<(u64, u64, u64)>,
}

impl pxl_arch::LiteDriver for KsLiteDriver {
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        if round > 0 {
            let list = self.layout.next_list;
            let count = mem.read_u64(list);
            self.nodes = (0..count)
                .map(|i| {
                    let rec = list + 8 + 24 * i;
                    (
                        mem.read_u64(rec),
                        mem.read_u64(rec + 8),
                        mem.read_u64(rec + 16),
                    )
                })
                .collect();
            mem.write_u64(list, 0);
        }
        if self.nodes.is_empty() {
            return None;
        }
        Some(
            self.nodes
                .iter()
                .map(|&(idx, cap, value)| {
                    Task::new(KS_LITE, Continuation::host(6), &[idx, cap, value])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_finds_optimum() {
        let bench = Knapsack::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_finds_optimum() {
        let bench = Knapsack::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_finds_optimum_with_more_work() {
        let bench = Knapsack::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        // Result comes back via the shared best word, not host slot 0.
        let l = bench.layout();
        let best = engine.memory().read_u64(l.best);
        assert_eq!(best, bench.golden());
        let _ = out;
    }

    #[test]
    fn upper_bound_is_admissible() {
        let bench = Knapsack::new(Scale::Tiny);
        let items = bench.gen_items();
        // The bound at the root must be >= the exact optimum.
        assert!(upper_bound(&items, 0, bench.capacity, 0) >= bench.golden());
    }

    #[test]
    fn golden_dp_small_case() {
        // Hand-checkable instance.
        let k = Knapsack {
            n_items: 3,
            capacity: 50,
            cutoff: 1,
            seed: 0,
        };
        // Items are generated from the seed; just ensure DP <= sum of values.
        let items = k.gen_items();
        let total: u64 = items.iter().map(|(_, v)| v).sum();
        assert!(k.golden() <= total);
    }
}
