//! `quicksort` — classic Quicksort with Hoare partitioning (in-house, FJ).
//!
//! A divide-and-conquer sort that recursively partitions an array and sorts
//! the two halves in parallel (fork-join across the divide-and-conquer
//! tree). The partition step itself is serial, so speedup is bounded by
//! Amdahl's law — the effect the paper highlights when quicksort's
//! scalability tapers off beyond 8-16 PEs (Section V-D1).
//!
//! The LiteArch variant follows the paper's multi-round recipe: round *r*
//! processes every segment at recursion depth *r* with a parallel-for, and
//! each task appends the two child segments to a next-round list in shared
//! memory.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Sort a segment (fork-join version).
const QS_SORT: TaskTypeId = TaskTypeId(0);
/// Join of two sorted halves (forwards a count of sorted elements).
const QS_JOIN: TaskTypeId = TaskTypeId(1);
/// LiteArch: partition-or-sort one segment, appending children to the
/// next-round list.
const QS_LITE: TaskTypeId = TaskTypeId(2);

/// Below this many elements, sort serially with insertion sort.
const SERIAL_CUTOFF: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct Layout {
    data: u64,
    /// LiteArch only: next-round segment list (count word + (lo,hi) pairs).
    next_list: u64,
}

impl Layout {
    fn elem(&self, i: u64) -> u64 {
        self.data + 4 * i
    }
}

/// The quicksort benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Quicksort {
    n: u64,
    seed: u64,
}

impl Quicksort {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 1 << 10,
            Scale::Small => 1 << 13,
            Scale::Paper => 1 << 16,
        };
        Quicksort { n, seed: 0x51C2 }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let data = alloc.alloc_array(self.n, 4);
        let next_list = alloc.alloc_array(2 * self.n + 1, 8);
        Layout { data, next_list }
    }

    fn gen_input(&self) -> Vec<u32> {
        let mut rng = InputRng::new(self.seed);
        (0..self.n).map(|_| rng.next_u64() as u32).collect()
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        mem.write_u32_slice(l.data, &self.gen_input());
        l
    }

    fn footprint(&self) -> u64 {
        4 * self.n
    }
}

impl Benchmark for Quicksort {
    fn meta(&self) -> Meta {
        Meta {
            name: "quicksort",
            source: "In-house",
            approach: "FJ",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Medium",
        }
    }

    fn profile(&self) -> ExecProfile {
        // HLS pipelines the partition scan at two elements per cycle; the
        // branchy scalar loop on the OOO core averages ~1.5 ops/cycle.
        ExecProfile::new(4.0, 1.5)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        Instance {
            worker: Box::new(QuicksortWorker { layout }),
            root: Task::new(QS_SORT, Continuation::host(0), &[0, self.n]),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        Some(LiteInstance {
            worker: Box::new(QuicksortWorker { layout }),
            driver: Box::new(QsLiteDriver {
                layout,
                current: vec![(0, self.n)],
            }),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let got = mem.read_u32_slice(l.data, self.n as usize);
        let mut want = self.gen_input();
        want.sort_unstable();
        if got != want {
            let bad = got.iter().zip(&want).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "quicksort: element {bad} = {}, want {}",
                got[bad], want[bad]
            ));
        }
        if result != self.n {
            return Err(format!(
                "quicksort: reduction reported {result} sorted elements, want {}",
                self.n
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct QuicksortWorker {
    layout: Layout,
}

impl QuicksortWorker {
    /// Serial Hoare partition over `[lo, hi)`; returns the split point.
    /// Charges a streaming read of the range plus stores for actual swaps.
    fn partition(&self, ctx: &mut dyn TaskContext, lo: u64, hi: u64) -> u64 {
        let l = self.layout;
        let len = hi - lo;
        // Median-of-three pivot to avoid quadratic behavior.
        let m = ctx.mem();
        let a = m.read_u32(l.elem(lo));
        let b = m.read_u32(l.elem(lo + len / 2));
        let c = m.read_u32(l.elem(hi - 1));
        let pivot = a.max(b).min(a.min(b).max(c));

        // The scan streams the whole segment once.
        ctx.dma_read(l.elem(lo), len * 4);
        ctx.compute(2 * len);

        let mem = ctx.mem();
        let mut i = lo as i64 - 1;
        let mut j = hi as i64;
        let mut swaps = 0u64;
        loop {
            loop {
                i += 1;
                if mem.read_u32(l.elem(i as u64)) >= pivot {
                    break;
                }
            }
            loop {
                j -= 1;
                if mem.read_u32(l.elem(j as u64)) <= pivot {
                    break;
                }
            }
            if i >= j {
                break;
            }
            let x = mem.read_u32(l.elem(i as u64));
            let y = mem.read_u32(l.elem(j as u64));
            mem.write_u32(l.elem(i as u64), y);
            mem.write_u32(l.elem(j as u64), x);
            swaps += 1;
        }
        // Swapped lines are written back.
        ctx.dma_write(l.elem(lo), (swaps * 8).min(len * 4));
        j as u64 + 1
    }

    /// Serial insertion sort for small segments.
    fn base_sort(&self, ctx: &mut dyn TaskContext, lo: u64, hi: u64) {
        let l = self.layout;
        let len = hi - lo;
        ctx.dma_read(l.elem(lo), len * 4);
        let mem = ctx.mem();
        let mut seg = mem.read_u32_slice(l.elem(lo), len as usize);
        let mut moves = 0u64;
        for i in 1..seg.len() {
            let v = seg[i];
            let mut j = i;
            while j > 0 && seg[j - 1] > v {
                seg[j] = seg[j - 1];
                j -= 1;
                moves += 1;
            }
            seg[j] = v;
        }
        mem.write_u32_slice(l.elem(lo), &seg);
        ctx.compute(2 * len + moves);
        ctx.dma_write(l.elem(lo), len * 4);
    }
}

impl Worker for QuicksortWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        match task.ty {
            QS_SORT => {
                let (lo, hi) = (task.args[0], task.args[1]);
                if hi - lo <= SERIAL_CUTOFF {
                    self.base_sort(ctx, lo, hi);
                    ctx.send_arg(task.k, hi - lo);
                } else {
                    let p = self.partition(ctx, lo, hi);
                    // Guard against degenerate splits.
                    let p = p.clamp(lo + 1, hi - 1);
                    let kk = ctx.make_successor(QS_JOIN, task.k, 2);
                    ctx.spawn(Task::new(QS_SORT, kk.with_slot(1), &[p, hi]));
                    ctx.spawn(Task::new(QS_SORT, kk.with_slot(0), &[lo, p]));
                }
            }
            QS_JOIN => {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0] + task.args[1]);
            }
            QS_LITE => {
                let (lo, hi) = (task.args[0], task.args[1]);
                if hi - lo <= SERIAL_CUTOFF {
                    self.base_sort(ctx, lo, hi);
                    ctx.send_arg(task.k, hi - lo);
                } else {
                    let p = self.partition(ctx, lo, hi).clamp(lo + 1, hi - 1);
                    // Append both children to the next-round list with an
                    // atomic bump of the count word.
                    let l = self.layout;
                    ctx.amo(l.next_list);
                    let mem = ctx.mem();
                    let mut count = mem.read_u64(l.next_list);
                    for &(a, b) in &[(lo, p), (p, hi)] {
                        mem.write_u64(l.next_list + 8 + 16 * count, a);
                        mem.write_u64(l.next_list + 16 + 16 * count, b);
                        count += 1;
                    }
                    mem.write_u64(l.next_list, count);
                    ctx.store(l.next_list + 8, 32);
                }
            }
            other => panic!("quicksort: unexpected task type {other}"),
        }
    }
}

/// LiteArch driver: one recursion level per round.
#[derive(Debug)]
struct QsLiteDriver {
    layout: Layout,
    current: Vec<(u64, u64)>,
}

impl pxl_arch::LiteDriver for QsLiteDriver {
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        if round > 0 {
            // Collect segments the previous round appended.
            let l = self.layout;
            let count = mem.read_u64(l.next_list);
            self.current = (0..count)
                .map(|i| {
                    (
                        mem.read_u64(l.next_list + 8 + 16 * i),
                        mem.read_u64(l.next_list + 16 + 16 * i),
                    )
                })
                .collect();
            mem.write_u64(l.next_list, 0);
        }
        if self.current.is_empty() {
            return None;
        }
        Some(
            self.current
                .iter()
                .map(|&(lo, hi)| Task::new(QS_LITE, Continuation::host(0), &[lo, hi]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_sorts() {
        let bench = Quicksort::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_sorts() {
        let bench = Quicksort::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_rounds_sort() {
        let bench = Quicksort::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        assert!(
            out.metrics.get("lite.rounds") >= 2,
            "must need several rounds"
        );
    }

    #[test]
    fn partition_splits_strictly() {
        // The clamp guarantees both children are strictly smaller, so the
        // recursion terminates even on adversarial (constant) input.
        let mut bench = Quicksort::new(Scale::Tiny);
        bench.seed = 1;
        let mut exec = SerialExecutor::new();
        let l = bench.layout();
        exec.mem_mut()
            .write_u32_slice(l.data, &vec![7u32; bench.n as usize]);
        let mut worker = QuicksortWorker { layout: l };
        let result = exec
            .run(
                &mut worker,
                Task::new(QS_SORT, Continuation::host(0), &[0, bench.n]),
            )
            .unwrap();
        assert_eq!(result, bench.n);
    }
}
