//! Small shared utilities for the benchmark implementations.

/// SplitMix64: a statistically strong 64-bit mixer used for deterministic
/// per-node hashing (UTS node descriptors, input generation).
///
/// # Examples
///
/// ```
/// use pxl_apps::util::splitmix64;
///
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic pseudo-random `u32` stream for input generation.
#[derive(Debug, Clone)]
pub struct InputRng {
    state: u64,
}

impl InputRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        InputRng {
            state: splitmix64(seed ^ 0xDEAD_BEEF),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Next value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_in(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Packs two `u32` coordinates into one task-argument word.
#[inline]
pub fn pack2(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack2`].
#[inline]
pub fn unpack2(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_mixes() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        // Low bits should differ too.
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }

    #[test]
    fn input_rng_deterministic() {
        let mut a = InputRng::new(7);
        let mut b = InputRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(a.next_in(10) < 10);
    }

    #[test]
    fn pack_roundtrip() {
        for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack2(pack2(a, b)), (a, b));
        }
    }
}
