//! The benchmark abstraction shared by all ten algorithms.

use pxl_arch::LiteDriver;
use pxl_mem::Memory;
use pxl_model::{ExecProfile, Task, Worker};

/// One row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Benchmark name.
    pub name: &'static str,
    /// Provenance (In-house / Cilk apps / UTS / MachSuite).
    pub source: &'static str,
    /// Parallelization approach: "CP", "FJ" or "PF".
    pub approach: &'static str,
    /// Recursive or nested parallelism.
    pub recursive_nested: bool,
    /// Data-dependent parallelism.
    pub data_dependent: bool,
    /// Memory access pattern: "Regular" or "Irregular".
    pub mem_pattern: &'static str,
    /// Memory intensity: "Low", "Medium" or "High".
    pub mem_intensity: &'static str,
}

/// Input-size presets. `Tiny` keeps unit tests fast; `Small` exercises some
/// parallelism quickly; `Paper` is the size the benchmark harness uses for
/// the evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal inputs for fast unit tests.
    Tiny,
    /// Mid-size inputs for integration tests.
    Small,
    /// Evaluation-size inputs for the table/figure harness.
    Paper,
}

impl Scale {
    /// Short stable label used in run specs, cache keys and wire formats.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Parses a [`Scale::label`] string.
    pub fn from_label(label: &str) -> Option<Scale> {
        match label {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// An instantiated FlexArch/CPU run: worker, root task and footprint.
pub struct Instance {
    /// The application worker (shared by FlexArch, the CPU baseline and the
    /// serial reference executor).
    pub worker: Box<dyn Worker>,
    /// The root task the host writes to the interface block.
    pub root: Task,
    /// Bytes of input/output data the host initializes — charged as
    /// initialization time in whole-program comparisons.
    pub footprint_bytes: u64,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("root", &self.root)
            .field("footprint_bytes", &self.footprint_bytes)
            .finish_non_exhaustive()
    }
}

/// An instantiated LiteArch run: worker plus the host-side round driver.
pub struct LiteInstance {
    /// The (spawn-free) worker for LiteArch PEs.
    pub worker: Box<dyn Worker>,
    /// Host logic constructing each round of statically distributed tasks.
    pub driver: Box<dyn LiteDriver>,
    /// Bytes of input/output data the host initializes.
    pub footprint_bytes: u64,
}

impl std::fmt::Debug for LiteInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiteInstance")
            .field("footprint_bytes", &self.footprint_bytes)
            .finish_non_exhaustive()
    }
}

/// A benchmark algorithm: metadata, HLS/CPU profile, instantiation and
/// validation.
pub trait Benchmark {
    /// The benchmark's Table II row.
    fn meta(&self) -> Meta;

    /// Per-benchmark execution rates (HLS-optimized PE vs NEON-vectorized
    /// core); see [`ExecProfile`].
    fn profile(&self) -> ExecProfile;

    /// Writes inputs into `mem` and returns the worker + root task used by
    /// FlexArch, the CPU baseline and the serial reference.
    fn flex(&self, mem: &mut Memory) -> Instance;

    /// The LiteArch (parallel-for, multi-round) variant, or `None` if the
    /// algorithm cannot be mapped (cilksort).
    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance>;

    /// Validates outputs against a host-computed golden reference.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    fn check(&self, mem: &Memory, result: u64) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_rows_match_table2() {
        let metas: Vec<Meta> = crate::suite(Scale::Tiny).iter().map(|b| b.meta()).collect();
        assert_eq!(metas.len(), 10);
        let names: Vec<&str> = metas.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            [
                "nw",
                "quicksort",
                "cilksort",
                "queens",
                "knapsack",
                "uts",
                "bbgemm",
                "bfsqueue",
                "spmvcrs",
                "stencil2d"
            ]
        );
        // Table II invariants.
        let m = |n: &str| *metas.iter().find(|m| m.name == n).unwrap();
        assert_eq!(m("nw").approach, "CP");
        assert_eq!(m("quicksort").approach, "FJ");
        assert_eq!(m("bbgemm").approach, "PF");
        assert!(m("uts").recursive_nested);
        assert!(!m("spmvcrs").recursive_nested);
        assert_eq!(m("bfsqueue").mem_pattern, "Irregular");
        assert_eq!(m("queens").mem_intensity, "Low");
        assert_eq!(m("stencil2d").mem_intensity, "High");
    }

    #[test]
    fn lookup_by_name() {
        assert!(crate::by_name("uts", Scale::Tiny).is_some());
        assert!(crate::by_name("nope", Scale::Tiny).is_none());
    }

    #[test]
    fn cilksort_has_no_lite_variant() {
        let mut mem = Memory::new();
        for b in crate::suite(Scale::Tiny) {
            let lite = b.lite(&mut mem);
            if b.meta().name == "cilksort" {
                assert!(
                    lite.is_none(),
                    "paper: cilksort could not map to parallel-for"
                );
            } else {
                assert!(
                    lite.is_some(),
                    "{} should have a Lite variant",
                    b.meta().name
                );
            }
        }
    }
}
