//! `nw` — Needleman-Wunsch sequence alignment (in-house, CP pattern).
//!
//! A dynamic-programming algorithm where each matrix element depends on its
//! north, west and northwest neighbors. Parallelized exactly as the paper
//! describes: "by blocking the matrix, and using continuation passing to
//! construct the task graph, similar to Figure 2(c)" — each block is a
//! pending task whose join counter counts its north/west block
//! dependencies, and a completed block explicitly sends tokens to the
//! continuations of its east and south dependents.
//!
//! The worker follows the HLS scratchpad style of Section V-A: each block
//! task DMAs its **boundary vectors** (the south edge of the block above,
//! the east edge of the block to the left), computes the whole block inside
//! a local scratchpad, and writes back only its own south/east boundary —
//! the score matrix itself never touches global memory, keeping the
//! benchmark at the "Medium" memory intensity of Table II.
//!
//! The LiteArch variant processes the blocked matrix one anti-diagonal per
//! round; the host barrier between rounds enforces the dependencies instead
//! of the P-Store.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::{pack2, unpack2, InputRng};

/// Root task: builds the block task graph.
const NW_ROOT: TaskTypeId = TaskTypeId(0);
/// One matrix block.
const NW_BLOCK: TaskTypeId = TaskTypeId(1);

/// Sentinel for "no dependent in this direction" in preset continuation
/// words (a real encoded continuation never has all bits set).
const NO_CONT: u64 = u64::MAX;

/// Alignment scoring: +1 match, -1 mismatch, -1 gap.
const MATCH: i32 = 1;
const MISMATCH: i32 = -1;
const GAP: i32 = -1;

#[derive(Debug, Clone, Copy)]
struct Layout {
    seq_a: u64,
    seq_b: u64,
    /// South-edge rows: `g*g` vectors of `block` i32 cells.
    h_bound: u64,
    /// East-edge columns: `g*g` vectors of `block` i32 cells.
    v_bound: u64,
    n: u32,
    block: u32,
}

impl Layout {
    fn grid(&self) -> u32 {
        self.n / self.block
    }

    /// Address of the south-edge vector of block (bi, bj).
    fn h_at(&self, bi: u32, bj: u32) -> u64 {
        self.h_bound + 4 * ((bi * self.grid() + bj) as u64 * self.block as u64)
    }

    /// Address of the east-edge vector of block (bi, bj).
    fn v_at(&self, bi: u32, bj: u32) -> u64 {
        self.v_bound + 4 * ((bi * self.grid() + bj) as u64 * self.block as u64)
    }
}

/// The Needleman-Wunsch benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Nw {
    n: u32,
    block: u32,
    seed: u64,
}

impl Nw {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (n, block) = match scale {
            Scale::Tiny => (64, 16),
            Scale::Small => (256, 16),
            Scale::Paper => (1024, 32),
        };
        Nw {
            n,
            block,
            seed: 0x9A17,
        }
    }

    fn layout(&self) -> Layout {
        let g = (self.n / self.block) as u64;
        let mut alloc = Allocator::new(0x10000);
        let seq_a = alloc.alloc_array(self.n as u64, 1);
        let seq_b = alloc.alloc_array(self.n as u64, 1);
        let h_bound = alloc.alloc_array(g * g * self.block as u64, 4);
        let v_bound = alloc.alloc_array(g * g * self.block as u64, 4);
        Layout {
            seq_a,
            seq_b,
            h_bound,
            v_bound,
            n: self.n,
            block: self.block,
        }
    }

    fn gen_seqs(&self) -> (Vec<u8>, Vec<u8>) {
        let mut rng = InputRng::new(self.seed);
        let a: Vec<u8> = (0..self.n).map(|_| rng.next_in(4) as u8).collect();
        let b: Vec<u8> = (0..self.n).map(|_| rng.next_in(4) as u8).collect();
        (a, b)
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        let (a, b) = self.gen_seqs();
        mem.write_bytes(l.seq_a, &a);
        mem.write_bytes(l.seq_b, &b);
        l
    }

    fn footprint(&self) -> u64 {
        let g = (self.n / self.block) as u64;
        2 * self.n as u64 + 2 * 4 * g * g * self.block as u64
    }

    /// Host-side golden DP (full matrix).
    fn golden(&self) -> Vec<i32> {
        let (a, b) = self.gen_seqs();
        let n = self.n as usize;
        let w = n + 1;
        let mut m = vec![0i32; w * w];
        for i in 0..=n {
            m[i * w] = GAP * i as i32;
            m[i] = GAP * i as i32;
        }
        for i in 1..=n {
            for j in 1..=n {
                let s = if b[i - 1] == a[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
                m[i * w + j] = (m[(i - 1) * w + j - 1] + s)
                    .max(m[(i - 1) * w + j] + GAP)
                    .max(m[i * w + j - 1] + GAP);
            }
        }
        m
    }
}

impl Benchmark for Nw {
    fn meta(&self) -> Meta {
        Meta {
            name: "nw",
            source: "In-house",
            approach: "CP",
            recursive_nested: true,
            data_dependent: true,
            mem_pattern: "Regular",
            mem_intensity: "Medium",
        }
    }

    fn profile(&self) -> ExecProfile {
        // HLS pipelines the cell-update loop with anti-diagonal unrolling
        // inside the block scratchpad; the CPU gets modest vectorization of
        // the max-reductions.
        ExecProfile::new(12.0, 3.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        Instance {
            worker: Box::new(NwWorker { layout }),
            root: Task::new(NW_ROOT, Continuation::host(0), &[]),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        Some(LiteInstance {
            worker: Box::new(NwWorker { layout }),
            driver: Box::new(NwLiteDriver { layout }),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let golden = self.golden();
        let n = self.n as usize;
        let w = n + 1;
        let want = golden[n * w + n];
        if result as i64 as i32 != want {
            return Err(format!("nw: result {result} != golden score {want}"));
        }
        // Check every block's stored boundaries against the golden matrix.
        let (g, b) = (l.grid(), l.block as usize);
        for bi in 0..g {
            for bj in 0..g {
                let south_row = (bi as usize + 1) * b;
                for x in 0..b {
                    let got = mem.read_i32(l.h_at(bi, bj) + 4 * x as u64);
                    let want = golden[south_row * w + bj as usize * b + 1 + x];
                    if got != want {
                        return Err(format!(
                            "nw: south edge of block ({bi},{bj})[{x}] = {got}, want {want}"
                        ));
                    }
                }
                let east_col = (bj as usize + 1) * b;
                for y in 0..b {
                    let got = mem.read_i32(l.v_at(bi, bj) + 4 * y as u64);
                    let want = golden[(bi as usize * b + 1 + y) * w + east_col];
                    if got != want {
                        return Err(format!(
                            "nw: east edge of block ({bi},{bj})[{y}] = {got}, want {want}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Worker for both FlexArch and LiteArch (the block kernel is identical;
/// only the dependence plumbing differs).
#[derive(Debug, Clone)]
struct NwWorker {
    layout: Layout,
}

impl NwWorker {
    /// Computes one block in a scratchpad and sends completion tokens.
    fn do_block(&self, task: &Task, ctx: &mut dyn TaskContext) {
        let l = self.layout;
        let (bi, bj) = unpack2(task.args[2]);
        let b = l.block as usize;
        let g = l.grid();

        // Gather boundary inputs: north row (south edge of the block above),
        // west column (east edge of the block to the left), and the
        // northwest corner cell.
        let north: Vec<i32> = if bi == 0 {
            (0..b)
                .map(|x| GAP * (bj as i32 * b as i32 + 1 + x as i32))
                .collect()
        } else {
            ctx.dma_read(l.h_at(bi - 1, bj), (b * 4) as u64);
            let m = ctx.mem();
            (0..b)
                .map(|x| m.read_i32(l.h_at(bi - 1, bj) + 4 * x as u64))
                .collect()
        };
        let west: Vec<i32> = if bj == 0 {
            (0..b)
                .map(|y| GAP * (bi as i32 * b as i32 + 1 + y as i32))
                .collect()
        } else {
            ctx.dma_read(l.v_at(bi, bj - 1), (b * 4) as u64);
            let m = ctx.mem();
            (0..b)
                .map(|y| m.read_i32(l.v_at(bi, bj - 1) + 4 * y as u64))
                .collect()
        };
        let corner: i32 = if bi == 0 {
            GAP * (bj as i32 * b as i32)
        } else if bj == 0 {
            GAP * (bi as i32 * b as i32)
        } else {
            ctx.load(l.h_at(bi - 1, bj - 1) + 4 * (b as u64 - 1), 4);
            ctx.mem()
                .read_i32(l.h_at(bi - 1, bj - 1) + 4 * (b as u64 - 1))
        };
        ctx.dma_read(l.seq_a + (bj as u64 * b as u64), b as u64);
        ctx.dma_read(l.seq_b + (bi as u64 * b as u64), b as u64);

        // Cell updates inside the scratchpad: 3 ops per cell.
        ctx.compute(3 * (b * b) as u64);
        let mem = ctx.mem();
        let seq_a: Vec<u8> = (0..b)
            .map(|x| mem.read_u8(l.seq_a + (bj as usize * b + x) as u64))
            .collect();
        let seq_b: Vec<u8> = (0..b)
            .map(|y| mem.read_u8(l.seq_b + (bi as usize * b + y) as u64))
            .collect();
        // prev[0] is the corner; prev[1..] the north row. cur[0] from west.
        let mut prev: Vec<i32> = std::iter::once(corner)
            .chain(north.iter().copied())
            .collect();
        let mut east = vec![0i32; b];
        let mut south = vec![0i32; b];
        for (y, &bc) in seq_b.iter().enumerate() {
            let mut cur = vec![0i32; b + 1];
            cur[0] = west[y];
            for (x, &ac) in seq_a.iter().enumerate() {
                let s = if bc == ac { MATCH } else { MISMATCH };
                cur[x + 1] = (prev[x] + s).max(prev[x + 1] + GAP).max(cur[x] + GAP);
            }
            east[y] = cur[b];
            if y == b - 1 {
                south.copy_from_slice(&cur[1..]);
            }
            prev = cur;
        }
        for (x, &v) in south.iter().enumerate() {
            mem.write_i32(l.h_at(bi, bj) + 4 * x as u64, v);
        }
        for (y, &v) in east.iter().enumerate() {
            mem.write_i32(l.v_at(bi, bj) + 4 * y as u64, v);
        }
        ctx.dma_write(l.h_at(bi, bj), (b * 4) as u64);
        ctx.dma_write(l.v_at(bi, bj), (b * 4) as u64);

        // Notify dependents (explicit continuation passing, Fig. 2(c)).
        if task.args[3] != NO_CONT {
            ctx.send_arg(Continuation::decode(task.args[3]), 0);
        }
        if task.args[4] != NO_CONT {
            ctx.send_arg(Continuation::decode(task.args[4]), 0);
        }
        if (bi, bj) == (g - 1, g - 1) {
            let score = east[b - 1];
            ctx.send_arg(task.k, score as i64 as u64);
        }
    }
}

impl Worker for NwWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        if task.ty == NW_ROOT {
            // Build the grid of pending block tasks in reverse raster order
            // so each block's east/south continuations already exist.
            let l = self.layout;
            let g = l.grid();
            let mut conts = vec![NO_CONT; (g * g) as usize];
            let idx = |bi: u32, bj: u32| (bi * g + bj) as usize;
            for bi in (0..g).rev() {
                for bj in (0..g).rev() {
                    let join = (bi > 0) as u8 + (bj > 0) as u8;
                    let right = if bj + 1 < g {
                        conts[idx(bi, bj + 1)]
                    } else {
                        NO_CONT
                    };
                    // East neighbor's west-token is slot 1; south's north-token slot 0.
                    let right = if right == NO_CONT {
                        NO_CONT
                    } else {
                        Continuation::decode(right).with_slot(1).encode()
                    };
                    let down = if bi + 1 < g {
                        conts[idx(bi + 1, bj)]
                    } else {
                        NO_CONT
                    };
                    let k = if (bi, bj) == (g - 1, g - 1) {
                        task.k
                    } else {
                        // Non-final blocks produce no root-visible value.
                        Continuation::host(6)
                    };
                    if join == 0 {
                        // Block (0,0) is immediately ready.
                        ctx.spawn(Task::new(
                            NW_BLOCK,
                            k,
                            &[0, 0, pack2(bi, bj), right, down, 0],
                        ));
                    } else {
                        let kk = ctx.make_successor_with(
                            NW_BLOCK,
                            k,
                            join,
                            &[(2, pack2(bi, bj)), (3, right), (4, down)],
                        );
                        conts[idx(bi, bj)] = kk.encode();
                    }
                }
            }
        } else {
            self.do_block(task, ctx);
        }
    }
}

/// Host driver for the LiteArch variant: one anti-diagonal of blocks per
/// round. A pure function of `(mem, round)` — no internal state — so a
/// checkpointed run resumes mid-sequence with a freshly built driver (the
/// contract `docs/checkpoint.md` requires of LiteArch drivers).
#[derive(Debug)]
struct NwLiteDriver {
    layout: Layout,
}

impl pxl_arch::LiteDriver for NwLiteDriver {
    fn next_round(&mut self, _mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        let g = self.layout.grid();
        let d = round as u32;
        if d >= 2 * g - 1 {
            return None;
        }
        let mut tasks = Vec::new();
        for bi in 0..g {
            if d < bi {
                continue;
            }
            let bj = d - bi;
            if bj >= g {
                continue;
            }
            let k = if (bi, bj) == (g - 1, g - 1) {
                Continuation::host(0)
            } else {
                Continuation::host(6)
            };
            tasks.push(Task::new(
                NW_BLOCK,
                k,
                &[0, 0, pack2(bi, bj), NO_CONT, NO_CONT, 0],
            ));
        }
        Some(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_matches_golden() {
        let bench = Nw::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_multi_pe_matches_golden() {
        let bench = Nw::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        assert!(out.metrics.get("accel.tasks") >= 16, "one task per block");
    }

    #[test]
    fn lite_matches_golden() {
        let bench = Nw::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        // 4x4 grid of blocks -> 7 anti-diagonal rounds.
        assert_eq!(out.metrics.get("lite.rounds"), 7);
    }

    #[test]
    fn score_is_bounded_by_perfect_match() {
        let bench = Nw::new(Scale::Tiny);
        let g = bench.golden();
        let n = bench.n as usize;
        let score = g[(n + 1) * (n + 1) - 1];
        assert!(score <= n as i32, "score bounded by perfect match");
    }
}
