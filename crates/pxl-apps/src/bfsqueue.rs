//! `bfsqueue` — breadth-first search with a frontier queue (MachSuite, PF).
//!
//! Level-synchronous BFS: each level's frontier lives in a queue, and the
//! paper parallelizes "across the frontier with a parallel-for loop"
//! (Section V-A). Discovered vertices are appended to the next-level queue
//! with an atomic tail bump. Neighbor lookups are the irregular,
//! high-memory-intensity part (Table II: Irregular / High).
//!
//! On FlexArch the level loop itself is expressed with continuation
//! passing: a `LEVEL` task runs the frontier parallel-for whose join spawns
//! the next `LEVEL` task (sequential composition, Fig. 1(a)). On LiteArch
//! the host driver performs the level loop, one round per level.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, ParallelFor, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Start one BFS level.
const BF_LEVEL: TaskTypeId = TaskTypeId(0);
/// Successor of a level's parallel-for: advance to the next level.
const BF_NEXT: TaskTypeId = TaskTypeId(1);
/// Parallel-for split over frontier indices.
const BF_SPLIT: TaskTypeId = TaskTypeId(2);
/// Parallel-for join.
const BF_JOIN: TaskTypeId = TaskTypeId(3);

/// Frontier entries per leaf task.
const GRAIN: u64 = 32;
/// "Unvisited" distance marker.
const INF: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Layout {
    row_ptr: u64,
    edges: u64,
    dist: u64,
    /// Two frontier queues, selected by level parity.
    queue: [u64; 2],
    /// Tail counters of the two queues.
    count: [u64; 2],
    /// Current level word (written by the level task / Lite driver).
    level_word: u64,
}

/// The BFS benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BfsQueue {
    n: u64,
    extra_edges: u64,
    seed: u64,
}

impl BfsQueue {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (n, extra_edges) = match scale {
            Scale::Tiny => (512, 3),
            Scale::Small => (8_192, 5),
            Scale::Paper => (32_768, 7),
        };
        BfsQueue {
            n,
            extra_edges,
            seed: 0xBF5,
        }
    }

    /// Deterministic graph: a ring (guaranteeing connectivity) plus random
    /// extra out-edges per node, in CSR form.
    fn gen_graph(&self) -> (Vec<u32>, Vec<u32>) {
        let mut rng = InputRng::new(self.seed);
        let mut row_ptr = vec![0u32];
        let mut edges = Vec::new();
        for v in 0..self.n {
            edges.push(((v + 1) % self.n) as u32);
            for _ in 0..rng.next_in(2 * self.extra_edges) {
                edges.push(rng.next_in(self.n) as u32);
            }
            row_ptr.push(edges.len() as u32);
        }
        (row_ptr, edges)
    }

    fn layout(&self) -> Layout {
        let (_, edges) = self.gen_graph();
        let mut alloc = Allocator::new(0x10000);
        Layout {
            row_ptr: alloc.alloc_array(self.n + 1, 4),
            edges: alloc.alloc_array(edges.len() as u64, 4),
            dist: alloc.alloc_array(self.n, 4),
            queue: [alloc.alloc_array(self.n, 4), alloc.alloc_array(self.n, 4)],
            count: [alloc.alloc(64, 64), alloc.alloc(64, 64)],
            level_word: alloc.alloc(64, 64),
        }
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        let (row_ptr, edges) = self.gen_graph();
        mem.write_u32_slice(l.row_ptr, &row_ptr);
        mem.write_u32_slice(l.edges, &edges);
        mem.write_u32_slice(l.dist, &vec![INF; self.n as usize]);
        // Seed: vertex 0 at distance 0 in queue 0.
        mem.write_u32(l.dist, 0);
        mem.write_u32(l.queue[0], 0);
        mem.write_u64(l.count[0], 1);
        mem.write_u64(l.count[1], 0);
        mem.write_u64(l.level_word, 0);
        l
    }

    fn footprint(&self) -> u64 {
        let (row_ptr, edges) = self.gen_graph();
        4 * (row_ptr.len() + edges.len() + 3 * self.n as usize) as u64
    }

    /// Host-side golden distances.
    fn golden(&self) -> Vec<u32> {
        let (row_ptr, edges) = self.gen_graph();
        let mut dist = vec![INF; self.n as usize];
        dist[0] = 0;
        let mut frontier = vec![0usize];
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for e in row_ptr[v]..row_ptr[v + 1] {
                    let u = edges[e as usize] as usize;
                    if dist[u] == INF {
                        dist[u] = level;
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    fn pf(&self) -> ParallelFor {
        ParallelFor::new(BF_SPLIT, BF_JOIN, GRAIN)
    }
}

impl Benchmark for BfsQueue {
    fn meta(&self) -> Meta {
        Meta {
            name: "bfsqueue",
            source: "MachSuite",
            approach: "PF",
            recursive_nested: false,
            data_dependent: false,
            mem_pattern: "Irregular",
            mem_intensity: "High",
        }
    }

    fn profile(&self) -> ExecProfile {
        // Memory-bound pointer chasing: little for HLS or NEON to exploit.
        ExecProfile::new(2.0, 2.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        Instance {
            worker: Box::new(BfsWorker {
                layout,
                pf: self.pf(),
            }),
            // args: level, visited count so far (excluding the source).
            root: Task::new(BF_LEVEL, Continuation::host(0), &[0, 0]),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        Some(LiteInstance {
            worker: Box::new(BfsWorker {
                layout,
                pf: self.pf(),
            }),
            driver: Box::new(BfsLiteDriver { layout }),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let golden = self.golden();
        let got = mem.read_u32_slice(l.dist, golden.len());
        if got != golden {
            let bad = got.iter().zip(&golden).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "bfsqueue: dist[{bad}] = {}, want {}",
                got[bad], golden[bad]
            ));
        }
        let visited = golden.iter().filter(|&&d| d != INF).count() as u64;
        if result != visited - 1 {
            return Err(format!(
                "bfsqueue: visited {result} vertices, want {}",
                visited - 1
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct BfsWorker {
    layout: Layout,
    pf: ParallelFor,
}

impl BfsWorker {
    /// Visits frontier entries `[lo, hi)` of the current level's queue;
    /// returns the number of vertices discovered.
    fn visit_range(&self, ctx: &mut dyn TaskContext, lo: u64, hi: u64) -> u64 {
        let l = self.layout;
        let level = ctx.read_u32(l.level_word) as u64;
        let (cur_q, next_q) = (
            l.queue[(level & 1) as usize],
            l.queue[((level + 1) & 1) as usize],
        );
        let next_count = l.count[((level + 1) & 1) as usize];
        ctx.dma_read(cur_q + 4 * lo, (hi - lo) * 4);
        let mut discovered = 0u64;
        for i in lo..hi {
            let v = ctx.mem().read_u32(cur_q + 4 * i) as u64;
            let (e_lo, e_hi) = {
                ctx.load(l.row_ptr + 4 * v, 8);
                let m = ctx.mem();
                (
                    m.read_u32(l.row_ptr + 4 * v) as u64,
                    m.read_u32(l.row_ptr + 4 * (v + 1)) as u64,
                )
            };
            ctx.dma_read(l.edges + 4 * e_lo, (e_hi - e_lo) * 4);
            ctx.compute(2 * (e_hi - e_lo) + 2);
            for e in e_lo..e_hi {
                let u = ctx.mem().read_u32(l.edges + 4 * e) as u64;
                // Irregular visited check.
                let d = ctx.read_u32(l.dist + 4 * u);
                if d == INF {
                    ctx.write_u32(l.dist + 4 * u, level as u32 + 1);
                    // Atomic tail bump + enqueue.
                    ctx.amo(next_count);
                    let m = ctx.mem();
                    let tail = m.read_u64(next_count);
                    m.write_u32(next_q + 4 * tail, u as u32);
                    m.write_u64(next_count, tail + 1);
                    ctx.store(next_q + 4 * tail, 4);
                    discovered += 1;
                }
            }
        }
        discovered
    }
}

impl Worker for BfsWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let l = self.layout;
        match task.ty {
            BF_LEVEL => {
                let (level, visited) = (task.args[0], task.args[1]);
                ctx.write_u32(l.level_word, level as u32);
                let cur_count = l.count[(level & 1) as usize];
                ctx.load(cur_count, 8);
                let n_f = ctx.mem().read_u64(cur_count);
                if n_f == 0 {
                    ctx.send_arg(task.k, visited);
                    return;
                }
                // Reset the next queue's tail, then run this level's
                // parallel-for; its join feeds the NEXT task.
                ctx.write_u64(l.count[((level + 1) & 1) as usize], 0);
                let kk = ctx.make_successor_with(BF_NEXT, task.k, 1, &[(1, level), (2, visited)]);
                ctx.spawn(self.pf.root_task(0, n_f, kk));
            }
            BF_NEXT => {
                let discovered = task.args[0];
                let (level, visited) = (task.args[1], task.args[2]);
                ctx.compute(2);
                ctx.spawn(Task::new(
                    BF_LEVEL,
                    task.k,
                    &[level + 1, visited + discovered],
                ));
            }
            _ => {
                let handled = self
                    .pf
                    .step(task, ctx, |ctx, lo, hi| self.visit_range(ctx, lo, hi));
                assert!(handled, "bfsqueue: unexpected task type {}", task.ty);
            }
        }
    }
}

/// LiteArch driver: one round per BFS level; the host reads the frontier
/// size and chops it into leaf-size chunks.
#[derive(Debug)]
struct BfsLiteDriver {
    layout: Layout,
}

impl pxl_arch::LiteDriver for BfsLiteDriver {
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        let l = self.layout;
        let level = round as u64;
        let n_f = mem.read_u64(l.count[(level & 1) as usize]);
        if n_f == 0 {
            return None;
        }
        mem.write_u32(l.level_word, level as u32);
        mem.write_u64(l.count[((level + 1) & 1) as usize], 0);
        Some(
            (0..n_f.div_ceil(GRAIN))
                .map(|i| {
                    Task::new(
                        BF_SPLIT,
                        Continuation::host(0),
                        &[i * GRAIN, ((i + 1) * GRAIN).min(n_f)],
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_searches() {
        let bench = BfsQueue::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_searches() {
        let bench = BfsQueue::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_searches() {
        let bench = BfsQueue::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        assert!(
            out.metrics.get("lite.rounds") >= 3,
            "BFS needs several levels"
        );
    }

    #[test]
    fn ring_makes_graph_connected() {
        let bench = BfsQueue::new(Scale::Tiny);
        let golden = bench.golden();
        assert!(golden.iter().all(|&d| d != INF), "every vertex reachable");
    }
}
