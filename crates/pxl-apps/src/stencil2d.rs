//! `stencil2d` — 2D 3x3 stencil over an image (MachSuite, PF).
//!
//! Applies a 3x3 convolution kernel to every interior pixel. The image is
//! broken into blocks and parallelized "across the blocks" with a
//! parallel-for (Section V-A). Each leaf DMAs its block plus halo rows into
//! a scratchpad, convolves with a fully unrolled multiply-add array, and
//! streams the output block back — regular access, high memory intensity
//! (Table II).

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, ParallelFor, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Parallel-for split over block indices.
const ST_SPLIT: TaskTypeId = TaskTypeId(0);
/// Parallel-for join.
const ST_JOIN: TaskTypeId = TaskTypeId(1);

/// Block edge in pixels.
const BLOCK: u64 = 32;
/// Convolution kernel (3x3).
const KERNEL: [[i32; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];

#[derive(Debug, Clone, Copy)]
struct Layout {
    src: u64,
    dst: u64,
    n: u64,
}

impl Layout {
    fn grid(&self) -> u64 {
        self.n / BLOCK
    }
    fn src_at(&self, r: u64, c: u64) -> u64 {
        self.src + 4 * (r * self.n + c)
    }
    fn dst_at(&self, r: u64, c: u64) -> u64 {
        self.dst + 4 * (r * self.n + c)
    }
}

/// The stencil benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stencil2d {
    n: u64,
    seed: u64,
}

impl Stencil2d {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 128,
            Scale::Small => 256,
            Scale::Paper => 512,
        };
        Stencil2d { n, seed: 0x57E6 }
    }

    fn layout(&self) -> Layout {
        let mut alloc = Allocator::new(0x10000);
        let src = alloc.alloc_array(self.n * self.n, 4);
        let dst = alloc.alloc_array(self.n * self.n, 4);
        Layout {
            src,
            dst,
            n: self.n,
        }
    }

    fn gen_image(&self) -> Vec<i32> {
        let mut rng = InputRng::new(self.seed);
        (0..self.n * self.n)
            .map(|_| rng.next_in(256) as i32)
            .collect()
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        mem.write_i32_slice(l.src, &self.gen_image());
        l
    }

    fn footprint(&self) -> u64 {
        8 * self.n * self.n
    }

    fn golden(&self) -> Vec<i32> {
        let img = self.gen_image();
        let n = self.n as usize;
        let mut out = vec![0i32; n * n];
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                let mut acc = 0i32;
                for (kr, row) in KERNEL.iter().enumerate() {
                    for (kc, &w) in row.iter().enumerate() {
                        acc += w * img[(r + kr - 1) * n + (c + kc - 1)];
                    }
                }
                out[r * n + c] = acc;
            }
        }
        out
    }

    fn pf(&self) -> ParallelFor {
        ParallelFor::new(ST_SPLIT, ST_JOIN, 1)
    }
}

impl Benchmark for Stencil2d {
    fn meta(&self) -> Meta {
        Meta {
            name: "stencil2d",
            source: "MachSuite",
            approach: "PF",
            recursive_nested: false,
            data_dependent: false,
            mem_pattern: "Regular",
            mem_intensity: "High",
        }
    }

    fn profile(&self) -> ExecProfile {
        // The 3x3 MAC array unrolls completely in HLS.
        ExecProfile::new(16.0, 4.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        let pf = self.pf();
        let blocks = layout.grid() * layout.grid();
        Instance {
            worker: Box::new(StencilWorker { layout, pf }),
            root: pf.root_task(0, blocks, Continuation::host(0)),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        let pf = self.pf();
        let blocks = layout.grid() * layout.grid();
        Some(LiteInstance {
            worker: Box::new(StencilWorker { layout, pf }),
            driver: Box::new(
                move |_mem: &mut Memory, round: usize| -> Option<RoundTasks> {
                    (round == 0).then(|| {
                        (0..blocks)
                            .map(|b| Task::new(ST_SPLIT, Continuation::host(0), &[b, b + 1]))
                            .collect()
                    })
                },
            ),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let golden = self.golden();
        let got = mem.read_i32_slice(l.dst, golden.len());
        if got != golden {
            let bad = got.iter().zip(&golden).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "stencil2d: pixel {bad} = {}, want {}",
                got[bad], golden[bad]
            ));
        }
        let blocks = l.grid() * l.grid();
        if result != blocks {
            return Err(format!("stencil2d: {result} blocks done, want {blocks}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct StencilWorker {
    layout: Layout,
    pf: ParallelFor,
}

impl StencilWorker {
    fn do_block(&self, ctx: &mut dyn TaskContext, b: u64) {
        let l = self.layout;
        let g = l.grid();
        let n = l.n;
        let (br, bc) = (b / g, b % g);
        let (r0, c0) = (br * BLOCK, bc * BLOCK);
        // DMA the block plus one halo row above and below (halo columns ride
        // along in the same cache lines).
        let halo_lo = r0.saturating_sub(1);
        let halo_hi = (r0 + BLOCK + 1).min(n);
        for r in halo_lo..halo_hi {
            ctx.dma_read(l.src_at(r, c0.saturating_sub(1)), (BLOCK + 2).min(n) * 4);
        }
        ctx.compute(BLOCK * BLOCK * 18); // 9 multiplies + 9 adds per pixel
        let mem = ctx.mem();
        for r in r0..(r0 + BLOCK).min(n) {
            if r == 0 || r == n - 1 {
                continue;
            }
            for c in c0..(c0 + BLOCK).min(n) {
                if c == 0 || c == n - 1 {
                    continue;
                }
                let mut acc = 0i32;
                for (kr, row) in KERNEL.iter().enumerate() {
                    for (kc, &w) in row.iter().enumerate() {
                        acc += w * mem.read_i32(l.src_at(r + kr as u64 - 1, c + kc as u64 - 1));
                    }
                }
                mem.write_i32(l.dst_at(r, c), acc);
            }
        }
        for r in r0..(r0 + BLOCK).min(n) {
            ctx.dma_write(l.dst_at(r, c0), BLOCK * 4);
        }
    }
}

impl Worker for StencilWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let handled = self.pf.step(task, ctx, |ctx, lo, hi| {
            for b in lo..hi {
                self.do_block(ctx, b);
            }
            hi - lo
        });
        assert!(handled, "stencil2d: unexpected task type {}", task.ty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_convolves() {
        let bench = Stencil2d::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_convolves() {
        let bench = Stencil2d::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_convolves() {
        let bench = Stencil2d::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn borders_stay_zero() {
        let bench = Stencil2d::new(Scale::Tiny);
        let golden = bench.golden();
        let n = bench.n as usize;
        assert!(golden[..n].iter().all(|&v| v == 0), "top row untouched");
        assert!(
            golden[(n - 1) * n..].iter().all(|&v| v == 0),
            "bottom row untouched"
        );
    }
}
