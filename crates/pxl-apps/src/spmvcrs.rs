//! `spmvcrs` — sparse matrix-vector multiply, compressed row storage
//! (MachSuite, PF).
//!
//! `y = A*x` with A in CRS format. Parallelized "across the matrix rows
//! using parallel-for" (Section V-A). The column-index gather of `x` is the
//! irregular, high-memory-intensity part (Table II: Irregular / High) —
//! this benchmark is bandwidth-bound, which is why the paper's Fig. 6 shows
//! the Zedboard accelerator *losing* to the CPU and Fig. 7 shows all
//! implementations converging at scale.

use pxl_arch::RoundTasks;
use pxl_mem::{Allocator, Memory};
use pxl_model::{Continuation, ExecProfile, ParallelFor, Task, TaskContext, TaskTypeId, Worker};

use crate::common::{Benchmark, Instance, LiteInstance, Meta, Scale};
use crate::util::InputRng;

/// Parallel-for split over rows.
const SP_SPLIT: TaskTypeId = TaskTypeId(0);
/// Parallel-for join.
const SP_JOIN: TaskTypeId = TaskTypeId(1);
/// Rows per leaf task.
const GRAIN: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct Layout {
    row_ptr: u64,
    col_idx: u64,
    vals: u64,
    x: u64,
    y: u64,
}

/// The SpMV benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SpmvCrs {
    rows: u64,
    avg_nnz: u64,
    seed: u64,
}

impl SpmvCrs {
    /// Creates the benchmark at a preset scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, avg_nnz) = match scale {
            Scale::Tiny => (512, 8),
            Scale::Small => (4096, 12),
            Scale::Paper => (16384, 16),
        };
        SpmvCrs {
            rows,
            avg_nnz,
            seed: 0x59B1,
        }
    }

    /// Deterministic CRS structure: (row_ptr, col_idx, vals, x).
    fn gen_matrix(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut rng = InputRng::new(self.seed);
        let mut row_ptr = Vec::with_capacity(self.rows as usize + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for _ in 0..self.rows {
            let nnz = 1 + rng.next_in(2 * self.avg_nnz);
            let mut cols: Vec<u32> = (0..nnz).map(|_| rng.next_in(self.rows) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col_idx.push(c);
                vals.push(1 + rng.next_in(9) as u32);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        let x: Vec<u32> = (0..self.rows).map(|_| rng.next_in(100) as u32).collect();
        (row_ptr, col_idx, vals, x)
    }

    fn layout(&self) -> Layout {
        let (_, col_idx, _, _) = self.gen_matrix();
        let nnz = col_idx.len() as u64;
        let mut alloc = Allocator::new(0x10000);
        Layout {
            row_ptr: alloc.alloc_array(self.rows + 1, 4),
            col_idx: alloc.alloc_array(nnz, 4),
            vals: alloc.alloc_array(nnz, 4),
            x: alloc.alloc_array(self.rows, 4),
            y: alloc.alloc_array(self.rows, 4),
        }
    }

    fn setup_memory(&self, mem: &mut Memory) -> Layout {
        let l = self.layout();
        let (row_ptr, col_idx, vals, x) = self.gen_matrix();
        mem.write_u32_slice(l.row_ptr, &row_ptr);
        mem.write_u32_slice(l.col_idx, &col_idx);
        mem.write_u32_slice(l.vals, &vals);
        mem.write_u32_slice(l.x, &x);
        l
    }

    fn footprint(&self) -> u64 {
        let (row_ptr, col_idx, vals, x) = self.gen_matrix();
        4 * (row_ptr.len() + col_idx.len() + vals.len() + 2 * x.len()) as u64
    }

    fn golden(&self) -> Vec<u32> {
        let (row_ptr, col_idx, vals, x) = self.gen_matrix();
        (0..self.rows as usize)
            .map(|r| {
                (row_ptr[r]..row_ptr[r + 1])
                    .map(|e| vals[e as usize].wrapping_mul(x[col_idx[e as usize] as usize]))
                    .fold(0u32, u32::wrapping_add)
            })
            .collect()
    }

    fn pf(&self) -> ParallelFor {
        ParallelFor::new(SP_SPLIT, SP_JOIN, GRAIN)
    }
}

impl Benchmark for SpmvCrs {
    fn meta(&self) -> Meta {
        Meta {
            name: "spmvcrs",
            source: "MachSuite",
            approach: "PF",
            recursive_nested: false,
            data_dependent: false,
            mem_pattern: "Irregular",
            mem_intensity: "High",
        }
    }

    fn profile(&self) -> ExecProfile {
        ExecProfile::new(4.0, 3.0)
    }

    fn flex(&self, mem: &mut Memory) -> Instance {
        let layout = self.setup_memory(mem);
        let pf = self.pf();
        Instance {
            worker: Box::new(SpmvWorker { layout, pf }),
            root: pf.root_task(0, self.rows, Continuation::host(0)),
            footprint_bytes: self.footprint(),
        }
    }

    fn lite(&self, mem: &mut Memory) -> Option<LiteInstance> {
        let layout = self.setup_memory(mem);
        let pf = self.pf();
        let rows = self.rows;
        Some(LiteInstance {
            worker: Box::new(SpmvWorker { layout, pf }),
            driver: Box::new(
                move |_mem: &mut Memory, round: usize| -> Option<RoundTasks> {
                    (round == 0).then(|| {
                        (0..rows.div_ceil(GRAIN))
                            .map(|i| {
                                // Leaf-size chunks, directly at the split type
                                // (ranges at or below the grain run the leaf).
                                Task::new(
                                    SP_SPLIT,
                                    Continuation::host(0),
                                    &[i * GRAIN, ((i + 1) * GRAIN).min(rows)],
                                )
                            })
                            .collect()
                    })
                },
            ),
            footprint_bytes: self.footprint(),
        })
    }

    fn check(&self, mem: &Memory, result: u64) -> Result<(), String> {
        let l = self.layout();
        let golden = self.golden();
        let got = mem.read_u32_slice(l.y, golden.len());
        if got != golden {
            let bad = got.iter().zip(&golden).position(|(a, b)| a != b).unwrap();
            return Err(format!(
                "spmvcrs: y[{bad}] = {}, want {}",
                got[bad], golden[bad]
            ));
        }
        if result != self.rows {
            return Err(format!(
                "spmvcrs: processed {result} rows, want {}",
                self.rows
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct SpmvWorker {
    layout: Layout,
    pf: ParallelFor,
}

impl Worker for SpmvWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let l = self.layout;
        let handled = self.pf.step(task, ctx, |ctx, lo, hi| {
            // Row pointers and the row's index/value streams are sequential;
            // the x gather is irregular (one timed load per element).
            ctx.dma_read(l.row_ptr + 4 * lo, (hi - lo + 1) * 4);
            let (e_lo, e_hi) = {
                let m = ctx.mem();
                (
                    m.read_u32(l.row_ptr + 4 * lo) as u64,
                    m.read_u32(l.row_ptr + 4 * hi) as u64,
                )
            };
            ctx.dma_read(l.col_idx + 4 * e_lo, (e_hi - e_lo) * 4);
            ctx.dma_read(l.vals + 4 * e_lo, (e_hi - e_lo) * 4);
            ctx.compute(2 * (e_hi - e_lo));
            for r in lo..hi {
                let (start, end) = {
                    let m = ctx.mem();
                    (
                        m.read_u32(l.row_ptr + 4 * r) as u64,
                        m.read_u32(l.row_ptr + 4 * (r + 1)) as u64,
                    )
                };
                let mut acc = 0u32;
                for e in start..end {
                    let col = ctx.mem().read_u32(l.col_idx + 4 * e) as u64;
                    // Irregular gather: a real timed load.
                    let xv = ctx.read_u32(l.x + 4 * col);
                    let av = ctx.mem().read_u32(l.vals + 4 * e);
                    acc = acc.wrapping_add(av.wrapping_mul(xv));
                }
                ctx.mem().write_u32(l.y + 4 * r, acc);
            }
            ctx.dma_write(l.y + 4 * lo, (hi - lo) * 4);
            hi - lo
        });
        assert!(handled, "spmvcrs: unexpected task type {}", task.ty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::SerialExecutor;

    #[test]
    fn serial_multiplies() {
        let bench = SpmvCrs::new(Scale::Tiny);
        let mut exec = SerialExecutor::new();
        let inst = bench.flex(exec.mem_mut());
        let mut worker = inst.worker;
        let result = exec.run(worker.as_mut(), inst.root).unwrap();
        bench.check(exec.memory(), result).unwrap();
    }

    #[test]
    fn flex_parallel_multiplies() {
        let bench = SpmvCrs::new(Scale::Tiny);
        let mut engine =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(2, 2), bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn lite_multiplies() {
        let bench = SpmvCrs::new(Scale::Tiny);
        let mut engine =
            pxl_arch::LiteEngine::new(pxl_arch::AccelConfig::lite(1, 4), bench.profile());
        let inst = bench.lite(engine.mem_mut()).unwrap();
        let (mut worker, mut driver) = (inst.worker, inst.driver);
        let out = engine.run(worker.as_mut(), driver.as_mut()).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
    }

    #[test]
    fn matrix_structure_is_valid() {
        let bench = SpmvCrs::new(Scale::Tiny);
        let (row_ptr, col_idx, vals, x) = bench.gen_matrix();
        assert_eq!(row_ptr.len() as u64, bench.rows + 1);
        assert_eq!(col_idx.len(), vals.len());
        assert_eq!(x.len() as u64, bench.rows);
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "monotone row_ptr");
        assert!(col_idx.iter().all(|&c| (c as u64) < bench.rows));
    }
}
