//! Scheduling policies: the part of an accelerator that decides *where
//! ready tasks live* and *how idle PEs acquire them*.
//!
//! The paper's architectural variable is task distribution — FlexArch's
//! hardware work stealing vs. LiteArch's static rounds — while the task
//! model, P-Store joins, memory system and fault story are shared fabric
//! ([`crate::fabric`]). A [`SchedulingPolicy`] owns exactly that variable
//! for event-driven engines:
//!
//! * [`FlexPolicy`] — per-PE LIFO deques, LFSR (or round-robin) victim
//!   selection, steal-from-head; the paper's Fig. 3(b) TMU.
//! * [`CentralPolicy`] — the implicit strawman: one global ready queue at
//!   the interface block, every acquisition serialized through its single
//!   port. The Flex-vs-central ablation quantifies what distributed
//!   hardware stealing buys.
//!
//! LiteArch's placement rule is not event-driven (the interface block
//! assigns a whole round up front), so it is expressed separately as
//! [`StaticRoundPolicy`] and consumed by [`crate::lite::LiteEngine`].
//!
//! See `docs/fabric.md` for how to add a policy; `examples/custom_policy.rs`
//! runs a user-defined one end to end.

use std::collections::VecDeque;

use pxl_model::{Task, TASK_WORDS};
use pxl_sim::json::JsonValue;
use pxl_sim::{Lfsr16, Time};

use crate::api::EngineKind;
use crate::config::{AccelConfig, ArchKind, LocalOrder, StealEnd, VictimSelect};
use crate::deque::TaskDeque;

/// Task placement and acquisition for the event-driven fabric
/// ([`crate::fabric::FabricEngine`]).
///
/// The fabric calls the policy at well-defined points of its event loop and
/// owns everything else (dispatch costs, faults, watchdog, tracing,
/// metrics). A policy therefore only decides: where a pushed task is
/// stored, what an idle PE pops locally, which unit a starving PE sends its
/// acquire request to, and how the victim serves that request. The victim
/// index `num_pes` denotes the host interface block.
pub trait SchedulingPolicy: std::fmt::Debug {
    /// Builds policy state for a validated configuration.
    fn for_config(cfg: &AccelConfig) -> Self
    where
        Self: Sized;

    /// Engine family label this policy instantiates.
    fn kind(&self) -> EngineKind;

    /// Architecture a configuration must name to drive this policy.
    fn arch(&self) -> ArchKind;

    /// Installs the root task at the host interface before launch.
    fn seed(&mut self, root: Task);

    /// Stores a ready task for `pe`, visible to consumers from `at`.
    /// Returns the task back on overflow (the fabric reports
    /// [`crate::AccelError::QueueFull`]).
    fn push(&mut self, pe: usize, task: Task, at: Time) -> Result<(), Task>;

    /// Pops local work for `pe` visible at `now`, free of network charge.
    /// Policies without per-PE storage return `None`, forcing every
    /// acquisition through the remote path.
    fn pop_local(&mut self, pe: usize, now: Time) -> Option<Task>;

    /// The unit an idle `pe` sends its remote acquire request to: another
    /// PE, or `num_pes` for the host interface block.
    fn acquire_target(&mut self, pe: usize) -> usize;

    /// Serves an acquire request arriving at `victim` at `now`. `service`
    /// is the cost model's steal-service latency and `pred` filters tasks
    /// the thief can execute. Returns the granted task (if any) and the
    /// time service completed — a policy models queue-port contention by
    /// stretching that completion time.
    fn serve_acquire(
        &mut self,
        victim: usize,
        now: Time,
        service: Time,
        pred: &dyn Fn(&Task) -> bool,
    ) -> (Option<Task>, Time);

    /// Whether `pe`'s local storage holds no tasks (watchdog diagnosis and
    /// dead-PE rescue accounting).
    fn unit_queue_empty(&self, pe: usize) -> bool;

    /// Whether the host interface holds no tasks (watchdog diagnosis).
    fn host_queue_empty(&self) -> bool;

    /// `(max, sum)` of per-queue occupancy peaks, for the space-bound
    /// statistics (`accel.queue_peak`, `accel.queue_peak_sum`).
    fn queue_peaks(&self) -> (u64, u64);

    /// Total tasks currently queued across every store this policy owns
    /// (per-PE deques plus the host interface) — the instantaneous
    /// ready-task gauge the telemetry sampler records each epoch.
    fn ready_tasks(&self) -> u64;

    /// Serializes the policy's mutable state (queue contents, RNG
    /// registers, rotation cursors) for engine snapshots. Configuration-
    /// derived fields are rebuilt by [`SchedulingPolicy::for_config`] on
    /// restore, not serialized.
    fn state_to_json_value(&self) -> JsonValue;

    /// Replaces the policy's mutable state with one captured by
    /// [`SchedulingPolicy::state_to_json_value`] on a policy built from the
    /// same configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is malformed or shaped for a
    /// different configuration.
    fn restore_state(&mut self, value: &JsonValue) -> Result<(), String>;
}

/// Word-encodes a task FIFO (the host queue) for snapshots.
fn tasks_to_json(tasks: impl IntoIterator<Item = Task>) -> JsonValue {
    JsonValue::Array(
        tasks
            .into_iter()
            .map(|t| {
                JsonValue::Array(
                    t.to_words()
                        .iter()
                        .map(|w| JsonValue::num_u64(*w))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Inverse of [`tasks_to_json`].
fn tasks_from_json(value: &JsonValue, key: &str) -> Result<Vec<Task>, String> {
    value
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("policy state: missing array {key:?}"))?
        .iter()
        .map(|entry| {
            let words: Vec<u64> = entry
                .as_array()
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or_else(|| format!("policy state: {key:?} entry is not an array"))?;
            if words.len() != TASK_WORDS {
                return Err(format!(
                    "policy state: {key:?} entry holds {} words",
                    words.len()
                ));
            }
            Task::from_words(&words)
        })
        .collect()
}

/// FlexArch's distributed work stealing (the paper's Fig. 3(b) TMU).
///
/// Each PE owns a bounded task deque; idle PEs pop their configured local
/// end, then steal: a 16-bit LFSR (or round-robin rotation, under the
/// ablation's [`VictimSelect::RoundRobin`]) picks a victim among the other
/// PEs and the host interface block, and the victim serves the configured
/// steal end of its deque.
#[derive(Debug)]
pub struct FlexPolicy {
    deques: Vec<TaskDeque>,
    lfsrs: Vec<Lfsr16>,
    rr_victim: Vec<usize>,
    host_queue: VecDeque<Task>,
    local_order: LocalOrder,
    steal_end: StealEnd,
    victim_select: VictimSelect,
    num_pes: usize,
}

impl SchedulingPolicy for FlexPolicy {
    fn for_config(cfg: &AccelConfig) -> Self {
        let num_pes = cfg.num_pes();
        FlexPolicy {
            deques: (0..num_pes)
                .map(|_| TaskDeque::new(cfg.task_queue_entries))
                .collect(),
            lfsrs: (0..num_pes)
                .map(|i| Lfsr16::new(0xACE1 ^ (i as u16).wrapping_mul(0x9E37)))
                .collect(),
            rr_victim: (0..num_pes).collect(),
            host_queue: VecDeque::new(),
            local_order: cfg.policy.local_order,
            steal_end: cfg.policy.steal_end,
            victim_select: cfg.policy.victim_select,
            num_pes,
        }
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Flex
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Flex
    }

    fn seed(&mut self, root: Task) {
        self.host_queue.push_back(root);
    }

    fn push(&mut self, pe: usize, task: Task, at: Time) -> Result<(), Task> {
        self.deques[pe].push_tail(task, at)
    }

    fn pop_local(&mut self, pe: usize, now: Time) -> Option<Task> {
        match self.local_order {
            LocalOrder::Lifo => self.deques[pe].pop_tail(now),
            LocalOrder::Fifo => self.deques[pe].pop_head(now),
        }
    }

    fn acquire_target(&mut self, pe: usize) -> usize {
        // Victim space: all other PEs plus the host interface block.
        let num_pes = self.num_pes;
        if num_pes == 1 {
            return num_pes; // only the IF is stealable
        }
        match self.victim_select {
            VictimSelect::Lfsr => {
                let mut v = self.lfsrs[pe].next_in_range(num_pes + 1);
                if v == pe {
                    v = num_pes;
                }
                v
            }
            VictimSelect::RoundRobin => {
                let mut v = (self.rr_victim[pe] + 1) % (num_pes + 1);
                if v == pe {
                    v = (v + 1) % (num_pes + 1);
                }
                self.rr_victim[pe] = v;
                v
            }
        }
    }

    fn serve_acquire(
        &mut self,
        victim: usize,
        now: Time,
        service: Time,
        pred: &dyn Fn(&Task) -> bool,
    ) -> (Option<Task>, Time) {
        let done = now + service;
        let task = if victim == self.num_pes {
            // The interface block's task is taken only by a supporting PE.
            match self.host_queue.front() {
                Some(t) if pred(t) => self.host_queue.pop_front(),
                _ => None,
            }
        } else {
            match self.steal_end {
                StealEnd::Head => self.deques[victim].steal_head_if(done, pred),
                StealEnd::Tail => match self.deques[victim].pop_tail(done) {
                    Some(t) if pred(&t) => Some(t),
                    Some(t) => {
                        // Put an unsupported task back (hardware would not
                        // have offered it).
                        let _ = self.deques[victim].push_tail(t, done);
                        None
                    }
                    None => None,
                },
            }
        };
        (task, done)
    }

    fn unit_queue_empty(&self, pe: usize) -> bool {
        self.deques[pe].is_empty()
    }

    fn host_queue_empty(&self) -> bool {
        self.host_queue.is_empty()
    }

    fn queue_peaks(&self) -> (u64, u64) {
        let max = self.deques.iter().map(TaskDeque::peak).max().unwrap_or(0);
        let sum: usize = self.deques.iter().map(TaskDeque::peak).sum();
        (max as u64, sum as u64)
    }

    fn ready_tasks(&self) -> u64 {
        let queued: usize = self.deques.iter().map(TaskDeque::len).sum();
        (queued + self.host_queue.len()) as u64
    }

    fn state_to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "deques".to_owned(),
                JsonValue::Array(
                    self.deques
                        .iter()
                        .map(TaskDeque::state_to_json_value)
                        .collect(),
                ),
            ),
            (
                "lfsrs".to_owned(),
                JsonValue::Array(
                    self.lfsrs
                        .iter()
                        .map(|l| JsonValue::num_u64(l.state() as u64))
                        .collect(),
                ),
            ),
            (
                "rr_victim".to_owned(),
                JsonValue::Array(
                    self.rr_victim
                        .iter()
                        .map(|v| JsonValue::num_u64(*v as u64))
                        .collect(),
                ),
            ),
            (
                "host_queue".to_owned(),
                tasks_to_json(self.host_queue.iter().copied()),
            ),
        ])
    }

    fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let deque_states = value
            .get("deques")
            .and_then(JsonValue::as_array)
            .ok_or("policy state: missing deques array")?;
        if deque_states.len() != self.num_pes {
            return Err(format!(
                "policy state has {} deques, this fabric has {} PEs",
                deque_states.len(),
                self.num_pes
            ));
        }
        let u64s = |key: &str| -> Result<Vec<u64>, String> {
            value
                .get(key)
                .and_then(JsonValue::as_array)
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or_else(|| format!("policy state: missing array {key:?}"))
        };
        let lfsrs = u64s("lfsrs")?;
        let rr_victim = u64s("rr_victim")?;
        if lfsrs.len() != self.num_pes || rr_victim.len() != self.num_pes {
            return Err("policy state: per-PE array length mismatch".to_owned());
        }
        let host_queue = tasks_from_json(value, "host_queue")?;
        for (deque, state) in self.deques.iter_mut().zip(deque_states) {
            deque.restore_state(state)?;
        }
        self.lfsrs = lfsrs.iter().map(|s| Lfsr16::new(*s as u16)).collect();
        self.rr_victim = rr_victim.into_iter().map(|v| v as usize).collect();
        self.host_queue = host_queue.into_iter().collect();
        Ok(())
    }
}

/// The centralized shared-queue strawman: one global ready queue at the
/// host interface block.
///
/// Every ready task — the root, every spawn, every completed join — lands
/// in the same FIFO queue, and every idle PE must fetch over the network
/// from unit `num_pes`. The queue has a single port: concurrent
/// acquisitions serialize, each paying [`crate::ArchCosts`]'
/// `central_queue_cycles` after the port frees up. That serialization point
/// is precisely what FlexArch's distributed deques remove, which is what
/// the Flex-vs-Lite-vs-central ablation measures.
///
/// The queue's capacity is the aggregate of the per-PE budget
/// (`task_queue_entries * num_pes`), so a workload that fits FlexArch's
/// distributed storage also fits the central queue.
#[derive(Debug)]
pub struct CentralPolicy {
    queue: TaskDeque,
    /// When the queue's single port next becomes free.
    next_free: Time,
    /// Per-access occupancy of the port.
    access: Time,
    num_pes: usize,
}

impl SchedulingPolicy for CentralPolicy {
    fn for_config(cfg: &AccelConfig) -> Self {
        let num_pes = cfg.num_pes();
        CentralPolicy {
            queue: TaskDeque::new(cfg.task_queue_entries.saturating_mul(num_pes)),
            next_free: Time::ZERO,
            access: cfg.clock.cycles_to_time(cfg.costs.central_queue_cycles),
            num_pes,
        }
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Central
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Central
    }

    fn seed(&mut self, root: Task) {
        let _ = self.queue.push_tail(root, Time::ZERO);
    }

    fn push(&mut self, _pe: usize, task: Task, at: Time) -> Result<(), Task> {
        self.queue.push_tail(task, at)
    }

    fn pop_local(&mut self, _pe: usize, _now: Time) -> Option<Task> {
        // No per-PE storage: every acquisition goes through the global
        // queue's port, paying the round trip and any contention.
        None
    }

    fn acquire_target(&mut self, _pe: usize) -> usize {
        self.num_pes // always the interface block's global queue
    }

    fn serve_acquire(
        &mut self,
        _victim: usize,
        now: Time,
        _service: Time,
        pred: &dyn Fn(&Task) -> bool,
    ) -> (Option<Task>, Time) {
        // Single-port contention: the request waits for the port, then
        // occupies it for one access regardless of hit or miss.
        let start = self.next_free.max(now);
        let done = start + self.access;
        self.next_free = done;
        // FIFO service from the head keeps the oldest ready task first.
        let task = self.queue.steal_head_if(done, pred);
        (task, done)
    }

    fn unit_queue_empty(&self, _pe: usize) -> bool {
        true // PEs hold no tasks; everything lives at the IF
    }

    fn host_queue_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn queue_peaks(&self) -> (u64, u64) {
        let peak = self.queue.peak() as u64;
        (peak, peak)
    }

    fn ready_tasks(&self) -> u64 {
        self.queue.len() as u64
    }

    fn state_to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("queue".to_owned(), self.queue.state_to_json_value()),
            (
                "next_free_ps".to_owned(),
                JsonValue::num_u64(self.next_free.as_ps()),
            ),
        ])
    }

    fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let queue_state = value
            .get("queue")
            .ok_or("policy state: missing queue object")?;
        let next_free = value
            .get("next_free_ps")
            .and_then(JsonValue::as_u64)
            .ok_or("policy state: missing next_free_ps")?;
        self.queue.restore_state(queue_state)?;
        self.next_free = Time::from_ps(next_free);
        Ok(())
    }
}

/// Topology-aware work stealing for multi-chip clusters
/// ([`crate::config::ClusterConfig`]): FlexArch's TMU with a two-level
/// victim space.
///
/// Placement, local pops, and victim-side service are exactly
/// [`FlexPolicy`]'s. Victim *selection* is hierarchical: while a thief's
/// consecutive-failure count sits below the cluster's spill threshold, the
/// LFSR draws only among the thief's own chip's PEs (plus the host
/// interface); past the threshold it widens to the whole cluster, accepting
/// the inter-chip link charge for the chance of finding work. The failure
/// count resets whenever local work appears (a successful pop or a push to
/// the PE).
///
/// On a 1-chip cluster every draw delegates verbatim to [`FlexPolicy`], so
/// the policy is byte-identical to stock FlexArch — the golden gate the
/// cluster tests pin.
#[derive(Debug)]
pub struct HierPolicy {
    inner: FlexPolicy,
    chips: usize,
    pes_per_chip: usize,
    spill_threshold: u32,
    /// Per-PE consecutive failed-acquisition count since local work last
    /// appeared.
    fails: Vec<u32>,
}

impl HierPolicy {
    /// Intra-chip victim draw for `pe`: its own chip's other PEs plus the
    /// host interface block, mirroring [`FlexPolicy::acquire_target`]'s
    /// self-maps-to-host rule within the reduced span.
    fn intra_chip_target(&mut self, pe: usize) -> usize {
        let num_pes = self.inner.num_pes;
        let per_chip = self.pes_per_chip;
        let base = (pe / per_chip) * per_chip;
        match self.inner.victim_select {
            VictimSelect::Lfsr => {
                let r = self.inner.lfsrs[pe].next_in_range(per_chip + 1);
                let v = if r == per_chip { num_pes } else { base + r };
                if v == pe {
                    num_pes
                } else {
                    v
                }
            }
            VictimSelect::RoundRobin => {
                // The rotation cursor stores global victim indices; cycle it
                // through the chip-local span (own PEs, then the host IF).
                let cur = self.inner.rr_victim[pe];
                let local = if cur >= base && cur < base + per_chip {
                    cur - base
                } else {
                    per_chip
                };
                let mut next = (local + 1) % (per_chip + 1);
                if base + next == pe {
                    next = (next + 1) % (per_chip + 1);
                }
                let v = if next == per_chip {
                    num_pes
                } else {
                    base + next
                };
                self.inner.rr_victim[pe] = v;
                v
            }
        }
    }
}

impl SchedulingPolicy for HierPolicy {
    fn for_config(cfg: &AccelConfig) -> Self {
        let inner = FlexPolicy::for_config(cfg);
        let chips = cfg.chips();
        let spill_threshold = match cfg.cluster.map(|c| c.stealing) {
            Some(crate::config::StealMode::Hierarchical { spill_threshold }) => spill_threshold,
            // Flat (or no) cluster stealing: always draw cluster-wide.
            _ => 0,
        };
        HierPolicy {
            pes_per_chip: inner.num_pes / chips,
            fails: vec![0; inner.num_pes],
            inner,
            chips,
            spill_threshold,
        }
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Hier
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Flex
    }

    fn seed(&mut self, root: Task) {
        self.inner.seed(root);
    }

    fn push(&mut self, pe: usize, task: Task, at: Time) -> Result<(), Task> {
        let pushed = self.inner.push(pe, task, at);
        if pushed.is_ok() {
            self.fails[pe] = 0;
        }
        pushed
    }

    fn pop_local(&mut self, pe: usize, now: Time) -> Option<Task> {
        let task = self.inner.pop_local(pe, now);
        if task.is_some() {
            self.fails[pe] = 0;
        }
        task
    }

    fn acquire_target(&mut self, pe: usize) -> usize {
        let fails = self.fails[pe];
        self.fails[pe] = fails.saturating_add(1);
        if self.chips <= 1 || fails >= self.spill_threshold {
            // Spill: the flat cluster-wide draw (identical LFSR math to
            // stock FlexArch, so 1-chip clusters stay byte-identical).
            self.inner.acquire_target(pe)
        } else {
            self.intra_chip_target(pe)
        }
    }

    fn serve_acquire(
        &mut self,
        victim: usize,
        now: Time,
        service: Time,
        pred: &dyn Fn(&Task) -> bool,
    ) -> (Option<Task>, Time) {
        self.inner.serve_acquire(victim, now, service, pred)
    }

    fn unit_queue_empty(&self, pe: usize) -> bool {
        self.inner.unit_queue_empty(pe)
    }

    fn host_queue_empty(&self) -> bool {
        self.inner.host_queue_empty()
    }

    fn queue_peaks(&self) -> (u64, u64) {
        self.inner.queue_peaks()
    }

    fn ready_tasks(&self) -> u64 {
        self.inner.ready_tasks()
    }

    fn state_to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("flex".to_owned(), self.inner.state_to_json_value()),
            (
                "fails".to_owned(),
                JsonValue::Array(
                    self.fails
                        .iter()
                        .map(|f| JsonValue::num_u64(u64::from(*f)))
                        .collect(),
                ),
            ),
        ])
    }

    fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        self.inner.restore_state(
            value
                .get("flex")
                .ok_or("policy state: missing flex object")?,
        )?;
        let fails: Vec<u64> = value
            .get("fails")
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
            .ok_or("policy state: missing fails array")?;
        if fails.len() != self.inner.num_pes {
            return Err("policy state: fails length mismatch".to_owned());
        }
        self.fails = fails.into_iter().map(|f| f as u32).collect();
        Ok(())
    }
}

/// Where LiteArch's interface block placed one task of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSlot {
    /// The PE that executes the task.
    pub pe: usize,
    /// When the PE begins (past its queue, the dispatch slot, and any
    /// stall window).
    pub start: Time,
    /// Whether the task was reassigned away from its round-robin home
    /// because that PE (or a successor) was dead — counted as a rescue.
    pub reassigned: bool,
}

/// LiteArch's static placement rule, separated from the engine so the
/// distribution decision lives with the other scheduling policies.
///
/// Chunk `i` of a round belongs to PE `i mod P`; the interface block's
/// scoreboard statically reassigns a dead PE's slots to the next live PE in
/// rotation, and transient stalls only push the start time past the stall
/// window. Returns `None` when every PE is dead (the round can never
/// dispatch — the engine raises the watchdog).
#[derive(Debug)]
pub struct StaticRoundPolicy {
    num_pes: usize,
}

impl StaticRoundPolicy {
    /// A placement rule for `num_pes` PEs.
    pub fn new(num_pes: usize) -> Self {
        StaticRoundPolicy { num_pes }
    }

    /// Places task `i` of the current round. `pe_time` is each PE's
    /// busy-until horizon, `dispatched` the task's serial dispatch slot,
    /// `deaths` each PE's earliest death (if any) and `stalls` each PE's
    /// sorted `(from, to, spec)` stall windows.
    pub fn place(
        &self,
        i: usize,
        dispatched: Time,
        pe_time: &[Time],
        deaths: &[Option<(Time, usize)>],
        stalls: &[Vec<(Time, Time, usize)>],
    ) -> Option<RoundSlot> {
        for off in 0..self.num_pes {
            let pe = (i + off) % self.num_pes;
            let mut start = pe_time[pe].max(dispatched);
            for &(s, e, _) in &stalls[pe] {
                if start >= s && start < e {
                    start = e;
                }
            }
            // A PE that begins a task before its death commits it
            // (fail-stop at dispatch granularity).
            let alive = match deaths[pe] {
                Some((d, _)) => start < d,
                None => true,
            };
            if alive {
                return Some(RoundSlot {
                    pe,
                    start,
                    reassigned: off > 0,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flex_policy_single_pe_targets_the_interface() {
        let mut p = FlexPolicy::for_config(&AccelConfig::flex(1, 1));
        assert_eq!(p.acquire_target(0), 1);
        assert_eq!(p.kind(), EngineKind::Flex);
    }

    #[test]
    fn central_policy_serializes_queue_accesses() {
        let cfg = AccelConfig::central(1, 4);
        let mut p = CentralPolicy::for_config(&cfg);
        p.seed(Task::new(
            pxl_model::TaskTypeId(0),
            pxl_model::Continuation::host(0),
            &[],
        ));
        let service = Time::from_ps(1);
        let t0 = Time::from_ps(1_000);
        let (hit, done_a) = p.serve_acquire(4, t0, service, &|_| true);
        assert!(hit.is_some());
        // A second request landing at the same instant waits for the port.
        let (_, done_b) = p.serve_acquire(4, t0, service, &|_| true);
        assert!(done_b > done_a, "concurrent accesses must serialize");
        assert!(done_a > t0, "an access occupies the port");
    }

    #[test]
    fn central_policy_has_no_local_work() {
        let cfg = AccelConfig::central(1, 4);
        let mut p = CentralPolicy::for_config(&cfg);
        p.seed(Task::new(
            pxl_model::TaskTypeId(0),
            pxl_model::Continuation::host(0),
            &[],
        ));
        assert!(p.pop_local(0, Time::from_us(1)).is_none());
        assert!(p.unit_queue_empty(0));
        assert!(!p.host_queue_empty());
    }

    #[test]
    fn hier_policy_single_chip_draws_match_flex() {
        // The golden gate at the policy level: with one chip the hierarchical
        // draw must consume the LFSRs exactly like stock FlexArch.
        let cfg = {
            let mut c = AccelConfig::flex(2, 4);
            c.cluster = Some(crate::config::ClusterConfig::new(1));
            c
        };
        let mut flex = FlexPolicy::for_config(&cfg);
        let mut hier = HierPolicy::for_config(&cfg);
        for round in 0..64 {
            for pe in 0..8 {
                assert_eq!(
                    flex.acquire_target(pe),
                    hier.acquire_target(pe),
                    "round {round} pe {pe}"
                );
            }
        }
    }

    #[test]
    fn hier_policy_stays_intra_chip_until_spill() {
        let cfg = {
            let mut c = AccelConfig::flex(4, 4);
            c.cluster = Some(crate::config::ClusterConfig::new(2).hierarchical(3));
            c
        };
        let mut hier = HierPolicy::for_config(&cfg);
        let num_pes = cfg.num_pes();
        // PE 12 lives on chip 1 (PEs 8..16). Its first three draws must stay
        // on its own chip or target the host interface.
        for attempt in 0..3 {
            let v = hier.acquire_target(12);
            assert!(
                (8..16).contains(&v) || v == num_pes,
                "attempt {attempt} spilled early to {v}"
            );
            assert_ne!(v, 12, "never self-steals");
        }
        // Past the threshold the draw widens to the whole cluster; with the
        // Lfsr stream some draw eventually lands off-chip.
        let spilled = (0..64).any(|_| {
            let v = hier.acquire_target(12);
            v < 8
        });
        assert!(spilled, "spilled draws must reach the other chip");
        // Local work resets the failure count: the next draw is gated again.
        let task = Task::new(
            pxl_model::TaskTypeId(0),
            pxl_model::Continuation::host(0),
            &[],
        );
        hier.push(12, task, Time::ZERO).unwrap();
        assert!(hier.pop_local(12, Time::from_us(1)).is_some());
        for _ in 0..3 {
            let v = hier.acquire_target(12);
            assert!((8..16).contains(&v) || v == num_pes);
        }
    }

    #[test]
    fn static_round_policy_skips_dead_pes() {
        let policy = StaticRoundPolicy::new(2);
        let pe_time = [Time::ZERO, Time::ZERO];
        let deaths = [Some((Time::ZERO, 0)), None];
        let stalls = [Vec::new(), Vec::new()];
        let slot = policy
            .place(0, Time::from_ps(10), &pe_time, &deaths, &stalls)
            .expect("PE 1 is alive");
        assert_eq!(slot.pe, 1);
        assert!(slot.reassigned);
        let all_dead = [Some((Time::ZERO, 0)), Some((Time::ZERO, 1))];
        assert!(policy
            .place(0, Time::from_ps(10), &pe_time, &all_dead, &stalls)
            .is_none());
    }
}
