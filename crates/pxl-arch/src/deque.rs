//! The task-management unit's work-stealing deque.
//!
//! Each PE's TMU owns a double-ended task queue (Section III-A): the worker
//! pushes and pops at the **tail** in LIFO order (depth-first traversal of
//! the task graph, which the paper notes gives much better task locality
//! than FIFO), while thieves steal from the **head** — the oldest task,
//! closest to the root of the spawn tree, so each steal transfers a large
//! chunk of work.
//!
//! Entries carry an availability timestamp: the simulator executes a task's
//! spawns eagerly in host time, so a task spawned "later this cycle window"
//! must stay invisible to a thief whose steal request arrives before the
//! spawn's simulated time.

use std::collections::VecDeque;

use pxl_model::{Task, TASK_WORDS};
use pxl_sim::json::JsonValue;
use pxl_sim::{EventSlab, Time};

/// A bounded double-ended task queue with timestamped availability.
///
/// # Examples
///
/// ```
/// use pxl_arch::TaskDeque;
/// use pxl_model::{Continuation, Task, TaskTypeId};
/// use pxl_sim::Time;
///
/// let mut q = TaskDeque::new(8);
/// let t = Task::new(TaskTypeId(0), Continuation::host(0), &[]);
/// q.push_tail(t, Time::from_ns(10)).unwrap();
/// assert!(q.steal_head(Time::from_ns(5)).is_none()); // not visible yet
/// assert!(q.steal_head(Time::from_ns(10)).is_some());
/// ```
/// Ring entries are 16 bytes — an arena slot plus the availability
/// timestamp — so head/tail churn never moves task payloads.
#[derive(Debug, Clone, Copy)]
struct DequeEntry {
    slot: u32,
    avail: Time,
}

#[derive(Debug, Clone)]
pub struct TaskDeque {
    /// Head/tail order over arena slots; the hot path touches only these
    /// compact entries.
    items: VecDeque<DequeEntry>,
    /// Per-run task arena: payloads stay put between push and pop/steal,
    /// and freed slots recycle so steady-state traffic never allocates.
    arena: EventSlab<Task>,
    capacity: usize,
    peak: usize,
    total_pushed: u64,
}

impl TaskDeque {
    /// Creates a deque holding at most `capacity` tasks.
    pub fn new(capacity: usize) -> Self {
        TaskDeque {
            items: VecDeque::new(),
            arena: EventSlab::new(),
            capacity,
            peak: 0,
            total_pushed: 0,
        }
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Peak occupancy observed (for checking the `S_P <= S_1 * P` space
    /// bound).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total tasks ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Pushes a task at the tail, visible from time `available_at`.
    ///
    /// # Errors
    ///
    /// Returns the task back if the queue is full.
    pub fn push_tail(&mut self, task: Task, available_at: Time) -> Result<(), Task> {
        if self.items.len() >= self.capacity {
            return Err(task);
        }
        let slot = self.arena.insert(task);
        self.items.push_back(DequeEntry {
            slot,
            avail: available_at,
        });
        self.total_pushed += 1;
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Pops the most recently pushed task (LIFO), if one is visible at
    /// `now`.
    pub fn pop_tail(&mut self, now: Time) -> Option<Task> {
        match self.items.back() {
            Some(e) if e.avail <= now => {
                let e = self.items.pop_back().expect("back exists");
                Some(self.arena.take(e.slot))
            }
            _ => None,
        }
    }

    /// Steals the oldest task (head), if one is visible at `now`.
    pub fn steal_head(&mut self, now: Time) -> Option<Task> {
        match self.items.front() {
            Some(e) if e.avail <= now => {
                let e = self.items.pop_front().expect("front exists");
                Some(self.arena.take(e.slot))
            }
            _ => None,
        }
    }

    /// Pops the oldest task (head) for FIFO local ordering — an ablation
    /// of the TMU's LIFO discipline, not used by the default architecture.
    pub fn pop_head(&mut self, now: Time) -> Option<Task> {
        self.steal_head(now)
    }

    /// Steals the head only if it is visible at `now` *and* satisfies
    /// `pred` — the type-filtered steal of the heterogeneous-worker
    /// extension (a thief only takes tasks its worker can process).
    pub fn steal_head_if(&mut self, now: Time, pred: impl Fn(&Task) -> bool) -> Option<Task> {
        match self.items.front() {
            Some(e) if e.avail <= now && pred(self.arena.get(e.slot)) => {
                let e = self.items.pop_front().expect("front exists");
                Some(self.arena.take(e.slot))
            }
            _ => None,
        }
    }

    /// Peeks at the head task without removing it.
    pub fn peek_head(&self) -> Option<&Task> {
        self.items.front().map(|e| self.arena.get(e.slot))
    }

    /// Serializes contents and counters for engine snapshots. Each queued
    /// item is the task's word encoding followed by its availability
    /// timestamp; capacity comes from configuration, not the snapshot.
    pub fn state_to_json_value(&self) -> JsonValue {
        let items = self
            .items
            .iter()
            .map(|e| {
                let mut words: Vec<u64> = self.arena.get(e.slot).to_words().to_vec();
                words.push(e.avail.as_ps());
                JsonValue::Array(words.into_iter().map(JsonValue::num_u64).collect())
            })
            .collect();
        JsonValue::Object(vec![
            ("items".to_owned(), JsonValue::Array(items)),
            ("peak".to_owned(), JsonValue::num_u64(self.peak as u64)),
            (
                "total_pushed".to_owned(),
                JsonValue::num_u64(self.total_pushed),
            ),
        ])
    }

    /// Replaces contents and counters with a state captured by
    /// [`TaskDeque::state_to_json_value`]. The deque keeps its configured
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is malformed or holds more tasks
    /// than this deque's capacity.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let entries = value
            .get("items")
            .and_then(JsonValue::as_array)
            .ok_or("deque state: missing items array")?;
        if entries.len() > self.capacity {
            return Err(format!(
                "deque state holds {} tasks, capacity is {}",
                entries.len(),
                self.capacity
            ));
        }
        let mut items = VecDeque::with_capacity(entries.len());
        let mut arena = EventSlab::new();
        for entry in entries {
            let words: Vec<u64> = entry
                .as_array()
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or("deque state: item is not an array")?;
            if words.len() != TASK_WORDS + 1 {
                return Err(format!(
                    "deque state: item holds {} words, expected {}",
                    words.len(),
                    TASK_WORDS + 1
                ));
            }
            let task = Task::from_words(&words[..TASK_WORDS])?;
            items.push_back(DequeEntry {
                slot: arena.insert(task),
                avail: Time::from_ps(words[TASK_WORDS]),
            });
        }
        let peak = value
            .get("peak")
            .and_then(JsonValue::as_u64)
            .ok_or("deque state: missing peak")?;
        let total_pushed = value
            .get("total_pushed")
            .and_then(JsonValue::as_u64)
            .ok_or("deque state: missing total_pushed")?;
        self.items = items;
        self.arena = arena;
        self.peak = peak as usize;
        self.total_pushed = total_pushed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::{Continuation, TaskTypeId};

    fn task(n: u64) -> Task {
        Task::new(TaskTypeId(0), Continuation::host(0), &[n])
    }

    #[test]
    fn lifo_at_tail_fifo_at_head() {
        let mut q = TaskDeque::new(16);
        for i in 0..4 {
            q.push_tail(task(i), Time::ZERO).unwrap();
        }
        assert_eq!(q.pop_tail(Time::ZERO).unwrap().args[0], 3);
        assert_eq!(q.steal_head(Time::ZERO).unwrap().args[0], 0);
        assert_eq!(q.pop_tail(Time::ZERO).unwrap().args[0], 2);
        assert_eq!(q.steal_head(Time::ZERO).unwrap().args[0], 1);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = TaskDeque::new(2);
        q.push_tail(task(0), Time::ZERO).unwrap();
        q.push_tail(task(1), Time::ZERO).unwrap();
        let rejected = q.push_tail(task(2), Time::ZERO).unwrap_err();
        assert_eq!(rejected.args[0], 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn availability_gates_visibility() {
        let mut q = TaskDeque::new(4);
        q.push_tail(task(0), Time::from_ns(100)).unwrap();
        assert!(q.pop_tail(Time::from_ns(99)).is_none());
        assert!(q.steal_head(Time::from_ns(99)).is_none());
        assert!(q.pop_tail(Time::from_ns(100)).is_some());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = TaskDeque::new(8);
        for i in 0..5 {
            q.push_tail(task(i), Time::ZERO).unwrap();
        }
        for _ in 0..3 {
            q.pop_tail(Time::ZERO);
        }
        q.push_tail(task(9), Time::ZERO).unwrap();
        assert_eq!(q.peak(), 5);
        assert_eq!(q.total_pushed(), 6);
    }

    #[test]
    fn state_round_trip_preserves_order_and_visibility() {
        let mut a = TaskDeque::new(8);
        for i in 0..4 {
            a.push_tail(task(i), Time::from_ns(i * 10)).unwrap();
        }
        let _ = a.pop_tail(Time::MAX);
        let state = a.state_to_json_value();
        let mut b = TaskDeque::new(8);
        b.restore_state(&state).unwrap();
        assert_eq!(b.len(), a.len());
        assert_eq!((b.peak(), b.total_pushed()), (a.peak(), a.total_pushed()));
        // Availability timestamps survive: head is visible at 0, next is not.
        assert!(b.steal_head(Time::ZERO).is_some());
        assert!(b.steal_head(Time::ZERO).is_none());
        assert_eq!(b.steal_head(Time::from_ns(10)).unwrap().args[0], 1);
        // Restoring into a smaller deque is rejected.
        let mut tiny = TaskDeque::new(2);
        assert!(tiny.restore_state(&state).unwrap_err().contains("capacity"));
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let mut q = TaskDeque::new(4);
        assert!(q.pop_tail(Time::MAX).is_none());
        assert!(q.steal_head(Time::MAX).is_none());
    }
}
