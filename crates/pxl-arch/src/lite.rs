//! The LiteArch execution engine: static data-parallel distribution.
//!
//! A LiteArch tile (Fig. 3(c)) drops the P-Store, the argument/task router
//! and all work-stealing hardware: "This architecture supports the
//! data-parallel pattern with the host CPU splitting the range into smaller
//! subranges, and enqueuing the tasks for execution on the PEs"
//! (Section III-B). The interface block assigns tasks to PEs statically
//! (round-robin) over the argument/task network.
//!
//! Algorithms with dynamic task graphs are mapped to LiteArch the way the
//! paper describes (Section V-A): "use multiple rounds, with each round
//! processing one level of the task graph using a parallel-for, and at the
//! same time constructing the next level". The host-side logic that builds
//! each round is a [`LiteDriver`].

use pxl_mem::Memory;
use pxl_model::serial::HOST_SLOTS;
use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
use pxl_sim::json::JsonValue;
use pxl_sim::snapshot::{self, malformed, Snapshot, SnapshotError};
use pxl_sim::{FaultKind, Metrics, TelemetrySampler, Time, Timeline, TraceEvent, Tracer};

use crate::config::{AccelConfig, ArchKind};
use crate::fabric::{
    record_injected, record_recovered, register_fault_metrics, timed_memory_path, AccelError,
    AccelResult, MemBackend, RunStatus, Watchdog,
};
use crate::policy::StaticRoundPolicy;

/// One round of statically distributed tasks.
pub type RoundTasks = Vec<Task>;

/// Host-side round constructor for LiteArch executions.
///
/// The engine calls [`LiteDriver::next_round`] repeatedly; each returned
/// batch is distributed round-robin over the PEs and run to completion
/// before the next round starts (a host-side barrier). Return `None` when
/// the computation is finished.
pub trait LiteDriver {
    /// Builds the tasks of round `round`, inspecting `mem` for results of
    /// previous rounds (e.g. the next BFS frontier). `None` ends the run.
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks>;
}

/// Blanket impl so simple closures can drive single- or multi-round runs.
impl<F> LiteDriver for F
where
    F: FnMut(&mut Memory, usize) -> Option<RoundTasks>,
{
    fn next_round(&mut self, mem: &mut Memory, round: usize) -> Option<RoundTasks> {
        self(mem, round)
    }
}

/// The LiteArch accelerator simulator.
///
/// Tasks may not spawn children or create successors — attempting either is
/// an [`AccelError::Unsupported`], enforcing Table I in the simulator the
/// way leaving out the P-Store enforces it in hardware. Arguments sent to a
/// host slot are *accumulated* (summed) into that slot, which is how
/// reductions (queens solution counts, knapsack best values) come back.
///
/// # Examples
///
/// ```
/// use pxl_arch::{AccelConfig, LiteEngine};
/// use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
///
/// const LEAF: TaskTypeId = TaskTypeId(0);
/// struct SumWorker;
/// impl Worker for SumWorker {
///     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
///         let (lo, hi) = (task.args[0], task.args[1]);
///         ctx.compute(hi - lo);
///         ctx.send_arg(task.k, (lo..hi).sum::<u64>());
///     }
/// }
///
/// let mut engine = LiteEngine::new(AccelConfig::lite(1, 4), ExecProfile::scalar());
/// let out = engine
///     .run(&mut SumWorker, &mut |_mem: &mut pxl_mem::Memory, round: usize| {
///         (round == 0).then(|| {
///             (0..4u64)
///                 .map(|i| Task::new(LEAF, Continuation::host(0), &[i * 25, (i + 1) * 25]))
///                 .collect()
///         })
///     })
///     .unwrap();
/// assert_eq!(out.result, (0..100).sum::<u64>());
/// ```
#[derive(Debug)]
pub struct LiteEngine {
    cfg: AccelConfig,
    profile: ExecProfile,
    mem: Memory,
    backend: MemBackend,
    host: [u64; HOST_SLOTS],
    host_written: [bool; HOST_SLOTS],
    metrics: Metrics,
    trace: Tracer,
    /// Simulated time at the last round barrier. A field (not a `run`
    /// local) so a paused or restored engine resumes exactly where it
    /// stopped.
    now: Time,
    /// The next round to request from the driver.
    round: usize,
    /// Next task instance id (sequential in dispatch order; 0 reserved).
    next_task_id: u64,
    watchdog: Watchdog,
    /// In-run telemetry sampler, ticked at round barriers; `None` when
    /// `telemetry_every_cycles` is zero.
    telemetry: Option<TelemetrySampler>,
}

impl LiteEngine {
    /// Creates an engine for `cfg` with the benchmark's execution profile.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AccelConfig::validate`] or is not
    /// a LiteArch configuration. Use [`LiteEngine::try_new`] to handle those
    /// cases as errors.
    pub fn new(cfg: AccelConfig, profile: ExecProfile) -> Self {
        Self::try_new(cfg, profile).expect("invalid accelerator configuration")
    }

    /// Fallible constructor: returns [`AccelError::InvalidConfig`] if the
    /// configuration fails [`AccelConfig::validate`] or is not a LiteArch
    /// configuration.
    pub fn try_new(cfg: AccelConfig, profile: ExecProfile) -> Result<Self, AccelError> {
        cfg.validate()
            .map_err(|e| AccelError::InvalidConfig(e.to_string()))?;
        if cfg.arch != ArchKind::Lite {
            return Err(AccelError::InvalidConfig(
                "LiteEngine requires ArchKind::Lite".to_string(),
            ));
        }
        let backend = MemBackend::for_config(&cfg);
        let mut metrics = Metrics::new();
        register_fault_metrics(&mut metrics);
        metrics.register_counter("trace.dropped");
        Ok(LiteEngine {
            profile,
            mem: Memory::new(),
            backend,
            host: [0; HOST_SLOTS],
            host_written: [false; HOST_SLOTS],
            metrics,
            trace: Tracer::bounded(cfg.trace_capacity),
            now: Time::ZERO,
            round: 0,
            next_task_id: 1,
            watchdog: Watchdog::new(cfg.clock.cycles_to_time(cfg.watchdog_quiescence_cycles)),
            telemetry: (cfg.telemetry_every_cycles > 0).then(|| {
                TelemetrySampler::new(cfg.clock.cycles_to_time(cfg.telemetry_every_cycles))
            }),
            cfg,
        })
    }

    /// Mutable access to functional memory for input setup.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Shared access to functional memory for output checking.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The engine's metrics registry (fully aggregated only after
    /// [`LiteEngine::run`] returns, which moves it into the result).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs rounds from `driver` until it returns `None`.
    ///
    /// The result is the accumulated value of host slot 0.
    ///
    /// # Errors
    ///
    /// [`AccelError::Unsupported`] if a task tries to spawn or create a
    /// successor, [`AccelError::TimedOut`] past the configured limit.
    pub fn run<W, D>(&mut self, worker: &mut W, driver: &mut D) -> Result<AccelResult, AccelError>
    where
        W: Worker + ?Sized,
        D: LiteDriver + ?Sized,
    {
        match self.run_until(worker, driver, None)? {
            RunStatus::Finished(result) => Ok(result),
            RunStatus::Paused { .. } => unreachable!("run_until without a pause never pauses"),
        }
    }

    /// The fault plan's static schedule (validated to hold only PE deaths
    /// and stalls on Lite): per-PE earliest death, sorted busy windows for
    /// transient stalls, and every death spec for end-of-run accounting.
    /// A pure function of the configuration, recomputed on each `run_until`
    /// leg so it never needs to be checkpointed.
    #[allow(clippy::type_complexity)]
    fn fault_windows(
        &self,
    ) -> (
        Vec<Option<(Time, usize)>>,
        Vec<Vec<(Time, Time, usize)>>,
        Vec<(usize, Time, usize)>,
    ) {
        let num_pes = self.cfg.num_pes();
        let mut deaths: Vec<Option<(Time, usize)>> = vec![None; num_pes];
        let mut stalls: Vec<Vec<(Time, Time, usize)>> = vec![Vec::new(); num_pes];
        let mut all_deaths: Vec<(usize, Time, usize)> = Vec::new();
        if let Some(plan) = &self.cfg.fault_plan {
            for (idx, spec) in plan.specs().iter().enumerate() {
                match spec.kind {
                    FaultKind::PeDeath { pe } => {
                        all_deaths.push((pe, spec.from, idx));
                        if deaths[pe].is_none_or(|(t, _)| spec.from < t) {
                            deaths[pe] = Some((spec.from, idx));
                        }
                    }
                    FaultKind::PeStall { pe, cycles } => {
                        let dur = self.cfg.clock.cycles_to_time(cycles);
                        stalls[pe].push((spec.from, spec.from + dur, idx));
                    }
                    _ => {}
                }
            }
            for windows in &mut stalls {
                windows.sort();
            }
        }
        (deaths, stalls, all_deaths)
    }

    /// Runs rounds until the driver returns `None` or, when `pause_at` is
    /// given, until the simulated clock passes that boundary at a round
    /// barrier. Rounds are atomic: the engine pauses *between* rounds, the
    /// natural checkpoint for a machine whose host synchronizes every round.
    /// Legs compose — keep calling with the same worker and an equivalent
    /// driver (LiteArch drivers must derive round `r` from `(mem, r)` alone)
    /// until [`RunStatus::Finished`].
    ///
    /// # Errors
    ///
    /// See [`LiteEngine::run`].
    pub fn run_until<W, D>(
        &mut self,
        worker: &mut W,
        driver: &mut D,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError>
    where
        W: Worker + ?Sized,
        D: LiteDriver + ?Sized,
    {
        let num_pes = self.cfg.num_pes();
        let limit = Time::from_us(self.cfg.max_sim_time_us);
        let (deaths, stalls, all_deaths) = self.fault_windows();
        let policy = StaticRoundPolicy::new(num_pes);
        loop {
            if let Some(pause) = pause_at {
                if self.now > pause {
                    return Ok(RunStatus::Paused { at: pause });
                }
            }
            let round = self.round;
            let Some(tasks) = driver.next_round(&mut self.mem, round) else {
                break;
            };
            self.metrics.incr("lite.rounds");
            self.metrics.add("lite.tasks", tasks.len() as u64);
            let mut now = self.now
                + self
                    .cfg
                    .clock
                    .cycles_to_time(self.cfg.costs.round_sync_cycles);
            // Static round-robin distribution by the interface block. The IF
            // dispatches tasks serially over the argument/task network, so
            // PE p's i-th task is available only after its dispatch slot.
            let dispatch = self
                .cfg
                .clock
                .cycles_to_time(self.cfg.costs.if_dispatch_cycles);
            let mut pe_time = vec![now; num_pes];
            for (i, task) in tasks.into_iter().enumerate() {
                let dispatched = now + Time::from_ps(dispatch.as_ps() * (i as u64 + 1));
                let Some(slot) = policy.place(i, dispatched, &pe_time, &deaths, &stalls) else {
                    // Every PE is dead: the IF can never dispatch this task
                    // (the IF, unit `num_pes`, holds the undispatchable work).
                    let (metrics, trace) = (&mut self.metrics, &mut self.trace);
                    return Err(self
                        .watchdog
                        .stall(metrics, trace, dispatched, Some(num_pes)));
                };
                if slot.reassigned {
                    self.metrics.incr("fault.rescued_tasks");
                }
                let task = task.with_id(self.next_task_id);
                self.next_task_id += 1;
                let end = self.execute_task(slot.start, slot.pe, task, worker)?;
                pe_time[slot.pe] = end;
                self.watchdog.progress(end, slot.pe);
                if end > limit {
                    return Err(AccelError::TimedOut);
                }
            }
            // Host-side barrier: the round ends when the slowest PE drains.
            now = pe_time.into_iter().max().unwrap_or(now);
            self.now = now;
            self.round += 1;
            // Sample at the round barrier: rounds are atomic and pauses only
            // land between them, so a resumed leg replays the same barrier
            // sequence and produces the identical timeline.
            if self.telemetry.as_ref().is_some_and(|t| t.due(now)) {
                let gauges = self.telemetry_gauges();
                let metrics = &self.metrics;
                if let Some(t) = self.telemetry.as_mut() {
                    t.tick(now, metrics, &gauges);
                }
            }
        }
        let now = self.now;
        // Close the final partial telemetry window before end-of-run fault
        // accounting and memory-stat rollups land in the registry, so the
        // last sample's deltas cover only in-run activity like every other.
        let gauges = self.telemetry_gauges();
        let timeline = match self.telemetry.as_mut() {
            Some(t) => {
                t.flush(now, &self.metrics, &gauges);
                t.take_timeline()
            }
            None => Timeline::default(),
        };
        // Account the plan's faults against the finished run: everything
        // that fired inside the simulated interval was absorbed by static
        // reassignment (deaths) or waiting out the window (stalls).
        for &(pe, at, idx) in &all_deaths {
            let effective = deaths[pe] == Some((at, idx)) && at <= now;
            if effective {
                self.metrics.incr("fault.pe_deaths");
                record_injected(&mut self.metrics, &mut self.trace, at, idx, pe);
                record_recovered(&mut self.metrics, &mut self.trace, now.max(at), idx, pe);
            } else {
                self.metrics.incr("fault.skipped");
            }
        }
        for (pe, windows) in stalls.iter().enumerate() {
            for &(s, e, idx) in windows {
                if s <= now {
                    self.metrics.incr("fault.pe_stalls");
                    record_injected(&mut self.metrics, &mut self.trace, s, idx, pe);
                    record_recovered(&mut self.metrics, &mut self.trace, e, idx, pe);
                } else {
                    self.metrics.incr("fault.skipped");
                }
            }
        }
        let mem_stats = self.backend.take_stats();
        self.metrics.merge(&mem_stats);
        let mut trace = std::mem::take(&mut self.trace);
        trace.absorb(self.backend.take_trace());
        trace.finish();
        self.metrics.add("trace.dropped", trace.dropped());
        Ok(RunStatus::Finished(AccelResult {
            result: self.host[0],
            elapsed: now,
            metrics: std::mem::take(&mut self.metrics),
            trace,
            timeline,
        }))
    }

    /// Instantaneous LiteArch gauges recorded with every telemetry sample:
    /// completed round count and host result slots written so far — the
    /// static machine's equivalents of the fabric's queue-depth gauges.
    fn telemetry_gauges(&self) -> [(&'static str, u64); 2] {
        [
            (
                "host_written",
                self.host_written.iter().filter(|w| **w).count() as u64,
            ),
            ("rounds", self.round as u64),
        ]
    }

    /// Serializes the complete mutable state into a versioned, checksummed
    /// [`Snapshot`]. Capture at a [`RunStatus::Paused`] round barrier; a
    /// fresh engine built from the same configuration restores it and —
    /// with an equivalent driver — continues byte-identically to an
    /// uninterrupted run.
    pub fn snapshot(&self) -> Snapshot {
        let mut payload = vec![
            ("now_ps", snapshot::num(self.now.as_ps())),
            ("round", snapshot::num(self.round as u64)),
            ("next_task_id", snapshot::num(self.next_task_id)),
            ("host", snapshot::arr_u64(self.host.iter().copied())),
            (
                "host_written",
                snapshot::arr_u64(self.host_written.iter().map(|w| u64::from(*w))),
            ),
            (
                "watchdog",
                snapshot::obj(vec![
                    (
                        "last_progress_ps",
                        snapshot::num(self.watchdog.last_progress().as_ps()),
                    ),
                    (
                        "last_unit",
                        snapshot::num(self.watchdog.last_unit().map_or(0, |u| u as u64 + 1)),
                    ),
                ]),
            ),
            (
                "metrics",
                JsonValue::parse(&self.metrics.to_json()).expect("metrics emit valid JSON"),
            ),
            ("mem", self.mem.state_to_json_value()),
            ("backend", self.backend.state_to_json_value()),
            ("trace", self.trace.state_to_json_value()),
        ];
        if let Some(telemetry) = &self.telemetry {
            payload.push(("telemetry", telemetry.state_to_json_value()));
        }
        Snapshot::new("lite", snapshot::obj(payload))
    }

    /// Overwrites this engine's mutable state with a [`Snapshot`] captured
    /// by [`LiteEngine::snapshot`] on an engine built from the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::EngineMismatch`] when the snapshot was taken by a
    /// different engine family, [`SnapshotError::Malformed`] when the
    /// payload does not describe this configuration.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        snap.expect_engine("lite")?;
        let p = &snap.payload;
        self.now = Time::from_ps(snapshot::get_u64(p, "now_ps")?);
        self.round = snapshot::get_u64(p, "round")? as usize;
        self.next_task_id = snapshot::get_u64(p, "next_task_id")?;
        let host = snapshot::get_u64s(p, "host")?;
        let written = snapshot::get_u64s(p, "host_written")?;
        if host.len() != HOST_SLOTS || written.len() != HOST_SLOTS {
            return Err(malformed(format!(
                "snapshot holds {} host slots, expected {HOST_SLOTS}",
                host.len()
            )));
        }
        self.host.copy_from_slice(&host);
        for (slot, w) in self.host_written.iter_mut().zip(&written) {
            *slot = *w != 0;
        }
        let watchdog = snapshot::get(p, "watchdog")?;
        let last_progress = Time::from_ps(snapshot::get_u64(watchdog, "last_progress_ps")?);
        let last_unit = match snapshot::get_u64(watchdog, "last_unit")? {
            0 => None,
            u => Some(u as usize - 1),
        };
        self.watchdog.load(last_progress, last_unit);
        self.metrics = Metrics::from_json(&snapshot::get(p, "metrics")?.to_json())
            .map_err(|e| malformed(format!("metrics: {e}")))?;
        self.mem
            .restore_state(snapshot::get(p, "mem")?)
            .map_err(malformed)?;
        self.backend
            .restore_state(snapshot::get(p, "backend")?)
            .map_err(malformed)?;
        self.trace =
            Tracer::state_from_json_value(snapshot::get(p, "trace")?).map_err(malformed)?;
        match (&mut self.telemetry, p.get("telemetry")) {
            (Some(telemetry), Some(saved)) => {
                let restored = TelemetrySampler::state_from_json_value(saved).map_err(malformed)?;
                if restored.every() != telemetry.every() {
                    return Err(malformed("telemetry epoch width mismatch"));
                }
                *telemetry = restored;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(malformed(
                    "this engine samples telemetry, the snapshot does not",
                ));
            }
            (None, Some(_)) => {
                return Err(malformed(
                    "the snapshot carries telemetry state, this engine has telemetry off",
                ));
            }
        }
        Ok(())
    }

    /// Accumulated value of a host result slot (zero if never written).
    pub fn host_result(&self, slot: u8) -> Option<u64> {
        self.host_written[slot as usize].then(|| self.host[slot as usize])
    }

    fn execute_task<W: Worker + ?Sized>(
        &mut self,
        start: Time,
        pe: usize,
        task: Task,
        worker: &mut W,
    ) -> Result<Time, AccelError> {
        let start = start
            + self
                .cfg
                .clock
                .cycles_to_time(self.cfg.costs.dispatch_cycles);
        let port = self.backend.port_of(&self.cfg, pe);
        let mut ctx = LiteCtx {
            now: start,
            port,
            cfg: &self.cfg,
            profile: self.profile,
            mem: &mut self.mem,
            backend: &mut self.backend,
            host: &mut self.host,
            host_written: &mut self.host_written,
            ops: 0,
            error: None,
        };
        worker.execute(&task, &mut ctx);
        let end = ctx.now;
        let ops = ctx.ops;
        let err = ctx.error.take();
        if let Some(e) = err {
            return Err(e);
        }
        let busy_ps = (end - start).as_ps();
        self.metrics.incr("accel.tasks");
        self.metrics.incr(&format!("pe{pe}.tasks"));
        self.metrics.add("accel.ops", ops);
        self.metrics.add(&format!("pe{pe}.busy_ps"), busy_ps);
        self.trace.emit(
            start,
            TraceEvent::TaskDispatch {
                unit: pe as u32,
                ty: task.ty.0,
                task: task.id,
            },
        );
        self.trace.emit(
            end,
            TraceEvent::TaskComplete {
                unit: pe as u32,
                ty: task.ty.0,
                busy_ps,
                task: task.id,
            },
        );
        Ok(end)
    }
}

/// The PE-side [`TaskContext`] for LiteArch: no spawning, no successors.
struct LiteCtx<'e> {
    now: Time,
    port: usize,
    cfg: &'e AccelConfig,
    profile: ExecProfile,
    mem: &'e mut Memory,
    backend: &'e mut MemBackend,
    host: &'e mut [u64; HOST_SLOTS],
    host_written: &'e mut [bool; HOST_SLOTS],
    ops: u64,
    error: Option<AccelError>,
}

impl TaskContext for LiteCtx<'_> {
    fn spawn(&mut self, _task: Task) {
        self.error = Some(AccelError::Unsupported(
            "LiteArch tiles cannot spawn tasks (no work-stealing TMU; see Table I)".into(),
        ));
    }

    fn send_arg(&mut self, k: Continuation, value: u64) {
        self.now += self
            .cfg
            .clock
            .cycles_to_time(self.cfg.costs.send_arg_cycles);
        match k {
            Continuation::Host { slot } => {
                self.host[slot as usize] = self.host[slot as usize].wrapping_add(value);
                self.host_written[slot as usize] = true;
            }
            Continuation::PStore { .. } => {
                self.error = Some(AccelError::Unsupported(
                    "LiteArch tiles have no P-Store to receive arguments".into(),
                ));
            }
        }
    }

    fn make_successor_with(
        &mut self,
        _ty: TaskTypeId,
        _k: Continuation,
        _join: u8,
        _preset: &[(u8, u64)],
    ) -> Continuation {
        self.error = Some(AccelError::Unsupported(
            "LiteArch tiles have no P-Store (see Table I)".into(),
        ));
        Continuation::host((HOST_SLOTS - 1) as u8)
    }

    timed_memory_path!();

    fn mem(&mut self) -> &mut Memory {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEAF: TaskTypeId = TaskTypeId(0);

    struct SumWorker;
    impl Worker for SumWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let (lo, hi) = (task.args[0], task.args[1]);
            ctx.compute(hi - lo);
            ctx.send_arg(task.k, (lo..hi).sum::<u64>());
        }
    }

    fn chunk_tasks(n: u64, chunks: u64) -> RoundTasks {
        let per = n / chunks;
        (0..chunks)
            .map(|i| Task::new(LEAF, Continuation::host(0), &[i * per, (i + 1) * per]))
            .collect()
    }

    fn one_round(tasks: RoundTasks) -> impl FnMut(&mut Memory, usize) -> Option<RoundTasks> {
        let mut tasks = Some(tasks);
        move |_mem, round| if round == 0 { tasks.take() } else { None }
    }

    #[test]
    fn single_round_reduction() {
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 4), ExecProfile::scalar());
        let out = engine
            .run(&mut SumWorker, &mut one_round(chunk_tasks(1000, 8)))
            .unwrap();
        assert_eq!(out.result, (0..1000).sum::<u64>());
        assert_eq!(out.metrics.get("accel.tasks"), 8);
        assert_eq!(out.metrics.get("lite.rounds"), 1);
    }

    #[test]
    fn more_pes_finish_sooner() {
        let run = |tiles, pes| {
            let mut engine = LiteEngine::new(AccelConfig::lite(tiles, pes), ExecProfile::scalar());
            engine
                .run(&mut SumWorker, &mut one_round(chunk_tasks(100_000, 64)))
                .unwrap()
                .elapsed
        };
        let t1 = run(1, 1);
        let t8 = run(2, 4);
        assert!(t8 < t1, "8 PEs ({t8}) must beat 1 PE ({t1})");
    }

    #[test]
    fn multi_round_execution_uses_memory_between_rounds() {
        struct DoubleWorker;
        impl Worker for DoubleWorker {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let addr = task.args[0];
                let v = ctx.read_u32(addr);
                ctx.write_u32(addr, v * 2);
                ctx.send_arg(task.k, 0);
            }
        }
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
        engine.mem_mut().write_u32(0x100, 1);
        let out = engine
            .run(&mut DoubleWorker, &mut |_mem: &mut Memory, round: usize| {
                (round < 3).then(|| vec![Task::new(LEAF, Continuation::host(1), &[0x100])])
            })
            .unwrap();
        assert_eq!(engine.memory().read_u32(0x100), 8, "three doubling rounds");
        assert_eq!(out.metrics.get("lite.rounds"), 3);
    }

    struct SpawnyWorker;
    impl Worker for SpawnyWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            ctx.spawn(*task);
        }
    }

    #[test]
    fn spawning_is_rejected() {
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 1), ExecProfile::scalar());
        let err = engine
            .run(
                &mut SpawnyWorker,
                &mut one_round(vec![Task::new(LEAF, Continuation::host(0), &[])]),
            )
            .unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)), "got {err}");
    }

    struct SuccessorWorker;
    impl Worker for SuccessorWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let _ = ctx.make_successor(TaskTypeId(9), task.k, 2);
        }
    }

    #[test]
    fn successors_are_rejected() {
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 1), ExecProfile::scalar());
        let err = engine
            .run(
                &mut SuccessorWorker,
                &mut one_round(vec![Task::new(LEAF, Continuation::host(0), &[])]),
            )
            .unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)));
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        // A multi-round driver that is a pure function of (mem, round), as
        // the checkpoint contract requires of LiteArch drivers: a restored
        // engine replays the remaining rounds through a fresh driver value.
        struct DoubleWorker;
        impl Worker for DoubleWorker {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let addr = task.args[0];
                let v = ctx.read_u32(addr);
                ctx.write_u32(addr, v * 2);
                ctx.send_arg(task.k, u64::from(v));
            }
        }
        let driver = || {
            |_mem: &mut Memory, round: usize| -> Option<RoundTasks> {
                (round < 6).then(|| {
                    (0..4u64)
                        .map(|i| Task::new(LEAF, Continuation::host(0), &[0x100 + 4 * i]))
                        .collect()
                })
            }
        };
        let mk = || {
            let mut engine = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
            for i in 0..4u64 {
                engine.mem_mut().write_u32(0x100 + 4 * i, i as u32 + 1);
            }
            engine
        };
        let reference = mk().run(&mut DoubleWorker, &mut driver()).unwrap();
        let pause = Time::from_ps(reference.elapsed.as_ps() / 2);

        let mut paused = mk();
        match paused
            .run_until(&mut DoubleWorker, &mut driver(), Some(pause))
            .unwrap()
        {
            RunStatus::Paused { at } => assert_eq!(at, pause),
            RunStatus::Finished(_) => panic!("six rounds must outlast {pause}"),
        }
        let blob = paused.snapshot().to_json();
        let snap = Snapshot::from_json(&blob).expect("snapshot survives its wire format");
        let mut restored = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
        restored
            .restore(&snap)
            .expect("restore into a fresh engine");

        for (label, engine) in [("paused", &mut paused), ("restored", &mut restored)] {
            let out = match engine.run_until(&mut DoubleWorker, &mut driver(), None) {
                Ok(RunStatus::Finished(out)) => out,
                other => panic!("{label} leg: {other:?}"),
            };
            assert_eq!(out.result, reference.result, "{label} result");
            assert_eq!(out.elapsed, reference.elapsed, "{label} elapsed");
            assert_eq!(
                out.metrics.to_json(),
                reference.metrics.to_json(),
                "{label} metrics"
            );
            assert_eq!(
                out.trace.to_jsonl(),
                reference.trace.to_jsonl(),
                "{label} trace"
            );
            assert_eq!(engine.memory().read_u32(0x100), 64, "{label} memory");
        }

        // A Flex snapshot must not restore into a Lite engine.
        let mut flex_snap = paused.snapshot();
        flex_snap.engine = "flex".to_owned();
        let err = mk().restore(&flex_snap).expect_err("engine mismatch");
        assert!(
            matches!(err, SnapshotError::EngineMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn host_slot_accumulates() {
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
        let tasks: RoundTasks = (0..4)
            .map(|i| Task::new(LEAF, Continuation::host(2), &[0, i + 1]))
            .collect();
        let _ = engine.run(&mut SumWorker, &mut one_round(tasks)).unwrap();
        // Sums of 0..1, 0..2, 0..3, 0..4 = 0 + 1 + 3 + 6.
        assert_eq!(engine.host_result(2), Some(10));
        assert_eq!(engine.host_result(3), None);
    }
}
