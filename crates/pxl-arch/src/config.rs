//! Accelerator configuration: architecture choice, geometry, and
//! microarchitectural costs.
//!
//! These are the knobs the paper's architectural template exposes
//! (Section IV-A): "the designer can configure the architecture (FlexArch
//! or LiteArch), the number of tiles and PEs, the number of entries of the
//! task queue and P-Store, as well as the cache size."

use pxl_sim::config::MemoryConfig;
use pxl_sim::{Clock, FaultPlan};

/// Which tile architecture to instantiate (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Full continuation-passing support with work-stealing scheduling.
    Flex,
    /// Data-parallel only, with static task distribution.
    Lite,
    /// FlexArch's task model over one global ready queue at the host
    /// interface — the centralized strawman the distributed TMUs replace.
    Central,
}

impl ArchKind {
    /// Short display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Flex => "FlexArch",
            ArchKind::Lite => "LiteArch",
            ArchKind::Central => "CentralArch",
        }
    }

    /// The feature matrix row of Table I:
    /// (data-parallel, fork-join, general task-parallel, scheduling).
    pub fn features(self) -> (bool, bool, bool, &'static str) {
        match self {
            ArchKind::Flex => (true, true, true, "Work-Stealing"),
            ArchKind::Lite => (true, false, false, "Static Distribution"),
            ArchKind::Central => (true, true, true, "Shared Queue"),
        }
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a configuration is not realizable, as reported by
/// [`AccelConfig::validate`].
///
/// Typed variants let callers — most importantly the `pxl-dse` feasibility
/// pruner — report *which* constraint a design point violates instead of
/// pattern-matching on message strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `tiles == 0`.
    NoTiles,
    /// `pes_per_tile == 0`.
    NoPes,
    /// A task queue with fewer than two entries cannot hold a task while a
    /// steal is in flight.
    TaskQueueTooSmall {
        /// The rejected capacity.
        entries: usize,
    },
    /// FlexArch with `pstore_entries == 0`.
    EmptyPStore,
    /// More tiles than the continuation encoding can address.
    TooManyTiles {
        /// The rejected tile count.
        tiles: usize,
    },
    /// The quiescence watchdog window is zero.
    ZeroWatchdogWindow,
    /// The tile cache capacity does not form an integral, power-of-two
    /// number of sets with the configured associativity and line size.
    BadCacheGeometry {
        /// The rejected capacity in bytes.
        bytes: usize,
    },
    /// The armed fault plan is inconsistent with the geometry.
    FaultPlan(String),
    /// The fault plan uses fault kinds LiteArch does not model.
    LiteFaultVocabulary,
    /// Heterogeneous type masks do not cover every PE slot.
    TypeMaskCount {
        /// PE slots per tile.
        expected: usize,
        /// Masks supplied.
        got: usize,
    },
    /// A heterogeneous PE slot supports no task type at all.
    EmptyTypeMask,
    /// A cluster with `chips == 0`.
    NoChips,
    /// The tile count does not split evenly across the cluster's chips.
    ClusterTileSplit {
        /// Tiles in the accelerator.
        tiles: usize,
        /// Chips in the cluster.
        chips: usize,
    },
    /// A multi-chip cluster on an architecture without work stealing
    /// (LiteArch's static rounds and CentralArch's single global queue
    /// have no distributed scheduler to make topology-aware).
    ClusterNeedsStealing,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoTiles => write!(f, "accelerator needs at least one tile"),
            ConfigError::NoPes => write!(f, "tiles need at least one PE"),
            ConfigError::TaskQueueTooSmall { entries } => {
                write!(f, "task queues need at least two entries (got {entries})")
            }
            ConfigError::EmptyPStore => write!(f, "FlexArch needs a non-empty P-Store"),
            ConfigError::TooManyTiles { tiles } => {
                write!(
                    f,
                    "tile index must fit the continuation encoding ({tiles} tiles)"
                )
            }
            ConfigError::ZeroWatchdogWindow => {
                write!(f, "the quiescence watchdog needs a nonzero window")
            }
            ConfigError::BadCacheGeometry { bytes } => write!(
                f,
                "cache size {bytes} does not form a power-of-two number of sets"
            ),
            ConfigError::FaultPlan(msg) => write!(f, "fault plan: {msg}"),
            ConfigError::LiteFaultVocabulary => write!(
                f,
                "LiteArch has no routed networks or P-Store; its fault plans \
                 support only PE death and PE stalls"
            ),
            ConfigError::TypeMaskCount { expected, got } => write!(
                f,
                "heterogeneous config needs one type mask per PE slot ({got} != {expected})"
            ),
            ConfigError::EmptyTypeMask => {
                write!(f, "every heterogeneous PE slot must support some task type")
            }
            ConfigError::NoChips => write!(f, "a cluster needs at least one chip"),
            ConfigError::ClusterTileSplit { tiles, chips } => {
                write!(f, "{tiles} tiles do not split evenly across {chips} chips")
            }
            ConfigError::ClusterNeedsStealing => write!(
                f,
                "multi-chip clusters need a work-stealing architecture (FlexArch)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Shape of the inter-chip network joining the chips of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTopology {
    /// Every chip pair is one serdes hop apart (a full crossbar or switch).
    AllToAll,
    /// Chips form a bidirectional ring; messages pay one link latency per
    /// ring hop along the shorter direction.
    Ring,
}

impl LinkTopology {
    /// Number of inter-chip link hops between `src` and `dst` on a cluster
    /// of `chips` chips (zero when they are the same chip).
    pub fn hops(self, src: usize, dst: usize, chips: usize) -> u64 {
        if src == dst {
            return 0;
        }
        match self {
            LinkTopology::AllToAll => 1,
            LinkTopology::Ring => {
                let d = src.abs_diff(dst);
                d.min(chips - d) as u64
            }
        }
    }
}

/// How thieves treat the chip boundary when picking steal victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealMode {
    /// Topology-aware: steal intra-chip first, spill to inter-chip victims
    /// only after `spill_threshold` consecutive failed attempts.
    Hierarchical {
        /// Consecutive failed acquisitions before a thief widens its victim
        /// pool from its own chip to the whole cluster.
        spill_threshold: u32,
    },
    /// Topology-blind baseline: uniform victim selection over every PE in
    /// the cluster, paying the inter-chip link on every remote pick.
    Flat,
}

/// Multi-chip cluster layered above one [`AccelConfig`]: the chip count,
/// the tile-to-chip partition, and the modeled inter-chip link tier.
///
/// A cluster splits the accelerator's `tiles` into `chips` equal contiguous
/// blocks (the partitioning pass — see [`ClusterConfig::partition`]). Tiles
/// within a chip keep the single-chip crossbar costs; any message between
/// chips (steal requests/replies, argument sends, routed tasks) additionally
/// pays `link_latency_cycles` per topology hop and serializes on the
/// directed link's bounded bandwidth (`link_occupancy_cycles` per message).
/// A 1-chip cluster is exactly the stock single-chip accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of chips; the accelerator's tiles split evenly across them.
    pub chips: usize,
    /// One-way latency of one inter-chip link hop, in accelerator cycles.
    pub link_latency_cycles: u64,
    /// Serialization occupancy of one message on a directed link — the
    /// inverse of link bandwidth. Messages queued behind a busy link wait;
    /// zero models an infinitely wide link.
    pub link_occupancy_cycles: u64,
    /// Inter-chip network shape.
    pub topology: LinkTopology,
    /// Victim-selection strategy across the chip boundary.
    pub stealing: StealMode,
}

impl ClusterConfig {
    /// A cluster of `chips` chips with the default link model: an
    /// all-to-all topology, a 32-cycle hop (a serdes crossing is an order
    /// of magnitude above the 4-cycle on-chip crossbar hop), an 8-cycle
    /// per-message serialization window, and hierarchical stealing that
    /// spills after two failed intra-chip attempts.
    pub fn new(chips: usize) -> Self {
        ClusterConfig {
            chips,
            link_latency_cycles: 32,
            link_occupancy_cycles: 8,
            topology: LinkTopology::AllToAll,
            stealing: StealMode::Hierarchical { spill_threshold: 2 },
        }
    }

    /// Switches to the flat (topology-blind) stealing baseline.
    pub fn flat(mut self) -> Self {
        self.stealing = StealMode::Flat;
        self
    }

    /// Switches to hierarchical stealing with the given spill threshold.
    pub fn hierarchical(mut self, spill_threshold: u32) -> Self {
        self.stealing = StealMode::Hierarchical { spill_threshold };
        self
    }

    /// Overrides the link latency and per-message occupancy (both in
    /// accelerator cycles).
    pub fn with_link(mut self, latency_cycles: u64, occupancy_cycles: u64) -> Self {
        self.link_latency_cycles = latency_cycles;
        self.link_occupancy_cycles = occupancy_cycles;
        self
    }

    /// Switches the inter-chip network to a bidirectional ring.
    pub fn ring(mut self) -> Self {
        self.topology = LinkTopology::Ring;
        self
    }

    /// The partitioning pass: assigns each of `tiles` tiles to a chip in
    /// equal contiguous blocks, returning the tile-indexed chip map.
    /// Contiguous blocks keep a tile's intra-chip neighbours exactly the
    /// tiles the single-chip crossbar already made cheap.
    pub fn partition(&self, tiles: usize) -> Vec<usize> {
        let per_chip = tiles / self.chips.max(1);
        (0..tiles).map(|t| t / per_chip.max(1)).collect()
    }
}

/// Which memory path backs the accelerator's PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBackendKind {
    /// Coherent per-tile L1 caches over the shared L2 (the future SoC of
    /// Table III).
    Coherent,
    /// Per-PE stream buffers over a single ACP port (the Zedboard prototype
    /// of Section V-B).
    Zedboard,
}

/// Cycle costs of the hardware task-management operations, in accelerator
/// (200 MHz) cycles.
///
/// The defaults encode the paper's central efficiency claim: "a work
/// stealing operation may require hundreds of instructions in software, but
/// only needs several cycles on the accelerator" (Section V-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchCosts {
    /// Dequeue a task from the local queue tail into the worker.
    pub dispatch_cycles: u64,
    /// Enqueue a spawned task at the local queue tail.
    pub spawn_cycles: u64,
    /// Issue an argument message (router + P-Store update, local tile).
    pub send_arg_cycles: u64,
    /// Allocate a P-Store entry and return a continuation.
    pub successor_cycles: u64,
    /// One-way latency of a message on the inter-tile crossbar.
    pub net_hop_cycles: u64,
    /// Victim-side service time of a steal request (head dequeue).
    pub steal_service_cycles: u64,
    /// Thief-side backoff between failed steal attempts.
    pub steal_backoff_cycles: u64,
    /// Host interface dispatch cost per task (LiteArch static distribution).
    pub if_dispatch_cycles: u64,
    /// Host-side cost to set up and launch one LiteArch round.
    pub round_sync_cycles: u64,
    /// Port occupancy of one access to CentralArch's global ready queue;
    /// concurrent accesses serialize behind it.
    pub central_queue_cycles: u64,
}

impl Default for ArchCosts {
    fn default() -> Self {
        ArchCosts {
            dispatch_cycles: 1,
            spawn_cycles: 1,
            send_arg_cycles: 2,
            successor_cycles: 2,
            net_hop_cycles: 4,
            steal_service_cycles: 2,
            steal_backoff_cycles: 4,
            if_dispatch_cycles: 2,
            round_sync_cycles: 200,
            central_queue_cycles: 2,
        }
    }
}

/// Which end of the local deque the worker operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalOrder {
    /// Depth-first (the architecture's default; best task locality).
    Lifo,
    /// Breadth-first (ablation).
    Fifo,
}

/// Which end of the victim's deque a thief steals from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealEnd {
    /// The oldest task — closest to the root of the spawn tree, so each
    /// steal transfers a large chunk of work (the default).
    Head,
    /// The newest task (ablation).
    Tail,
}

/// How a thief picks its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimSelect {
    /// Random via the TMU's 16-bit LFSR (the default).
    Lfsr,
    /// Cyclic scan (ablation).
    RoundRobin,
}

/// Scheduling-policy knobs for ablation studies of the paper's design
/// choices (Section II-C / III-A). The defaults are the published
/// architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPolicy {
    /// Worker-side deque discipline.
    pub local_order: LocalOrder,
    /// Thief-side steal end.
    pub steal_end: StealEnd,
    /// Victim selection.
    pub victim_select: VictimSelect,
    /// Route a task made ready by its last argument back to the producing
    /// PE (required for the space bound).
    pub greedy_routing: bool,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            local_order: LocalOrder::Lifo,
            steal_end: StealEnd::Head,
            victim_select: VictimSelect::Lfsr,
            greedy_routing: true,
        }
    }
}

/// Full configuration of one accelerator instance.
///
/// # Examples
///
/// ```
/// use pxl_arch::{AccelConfig, ArchKind};
///
/// let cfg = AccelConfig::flex(4, 4); // 4 tiles x 4 PEs = 16 PEs
/// assert_eq!(cfg.num_pes(), 16);
/// assert_eq!(cfg.tile_of_pe(5), 1);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// FlexArch or LiteArch.
    pub arch: ArchKind,
    /// Number of tiles.
    pub tiles: usize,
    /// PEs per tile (the paper's experiments use 4).
    pub pes_per_tile: usize,
    /// Capacity of each PE's task queue.
    pub task_queue_entries: usize,
    /// Capacity of each tile's P-Store.
    pub pstore_entries: usize,
    /// Microarchitectural costs.
    pub costs: ArchCosts,
    /// Scheduling-policy knobs (defaults = the published architecture).
    pub policy: SchedPolicy,
    /// Heterogeneous workers (the Section III-A extension): when set, one
    /// bitmask per PE slot within a tile, bit `i` meaning the slot's worker
    /// can process [`pxl_model::TaskTypeId`] `i`. `None` = homogeneous
    /// workers (the paper's default).
    pub pe_task_types: Option<Vec<u64>>,
    /// Accelerator logic clock.
    pub clock: Clock,
    /// Memory system parameters (per-tile L1, shared L2, DRAM).
    pub memory: MemoryConfig,
    /// Which memory path to instantiate.
    pub mem_backend: MemBackendKind,
    /// Simulated-time safety limit; runs exceeding it abort with an error.
    pub max_sim_time_us: u64,
    /// Structured event-trace buffer capacity in records; zero (the
    /// default) disables tracing entirely.
    pub trace_capacity: usize,
    /// Telemetry epoch width in accelerator cycles; zero (the default)
    /// disables in-run telemetry sampling entirely.
    pub telemetry_every_cycles: u64,
    /// Deterministic fault schedule to arm against this run (`None` = the
    /// happy path).
    pub fault_plan: Option<FaultPlan>,
    /// Accelerator cycles without forward progress (task completion or
    /// argument delivery) before the quiescence watchdog declares the run
    /// stalled while work is still outstanding.
    pub watchdog_quiescence_cycles: u64,
    /// Multi-chip cluster layered above this accelerator (`None` = one
    /// chip, the paper's configuration). A present 1-chip cluster behaves
    /// byte-identically to `None`.
    pub cluster: Option<ClusterConfig>,
}

impl AccelConfig {
    /// A FlexArch accelerator with the paper's defaults (Table III platform,
    /// 4 PEs per tile).
    pub fn flex(tiles: usize, pes_per_tile: usize) -> Self {
        AccelConfig {
            arch: ArchKind::Flex,
            tiles,
            pes_per_tile,
            task_queue_entries: 1024,
            pstore_entries: 8192,
            costs: ArchCosts::default(),
            policy: SchedPolicy::default(),
            pe_task_types: None,
            clock: Clock::mhz200("accel"),
            memory: MemoryConfig::micro2018(),
            mem_backend: MemBackendKind::Coherent,
            max_sim_time_us: 2_000_000,
            trace_capacity: 0,
            telemetry_every_cycles: 0,
            fault_plan: None,
            watchdog_quiescence_cycles: 1_000_000,
            cluster: None,
        }
    }

    /// A LiteArch accelerator with the paper's defaults.
    pub fn lite(tiles: usize, pes_per_tile: usize) -> Self {
        AccelConfig {
            arch: ArchKind::Lite,
            ..AccelConfig::flex(tiles, pes_per_tile)
        }
    }

    /// A centralized shared-queue accelerator: FlexArch's task model with
    /// one global ready queue instead of distributed work stealing.
    pub fn central(tiles: usize, pes_per_tile: usize) -> Self {
        AccelConfig {
            arch: ArchKind::Central,
            ..AccelConfig::flex(tiles, pes_per_tile)
        }
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.tiles * self.pes_per_tile
    }

    /// Tile index that PE `pe` belongs to.
    pub fn tile_of_pe(&self, pe: usize) -> usize {
        pe / self.pes_per_tile
    }

    /// Number of chips in the cluster (1 without a cluster config).
    pub fn chips(&self) -> usize {
        self.cluster.map_or(1, |c| c.chips.max(1))
    }

    /// Tiles per chip under the cluster's contiguous partition.
    pub fn tiles_per_chip(&self) -> usize {
        self.tiles / self.chips()
    }

    /// Chip index that tile `tile` is partitioned onto.
    pub fn chip_of_tile(&self, tile: usize) -> usize {
        tile / self.tiles_per_chip().max(1)
    }

    /// Chip index that PE `pe` is partitioned onto.
    pub fn chip_of_pe(&self, pe: usize) -> usize {
        self.chip_of_tile(self.tile_of_pe(pe))
    }

    /// Whether PE `pe`'s worker can process task type `ty` (always true for
    /// homogeneous workers).
    pub fn pe_supports(&self, pe: usize, ty: pxl_model::TaskTypeId) -> bool {
        match &self.pe_task_types {
            None => true,
            Some(masks) => {
                let slot = pe % self.pes_per_tile;
                ty.0 < 64 && masks[slot] & (1u64 << ty.0) != 0
            }
        }
    }

    /// Checks that the configuration is realizable.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tiles == 0 {
            return Err(ConfigError::NoTiles);
        }
        if self.pes_per_tile == 0 {
            return Err(ConfigError::NoPes);
        }
        if self.task_queue_entries < 2 {
            return Err(ConfigError::TaskQueueTooSmall {
                entries: self.task_queue_entries,
            });
        }
        if self.arch != ArchKind::Lite && self.pstore_entries < 1 {
            return Err(ConfigError::EmptyPStore);
        }
        if self.tiles > u16::MAX as usize {
            return Err(ConfigError::TooManyTiles { tiles: self.tiles });
        }
        if self.watchdog_quiescence_cycles == 0 {
            return Err(ConfigError::ZeroWatchdogWindow);
        }
        // The tile cache must be realizable as an integral, power-of-two
        // number of sets (this check lived in the design flow's builder
        // before pxl-dse needed it for pruning; it now has one home).
        let l1 = &self.memory.accel_l1;
        let set_bytes = l1.ways * l1.line_bytes;
        if set_bytes == 0
            || !l1.size_bytes.is_multiple_of(set_bytes)
            || !(l1.size_bytes / set_bytes).is_power_of_two()
        {
            return Err(ConfigError::BadCacheGeometry {
                bytes: l1.size_bytes,
            });
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.num_pes(), self.tiles)
                .map_err(ConfigError::FaultPlan)?;
            if self.arch == ArchKind::Lite {
                let unsupported = plan.specs().iter().any(|s| {
                    matches!(
                        s.kind,
                        pxl_sim::FaultKind::NetDrop { .. }
                            | pxl_sim::FaultKind::NetDup { .. }
                            | pxl_sim::FaultKind::PStoreCorrupt { .. }
                    )
                });
                if unsupported {
                    return Err(ConfigError::LiteFaultVocabulary);
                }
            }
        }
        if let Some(cluster) = &self.cluster {
            if cluster.chips == 0 {
                return Err(ConfigError::NoChips);
            }
            if !self.tiles.is_multiple_of(cluster.chips) {
                return Err(ConfigError::ClusterTileSplit {
                    tiles: self.tiles,
                    chips: cluster.chips,
                });
            }
            if cluster.chips > 1 && self.arch != ArchKind::Flex {
                return Err(ConfigError::ClusterNeedsStealing);
            }
        }
        if let Some(masks) = &self.pe_task_types {
            if masks.len() != self.pes_per_tile {
                return Err(ConfigError::TypeMaskCount {
                    expected: self.pes_per_tile,
                    got: masks.len(),
                });
            }
            if masks.contains(&0) {
                return Err(ConfigError::EmptyTypeMask);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_feature_matrix() {
        let (dp, fj, tp, sched) = ArchKind::Flex.features();
        assert!(dp && fj && tp);
        assert_eq!(sched, "Work-Stealing");
        let (dp, fj, tp, sched) = ArchKind::Lite.features();
        assert!(dp && !fj && !tp);
        assert_eq!(sched, "Static Distribution");
        assert_eq!(ArchKind::Flex.to_string(), "FlexArch");
    }

    #[test]
    fn geometry_helpers() {
        let cfg = AccelConfig::flex(8, 4);
        assert_eq!(cfg.num_pes(), 32);
        assert_eq!(cfg.tile_of_pe(0), 0);
        assert_eq!(cfg.tile_of_pe(3), 0);
        assert_eq!(cfg.tile_of_pe(4), 1);
        assert_eq!(cfg.tile_of_pe(31), 7);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        assert!(AccelConfig::flex(1, 1).validate().is_ok());
        assert_eq!(
            AccelConfig::flex(0, 4).validate(),
            Err(ConfigError::NoTiles)
        );
        assert_eq!(AccelConfig::flex(4, 0).validate(), Err(ConfigError::NoPes));
        let mut c = AccelConfig::flex(1, 1);
        c.task_queue_entries = 1;
        assert_eq!(
            c.validate(),
            Err(ConfigError::TaskQueueTooSmall { entries: 1 })
        );
        let mut c = AccelConfig::flex(1, 1);
        c.pstore_entries = 0;
        assert_eq!(c.validate(), Err(ConfigError::EmptyPStore));
        let mut c = AccelConfig::lite(1, 1);
        c.pstore_entries = 0;
        assert!(c.validate().is_ok(), "LiteArch has no P-Store");
    }

    #[test]
    fn validation_rejects_unrealizable_cache_geometry() {
        // 2-way, 64 B lines -> 128 B sets; 48 KiB gives 384 sets (not a
        // power of two), 1000 B does not even divide evenly.
        let mut c = AccelConfig::flex(1, 4);
        c.memory.accel_l1 = c.memory.accel_l1.clone().with_size(48 * 1024);
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadCacheGeometry { bytes: 48 * 1024 })
        );
        let mut c = AccelConfig::flex(1, 4);
        c.memory.accel_l1 = c.memory.accel_l1.clone().with_size(1000);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadCacheGeometry { .. })
        ));
        // Every power-of-two capacity from 4 KiB up is fine.
        for kb in [4, 8, 16, 32, 64] {
            let mut c = AccelConfig::flex(1, 4);
            c.memory.accel_l1 = c.memory.accel_l1.clone().with_size(kb * 1024);
            assert!(c.validate().is_ok(), "{kb} KiB");
        }
    }

    #[test]
    fn config_errors_render_their_constraint() {
        assert_eq!(
            ConfigError::NoTiles.to_string(),
            "accelerator needs at least one tile"
        );
        assert_eq!(
            ConfigError::BadCacheGeometry { bytes: 3072 }.to_string(),
            "cache size 3072 does not form a power-of-two number of sets"
        );
        assert_eq!(
            ConfigError::TypeMaskCount {
                expected: 4,
                got: 2
            }
            .to_string(),
            "heterogeneous config needs one type mask per PE slot (2 != 4)"
        );
    }

    #[test]
    fn cluster_partition_is_contiguous_and_even() {
        let cluster = ClusterConfig::new(4);
        assert_eq!(cluster.partition(8), vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let mut cfg = AccelConfig::flex(8, 4);
        cfg.cluster = Some(cluster);
        cfg.validate().unwrap();
        assert_eq!(cfg.chips(), 4);
        assert_eq!(cfg.tiles_per_chip(), 2);
        assert_eq!(cfg.chip_of_tile(0), 0);
        assert_eq!(cfg.chip_of_tile(7), 3);
        assert_eq!(cfg.chip_of_pe(0), 0);
        assert_eq!(cfg.chip_of_pe(31), 3);
        // Helpers agree with the explicit partition map.
        for tile in 0..cfg.tiles {
            assert_eq!(cfg.chip_of_tile(tile), cluster.partition(cfg.tiles)[tile]);
        }
    }

    #[test]
    fn link_topology_hop_counts() {
        assert_eq!(LinkTopology::AllToAll.hops(0, 3, 4), 1);
        assert_eq!(LinkTopology::AllToAll.hops(2, 2, 4), 0);
        assert_eq!(LinkTopology::Ring.hops(0, 1, 4), 1);
        assert_eq!(LinkTopology::Ring.hops(0, 3, 4), 1, "ring wraps");
        assert_eq!(LinkTopology::Ring.hops(0, 2, 4), 2);
        assert_eq!(LinkTopology::Ring.hops(1, 5, 8), 4);
    }

    #[test]
    fn cluster_validation_catches_bad_shapes() {
        let mut cfg = AccelConfig::flex(3, 4);
        cfg.cluster = Some(ClusterConfig::new(2));
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ClusterTileSplit { tiles: 3, chips: 2 })
        );
        let mut cfg = AccelConfig::flex(4, 4);
        cfg.cluster = Some(ClusterConfig::new(0));
        assert_eq!(cfg.validate(), Err(ConfigError::NoChips));
        let mut cfg = AccelConfig::lite(4, 4);
        cfg.cluster = Some(ClusterConfig::new(2));
        assert_eq!(cfg.validate(), Err(ConfigError::ClusterNeedsStealing));
        // One chip of anything is the stock accelerator: always fine.
        let mut cfg = AccelConfig::central(4, 4);
        cfg.cluster = Some(ClusterConfig::new(1));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn default_costs_are_a_few_cycles() {
        let c = ArchCosts::default();
        // The hardware steal path must be O(cycles), not O(hundreds).
        let steal_round_trip = 2 * c.net_hop_cycles + c.steal_service_cycles;
        assert!(steal_round_trip < 20);
    }
}
